#!/usr/bin/env python3
"""Farming a parameter sweep over the server pool.

A damped oscillator study: integrate ``y' = M(c) y`` for 24 damping
coefficients.  Each instance is an independent ``ode/linear`` request;
firing them all non-blocking lets the agent's MCT scheduler spread the
sweep across every server, and the batch finishes in a fraction of the
serial time.

Run:  python examples/farming_parameter_sweep.py
"""

import numpy as np

from repro import standard_testbed, submit_farm


def oscillator(c: float, d: int = 32) -> list:
    """ode/linear arguments for a d-dimensional damped coupled system."""
    # block-diagonal 2x2 oscillators with damping c
    m = np.zeros((d, d))
    for i in range(0, d, 2):
        m[i, i + 1] = 1.0
        m[i + 1, i] = -1.0
        m[i + 1, i + 1] = -c
    y0 = np.tile([1.0, 0.0], d // 2)
    steps = 4000
    t1 = 10.0
    return [m, y0, steps, t1]


def run_sweep(n_servers: int, coefficients):
    tb = standard_testbed(
        n_servers=n_servers,
        server_mflops=[100.0] * n_servers,
        seed=3,
        bandwidth=12.5e6,
    )
    tb.settle()
    farm = submit_farm(
        tb.client("c0"), "ode/linear", [oscillator(c) for c in coefficients]
    )
    tb.wait_all(farm.handles)
    return farm


def main() -> None:
    coefficients = np.linspace(0.05, 1.2, 24)
    print(f"farming {len(coefficients)} ODE integrations over 4 servers...")
    farm = run_sweep(4, coefficients)

    print(f"\n{'damping':>8}  {'|y(10)|':>10}  {'server':>7}")
    for c, handle in zip(coefficients, farm.handles):
        (y,) = handle.result()
        print(f"{c:8.3f}  {np.linalg.norm(y):10.4f}  "
              f"{handle.record.server_id:>7}")

    stats = farm.stats()
    # honest baseline: the same sweep against a single-server pool
    single = run_sweep(1, coefficients)
    print(f"\nbatch makespan : {farm.makespan:8.1f} virtual s (4 servers)")
    print(f"single server  : {single.makespan:8.1f} virtual s")
    print(f"speedup        : {single.makespan / farm.makespan:8.1f}x")
    print(f"work spread    : {farm.servers_used()}")
    print(f"mean / p95     : {stats.mean_seconds:.1f} / "
          f"{stats.p95_seconds:.1f} s per request")


if __name__ == "__main__":
    main()
