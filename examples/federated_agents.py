#!/usr/bin/env python3
"""Two departments, two agents, one NetSolve system.

NetSolve's scalability path: replicate the agent and let the replicas
mirror ground truth (registrations, workload reports, failure reports).
Here a physics department and a math department each run their own agent
and servers; a physics client transparently uses a math server when the
federation says it is the better pick — and when the physics agent dies,
the client can simply re-point at the surviving sibling.

Run:  python examples/federated_agents.py
"""

import numpy as np

from repro import ClientDef, HostDef, ServerDef, build_testbed


def main() -> None:
    tb = build_testbed(
        hosts=[
            HostDef("physics-gw", 50.0), HostDef("math-gw", 50.0),
            HostDef("phys-srv", 80.0), HostDef("math-srv", 240.0),
            HostDef("phys-ws", 20.0),
        ],
        servers=[
            ServerDef("phys0", "phys-srv", agent="agent"),
            ServerDef("math0", "math-srv", agent="agent-math"),
        ],
        clients=[ClientDef("alice", "phys-ws", agent="agent")],
        agent_host="physics-gw",
        extra_agents=[("agent-math", "math-gw")],
    )
    tb.settle()

    for addr, agent in tb.agents.items():
        servers = sorted(e.server_id for e in agent.table.entries())
        print(f"{addr:12s} knows servers {servers} "
              f"({len(agent.specs)} problems)")

    rng = np.random.default_rng(4)
    n = 400
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)

    (x,) = tb.solve("alice", "linsys/dgesv", [a, b])
    record = tb.client("alice").records[-1]
    print(f"\nalice (physics) solved dgesv n={n} on {record.server_id!r} "
          f"in {record.total_seconds:.2f}s — the math department's fast "
          "machine, found through the federation")
    assert record.server_id == "math0"

    # the physics agent dies; alice re-points at the sibling and carries on
    print("\nphysics agent crashes ...")
    tb.transport.crash("agent")
    tb.client("alice").agent_address = "agent-math"
    (x,) = tb.solve("alice", "linsys/dgesv", [a, b])
    record = tb.client("alice").records[-1]
    print(f"alice re-pointed at agent-math and solved again on "
          f"{record.server_id!r} in {record.total_seconds:.2f}s")
    print("\nmirroring traffic so far:",
          sum(ag.forwards_sent for ag in tb.agents.values()), "messages")


if __name__ == "__main__":
    main()
