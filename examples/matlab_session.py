#!/usr/bin/env python3
"""The paper's motivating scenario: an interactive MATLAB-style session.

NetSolve's headline interface was MATLAB users typing
``x = netsolve('dgesv', a, b)`` and getting supercomputer cycles without
knowing what an agent or a server is.  This example drives the
MATLAB-flavoured front end: catalogue browsing, short-name resolution,
blocking and non-blocking calls, and MATLAB-style error returns.

Run:  python examples/matlab_session.py
"""

import numpy as np

from repro import standard_testbed
from repro.capi import SimSession
from repro.matlab import MatlabNetSolve


def main() -> None:
    tb = standard_testbed(n_servers=3, seed=7)
    tb.settle()
    ml = MatlabNetSolve(SimSession(tb, "c0"))
    rng = np.random.default_rng(7)

    print(">> netsolve problem browser")
    for name in ml.problems("eigen/"):
        print(f"   {name}")

    # --- x = netsolve('dgesv', a, b) ----------------------------------
    n = 200
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)
    x = ml.netsolve("dgesv", a, b)  # short name resolves to linsys/dgesv
    print(f"\n>> x = netsolve('dgesv', a, b)          residual "
          f"{np.linalg.norm(a @ x - b):.2e}")

    # --- [w, v] = netsolve('symm', s) : multiple returns --------------
    m = rng.standard_normal((40, 40))
    s = (m + m.T) / 2.0
    w, v = ml.netsolve("symm", s)
    print(f">> [w, v] = netsolve('symm', s)         "
          f"max |S v - v diag(w)| = {np.abs(s @ v - v * w).max():.2e}")

    # --- scalar results unwrap ----------------------------------------
    nrm = ml.netsolve("dnrm2", np.array([3.0, 4.0]))
    print(f">> netsolve('dnrm2', [3 4])             {nrm}")

    # --- non-blocking: fire three requests, collect when ready --------
    print("\n>> non-blocking: request = netsolve_nb(...); wait(request)")
    handles = [
        ml.netsolve_nb("dgesv", a, rng.standard_normal(n)) for _ in range(3)
    ]
    print(f"   probes while in flight: {[ml.probe(h) for h in handles]}")
    for i, h in enumerate(handles):
        xi = ml.wait(h)
        print(f"   request {i}: solved on {h.record.server_id!r} "
              f"in {h.record.total_seconds:.3f} virtual s")

    # --- MATLAB-style [x, err] = ... error handling --------------------
    value, err = ml.netsolve_err("dgesv", a, np.ones(n + 1))
    print(f"\n>> [x, err] = netsolve('dgesv', a, wrong_b)")
    print(f"   x   = {value}")
    print(f"   err = {err}")


if __name__ == "__main__":
    main()
