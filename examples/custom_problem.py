#!/usr/bin/env python3
"""Installing a new problem from a problem description file.

NetSolve grows by dropping a problem description onto a server: the
description names the I/O objects and the flop-count formula the agent
needs for scheduling, and the server binds it to the implementation.
Here a server operator adds a custom "correlate" service (normalized
cross-correlation of two signals) next to the stock catalogue, and a
client discovers and calls it with no client-side installation at all —
the description travels over the wire.

Run:  python examples/custom_problem.py
"""

import numpy as np

from repro import builtin_registry
from repro.numerics import rfft_convolve
from repro.problems import parse_pdl
from repro.testbed import ClientDef, HostDef, ServerDef, build_testbed

CUSTOM_PDL = """
problem signal/correlate
    lib         custom
    description Normalized cross-correlation of two real signals
    complexity  20*(n + m)*log2(n + m)
    input  x vector[n]   "first signal"
    input  y vector[m]   "second signal"
    output r vector[n]   "correlation, lag 0 .. n-1"
end
"""


def correlate_handler(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Cross-correlate via FFT convolution with the reversed kernel."""
    full = rfft_convolve(x, y[::-1].copy())
    window = full[y.size - 1 : y.size - 1 + x.size]
    scale = np.linalg.norm(x) * np.linalg.norm(y)
    return window / scale if scale > 0 else window


def main() -> None:
    # the operator's registry: stock catalogue + the new service
    registry = builtin_registry()
    (spec,) = parse_pdl(CUSTOM_PDL)
    registry.register(spec, correlate_handler)

    tb = build_testbed(
        hosts=[HostDef("ws", 20.0), HostDef("broker", 50.0),
               HostDef("crunch", 150.0)],
        servers=[ServerDef("s0", "crunch", registry=registry)],
        clients=[ClientDef("c0", "ws")],
        agent_host="broker",
    )
    tb.settle()

    print("agent now advertises:", len(tb.agent.specs), "problems,")
    print("including the custom one:",
          tb.agent.specs["signal/correlate"].signature())

    # a client finds the echo of a chirp buried in noise
    rng = np.random.default_rng(5)
    chirp = np.sin(np.linspace(0, 20 * np.pi, 128) ** 1.2)
    signal = rng.standard_normal(2048) * 0.3
    true_offset = 700
    signal[true_offset : true_offset + chirp.size] += chirp

    (corr,) = tb.solve("c0", "signal/correlate", [signal, chirp])
    found = int(np.argmax(corr))
    print(f"\nchirp hidden at offset {true_offset}; "
          f"correlation peak at {found}")
    assert abs(found - true_offset) <= 2
    record = tb.client("c0").records[-1]
    print(f"solved remotely on {record.server_id!r} in "
          f"{record.total_seconds:.3f} virtual s "
          f"({record.compute_seconds * 1e3:.1f} ms compute)")


if __name__ == "__main__":
    main()
