#!/usr/bin/env python3
"""A live NetSolve deployment over real TCP sockets.

The exact same agent/server/client components that drive the simulation
run here over localhost TCP: real listening sockets, one connection per
message, threads for computation, and real wall-clock timing.  This is
the configuration a multi-process deployment would use (each component
could live in its own process; see ``TcpTransport.register_remote``).

Run:  python examples/tcp_deployment.py
"""

import time

import numpy as np

from repro import builtin_registry
from repro.config import ClientConfig, ServerConfig, WorkloadPolicy
from repro.core.agent import Agent
from repro.core.client import NetSolveClient
from repro.core.predictor import LinkEstimate, StaticNetworkInfo
from repro.core.server import ComputationalServer
from repro.matlab import MatlabNetSolve
from repro.protocol.tcp import TcpSession, TcpTransport


def main() -> None:
    with TcpTransport() as transport:
        # the agent, with loopback-grade link estimates
        agent = Agent(
            network=StaticNetworkInfo(
                default=LinkEstimate(latency=1e-4, bandwidth=1e9)
            )
        )
        transport.add_node("agent", agent)

        # two computational servers on this machine
        for i, mflops in enumerate((200.0, 400.0)):
            transport.add_node(
                f"server/s{i}",
                ComputationalServer(
                    server_id=f"s{i}",
                    agent_address="agent",
                    registry=builtin_registry(),
                    mflops=mflops,
                    host=transport.host_name,
                    cfg=ServerConfig(
                        workload=WorkloadPolicy(time_step=1.0, threshold=10.0)
                    ),
                ),
            )

        # the client endpoint and a thread-blocking session
        client_node = transport.add_node(
            "client/c0",
            NetSolveClient(
                client_id="c0",
                agent_address="agent",
                cfg=ClientConfig(agent_timeout=10.0, timeout_floor=30.0),
            ),
        )
        session = TcpSession(client_node, timeout=60.0)

        # wait for both registrations to land
        deadline = time.monotonic() + 10.0
        while agent.registrations < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        print(f"agent has {agent.registrations} registered servers, "
              f"{len(agent.specs)} problems")

        rng = np.random.default_rng(1)
        n = 300
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)

        t0 = time.perf_counter()
        handle = session.submit("linsys/dgesv", [a, b])
        (x,) = handle.promise.wait(60.0)
        wall = time.perf_counter() - t0
        print(f"dgesv n={n} over TCP: wall {wall * 1e3:.0f} ms, "
              f"residual {np.linalg.norm(a @ x - b):.2e}, "
              f"server {handle.record.server_id!r}")

        # the MATLAB front end works over TCP unchanged
        ml = MatlabNetSolve(session)
        print("eigen problems on the wire:", ml.problems("eigen/"))
        w, _v = ml.netsolve("symm", (a + a.T) / 2)
        print(f"largest eigenvalue via netsolve('symm'): {w[-1]:.3f}")

    print("transport closed cleanly")


if __name__ == "__main__":
    main()
