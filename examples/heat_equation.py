#!/usr/bin/env python3
"""Solving a PDE through NetSolve: implicit heat diffusion on a grid.

The motivating workload of the paper's introduction: a scientist with a
desktop-class machine and a PDE to integrate. Backward-Euler heat
diffusion needs one sparse SPD solve per timestep — each is shipped to
NetSolve's `sparse/cg` problem (CSR parts travel as plain vectors), and
the steps pipeline as non-blocking requests where the recurrence allows.

Run:  python examples/heat_equation.py
"""

import numpy as np

from repro import standard_testbed
from repro.numerics import poisson_2d
from repro.trace import render_gantt


def main() -> None:
    tb = standard_testbed(
        n_servers=2, server_mflops=[150.0, 150.0], seed=31, bandwidth=12.5e6
    )
    tb.settle()

    # grid and operator: (I + dt * kappa * L) u_{t+1} = u_t
    k = 24                      # 24 x 24 interior points
    n = k * k
    dt_kappa = 0.4
    lap = poisson_2d(k)
    # A = I + dt*kappa*L, still CSR: scale data, bump the diagonal
    a_data = lap.data * dt_kappa
    diag_bump = {}
    for i in range(n):
        row = slice(lap.indptr[i], lap.indptr[i + 1])
        for j_idx in range(row.start, row.stop):
            if lap.indices[j_idx] == i:
                diag_bump[j_idx] = True
    a_data = a_data.copy()
    for j_idx in diag_bump:
        a_data[j_idx] += 1.0

    # initial condition: a hot square in one corner
    u = np.zeros((k, k))
    u[3:8, 3:8] = 100.0
    u = u.ravel()

    total0 = float(u.sum())
    print(f"heat diffusion on a {k}x{k} grid, {n} unknowns, "
          f"nnz={lap.nnz}, 12 implicit steps via sparse/cg\n")

    snapshots = []
    for step in range(12):
        (u,) = tb.solve(
            "c0", "sparse/cg", [lap.indptr, lap.indices, a_data, u]
        )
        grid = u.reshape(k, k)
        snapshots.append((step, float(grid.max()), float(u.sum())))

    print(f"{'step':>4}  {'peak T':>8}  {'total heat':>10}")
    for step, peak, total in snapshots:
        print(f"{step:>4}  {peak:8.2f}  {total:10.2f}")

    # physics sanity: diffusion smooths (peak falls monotonically) and
    # heat leaks through the Dirichlet boundary (total decreases)
    peaks = [p for _s, p, _t in snapshots]
    assert all(p1 >= p2 for p1, p2 in zip(peaks, peaks[1:]))
    assert snapshots[-1][2] < total0

    records = tb.client("c0").records
    print("\nserver occupancy across the 12 solves:")
    print(render_gantt(records, width=64))
    used = {r.server_id for r in records}
    print(f"\nsteps alternated over servers: {sorted(used)}")


if __name__ == "__main__":
    main()
