#!/usr/bin/env python3
"""Quickstart: solve a dense linear system through NetSolve.

Builds a small simulated deployment (one agent, three heterogeneous
computational servers, one client workstation on a 10 Mb/s LAN), then
solves ``A x = b`` remotely — the call ships the matrix to whichever
server the agent predicts will finish first, runs the LU solver there,
and returns the solution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import standard_testbed


def main() -> None:
    # one client (20 Mflop/s workstation), an agent, and three servers
    # rated 50 / 100 / 150 Mflop/s, all on a shared 10 Mb/s LAN
    tb = standard_testbed(n_servers=3, seed=0)
    tb.settle()  # let servers register and report their workload

    print("problems advertised to the agent:")
    for name in sorted(tb.agent.specs):
        print(f"  {name:16s} {tb.agent.specs[name].description}")

    # build a well-conditioned 512 x 512 system
    rng = np.random.default_rng(42)
    n = 512
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)

    # the blocking call: query the agent, ship inputs, solve, return
    (x,) = tb.solve("c0", "linsys/dgesv", [a, b])

    residual = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    record = tb.client("c0").records[-1]
    print(f"\nsolved {n}x{n} dgesv on server {record.server_id!r}")
    print(f"  relative residual : {residual:.2e}")
    print(f"  total time        : {record.total_seconds:.3f} virtual s")
    print(f"  agent negotiation : {record.negotiation_seconds * 1e3:.1f} ms")
    print(f"  data transfer     : {record.transfer_seconds:.3f} s")
    print(f"  server compute    : {record.compute_seconds:.3f} s")

    # non-blocking flavour: submit, do other work, collect later
    handle = tb.submit("c0", "blas/ddot", [np.arange(8.0), np.arange(8.0)])
    print(f"\nnon-blocking submit: done={handle.done}")
    tb.wait_all([handle])
    (dot,) = handle.result()
    print(f"collected ddot result: {dot} (expected {float(np.sum(np.arange(8.0)**2))})")


if __name__ == "__main__":
    main()
