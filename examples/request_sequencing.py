#!/usr/bin/env python3
"""Request sequencing: deflated power iteration with a server-resident matrix.

The workload: estimate the top three eigenvalues of a large symmetric
matrix by power iteration with deflation — dozens of matrix-vector
products against the *same* matrix.  Brokering each product separately
would re-ship the matrix every call; a sequence ships it once to the
agent's best server and references it thereafter.

Run:  python examples/request_sequencing.py
"""

import numpy as np

from repro import open_sequence, standard_testbed


def main() -> None:
    tb = standard_testbed(n_servers=3, seed=21, bandwidth=1.25e6)  # 10 Mb/s
    tb.settle()
    wait = tb.transport.run_until
    client = tb.client("c0")

    # a symmetric matrix with a known, well-separated spectrum
    rng = np.random.default_rng(21)
    n = 384
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    spectrum = np.concatenate([[50.0, 30.0, 18.0], rng.uniform(0.1, 5.0, n - 3)])
    a = (q * spectrum) @ q.T

    seq = open_sequence(client, "blas/dgemv", {"m": n, "n": n}, wait=wait)
    print(f"sequence pinned to server {seq.server_id!r}")
    nbytes = seq.store("A", a)
    print(f"matrix shipped once: {nbytes / 1e6:.2f} MB\n")

    start = tb.kernel.now
    eigenvalues = []
    basis: list[np.ndarray] = []
    for which in range(3):
        x = rng.standard_normal(n)
        lam = 0.0
        for _ in range(40):
            # deflate against converged eigenvectors, locally (cheap)
            for v_known in basis:
                x -= (v_known @ x) * v_known
            x /= np.linalg.norm(x)
            (y,) = seq.solve("blas/dgemv", [seq.ref("A"), x])  # remote matvec
            lam = float(x @ y)
            x = y
        x /= np.linalg.norm(x)
        basis.append(x)
        eigenvalues.append(lam)
        print(f"eigenvalue {which + 1}: {lam:10.4f}   "
              f"(truth {sorted(spectrum)[::-1][which]:10.4f})")
    elapsed = tb.kernel.now - start

    matvecs = 3 * 40
    resend_cost = matvecs * (n * n * 8) / 1.25e6  # re-shipping A each call
    print(f"\n{matvecs} remote matvecs in {elapsed:.2f} virtual s "
          f"(sequenced)")
    print(f"re-shipping the matrix each call would have spent "
          f"~{resend_cost:.0f} s on the wire alone")
    seq.release()
    print("sequence released; server cache empty:",
          tb.server(seq.server_id).cached_objects == 0)


if __name__ == "__main__":
    main()
