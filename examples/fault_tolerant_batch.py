#!/usr/bin/env python3
"""Watching the fault-tolerance loop save a batch.

Half-way through a 16-request batch, the two servers carrying most of
the load crash.  The client library times the stuck attempts out,
reports the failures to the agent (which marks the servers suspect), and
resubmits to the survivors — every request completes.  The script then
revives one server and shows it re-registering and rejoining the pool.

Run:  python examples/fault_tolerant_batch.py
"""

import numpy as np

from repro import (
    AgentConfig,
    ClientConfig,
    FailureInjector,
    ServerConfig,
    WorkloadPolicy,
    standard_testbed,
    submit_farm,
)
from repro.testbed import server_address


def main() -> None:
    tb = standard_testbed(
        n_servers=4,
        server_mflops=[100.0] * 4,
        seed=13,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=3),
        client_cfg=ClientConfig(
            max_retries=5, timeout_floor=5.0, timeout_factor=3.0
        ),
        server_cfg=ServerConfig(
            reregister_interval=60.0,
            workload=WorkloadPolicy(time_step=10.0, threshold=10.0),
        ),
    )
    tb.settle()

    rng = np.random.default_rng(13)
    n = 384
    args = []
    for _ in range(16):
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        args.append([a, rng.standard_normal(n)])

    start = tb.kernel.now
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)

    injector = FailureInjector(tb.transport)
    injector.crash_at(start + 1.0, server_address("s0"))
    injector.crash_at(start + 2.0, server_address("s1"))
    print("batch of 16 submitted; s0 crashes at +1.0s, s1 at +2.0s\n")

    tb.wait_all(farm.handles)

    for handle in farm.handles:
        record = handle.record
        path = " -> ".join(
            f"{a.server_id}[{a.outcome}]" for a in record.attempts
        )
        print(f"req {record.request_id:>2}: {path:44s} "
              f"{record.total_seconds:6.1f}s")

    stats = farm.stats()
    print(f"\ncompleted {stats.completed}/16, lost {stats.failed}, "
          f"total retries {stats.total_retries}")
    print(f"agent view: " + ", ".join(
        f"{e.server_id}={'up' if e.alive else 'DOWN'}"
        for e in tb.agent.table.entries()
    ))

    # revive s0: its restart path re-registers with the agent
    print("\nreviving s0 ...")
    tb.transport.revive(server_address("s0"))
    tb.run(until=tb.kernel.now + 90.0)
    print(f"agent view: " + ", ".join(
        f"{e.server_id}={'up' if e.alive else 'DOWN'}"
        for e in tb.agent.table.entries()
    ))


if __name__ == "__main__":
    main()
