"""Server throughput — concurrent executors and same-problem batching.

Claim: the executor work buys throughput on two independent axes.

* **Worker scaling** — a server with ``max_concurrent = k`` slots on a
  ``k``-CPU host clears a same-sized flood ~``k``x faster than the
  single-slot baseline.  Measured twice: in the simulator (virtual
  time, deterministic — the model of the claim) and over real sockets
  (wall clock — the proof the thread pool actually overlaps work; this
  axis needs real cores, so the wall-clock gate only applies when the
  machine has them).
* **Micro-batching** — while the queue is saturated, stacking queued
  same-shape requests into one vectorized kernel call amortizes
  per-call dispatch: small-FFT floods clear >=3x faster at batch size 8
  at the kernel boundary, and the end-to-end TCP flood inherits a
  smaller but real share of that win (messaging is unchanged; only the
  compute shrinks).

Writes ``benchmarks/results/BENCH_server.json``.  Set ``BENCH_SMOKE=1``
for a quick CI run (smaller floods, same asserts).
"""

import json
import os
import time

import numpy as np

from _harness import RESULTS_DIR, emit, linear_system
from repro.config import ServerConfig
from repro.problems.builtin import builtin_registry
from repro.protocol.messages import SolveRequest, SolveReply
from repro.simnet.rng import RngStreams

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

SIM_JOBS = 8 if SMOKE else 16
SIM_N = 256                    # ~1.1e7 flops: 0.11 s at 100 Mflop/s
TCP_JOBS = 6 if SMOKE else 8
TCP_N = 384
FFT_N = 256
FFT_COUNT = 32 if SMOKE else 64
BATCH = 8


# ----------------------------------------------------------------------
# worlds
# ----------------------------------------------------------------------
def make_sim_world(cfg, *, cpus):
    from repro.core.server import ComputationalServer
    from repro.protocol.transport import Component, SimTransport
    from repro.simnet.kernel import EventKernel
    from repro.simnet.network import Topology

    class Probe(Component):
        def __init__(self):
            self.replies = []

        def on_message(self, src, msg):
            if isinstance(msg, SolveReply):
                self.replies.append((self.node.now(), msg))

    kernel = EventKernel()
    topo = Topology(kernel)
    topo.add_host("sh", 100.0, cpus=cpus)
    topo.add_host("ph", 100.0)
    topo.connect_all(latency=1e-4, bandwidth=1e9)
    transport = SimTransport(topo)
    server = ComputationalServer(
        server_id="sv", agent_address="agent-probe",
        registry=builtin_registry().subset(("linsys/dgesv", "signal/fft")),
        mflops=100.0, host="sh", cfg=cfg,
    )
    probe = Probe()
    transport.add_node("agent-probe", "ph", Probe())
    transport.add_node("client-probe", "ph", probe)
    transport.add_node("server/sv", "sh", server)
    return kernel, transport, server, probe


def make_tcp_world(cfg, *, compute_workers):
    from repro.core.server import ComputationalServer
    from repro.protocol.tcp import TcpTransport
    from repro.protocol.transport import Component

    class Probe(Component):
        def __init__(self):
            self.replies = []

        def on_message(self, src, msg):
            if isinstance(msg, SolveReply):
                self.replies.append(msg)

    transport = TcpTransport()
    server = ComputationalServer(
        server_id="sv", agent_address="agent",  # unresolvable: drops
        registry=builtin_registry().subset(("linsys/dgesv", "signal/fft")),
        mflops=100.0, host=transport.host_name, cfg=cfg,
    )
    transport.add_node(
        "server/sv", server, port=0, compute_workers=compute_workers
    )
    probe = Probe()
    transport.add_node("probe", probe, port=0)
    return transport, server, probe


def wait_for(predicate, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


# ----------------------------------------------------------------------
# axis 1: worker scaling
# ----------------------------------------------------------------------
def sim_worker_scaling() -> dict:
    """Virtual-time makespan of one flood vs the server's slot count."""
    rng = RngStreams(7).get("bench.server")
    args = [linear_system(rng, SIM_N) for _ in range(SIM_JOBS)]
    out = {}
    for slots in (1, 2, 4):
        kernel, transport, server, probe = make_sim_world(
            ServerConfig(max_concurrent=slots), cpus=slots,
        )
        for rid, (a, b) in enumerate(args, start=1):
            transport.node("client-probe").send("server/sv", SolveRequest(
                request_id=rid, problem="linsys/dgesv", inputs=(a, b),
                reply_to="client-probe",
            ))
        kernel.run(until=3600.0)
        assert len(probe.replies) == SIM_JOBS
        assert all(m.ok for _t, m in probe.replies)
        makespan = max(t for t, _m in probe.replies)
        out[slots] = {
            "makespan_s": makespan,
            "throughput_rps": SIM_JOBS / makespan,
        }
    out["speedup_4_vs_1"] = out[1]["makespan_s"] / out[4]["makespan_s"]
    return out


def tcp_worker_scaling() -> dict:
    """Wall-clock makespan of the same flood over real sockets."""
    rng = RngStreams(7).get("bench.server.tcp")
    args = [linear_system(rng, TCP_N) for _ in range(TCP_JOBS)]
    out = {}
    for workers in (1, 4):
        transport, server, probe = make_tcp_world(
            ServerConfig(max_concurrent=workers), compute_workers=workers,
        )
        try:
            t0 = time.perf_counter()
            for rid, (a, b) in enumerate(args, start=1):
                transport.nodes["probe"].send("server/sv", SolveRequest(
                    request_id=rid, problem="linsys/dgesv", inputs=(a, b),
                    reply_to="probe",
                ))
            assert wait_for(lambda: len(probe.replies) >= TCP_JOBS)
            elapsed = time.perf_counter() - t0
            assert all(m.ok for m in probe.replies)
        finally:
            transport.close()
        out[workers] = {
            "makespan_s": elapsed,
            "throughput_rps": TCP_JOBS / elapsed,
        }
    out["speedup_4_vs_1"] = out[1]["makespan_s"] / out[4]["makespan_s"]
    return out


# ----------------------------------------------------------------------
# axis 2: same-problem micro-batching
# ----------------------------------------------------------------------
def batching_kernel() -> dict:
    """Registry-boundary cost of a small-FFT flood, stacked vs serial.

    Best-of-3 wall-clock on both lanes; the stacked lane runs the whole
    flood as ``FFT_COUNT / BATCH`` vectorized calls.  Also reports the
    (smaller) dgesv win — its batched panel factorization vectorizes
    only the elementwise stages, so most of its time stays per-item.
    """
    reg = builtin_registry()
    rng = np.random.default_rng(7)
    xs = [rng.standard_normal(FFT_N) for _ in range(FFT_COUNT)]
    single = batched = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for x in xs:
            reg.execute("signal/fft", [x])
        single = min(single, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for i in range(0, FFT_COUNT, BATCH):
            reg.execute_batch(
                "signal/fft", [[x] for x in xs[i:i + BATCH]]
            )
        batched = min(batched, time.perf_counter() - t0)

    mats = [linear_system(rng, 96) for _ in range(32)]
    d_single = d_batched = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for a, b in mats:
            reg.execute("linsys/dgesv", [a, b])
        d_single = min(d_single, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for i in range(0, 32, BATCH):
            reg.execute_batch(
                "linsys/dgesv", [[a, b] for a, b in mats[i:i + BATCH]]
            )
        d_batched = min(d_batched, time.perf_counter() - t0)
    return {
        "fft": {
            "n": FFT_N, "count": FFT_COUNT, "batch": BATCH,
            "single_s": single, "batched_s": batched,
            "speedup": single / batched,
        },
        "dgesv": {
            "n": 96, "count": 32, "batch": BATCH,
            "single_s": d_single, "batched_s": d_batched,
            "speedup": d_single / d_batched,
        },
    }


def tcp_batching_flood() -> dict:
    """End-to-end TCP flood of small FFTs, batching on vs off.

    Single slot, single worker: the flood outruns the service rate, the
    queue builds, and with ``batch_max=BATCH`` the drain stacks waiting
    requests.  Messaging cost is identical in both modes — only the
    compute share shrinks — so the end-to-end win is necessarily below
    the kernel-boundary ratio.
    """
    rng = np.random.default_rng(11)
    xs = [rng.standard_normal(FFT_N) for _ in range(FFT_COUNT)]
    out = {}
    for label, batch_max in (("off", 1), ("on", BATCH)):
        transport, server, probe = make_tcp_world(
            ServerConfig(max_concurrent=1, batch_max=batch_max),
            compute_workers=1,
        )
        try:
            t0 = time.perf_counter()
            for rid, x in enumerate(xs, start=1):
                transport.nodes["probe"].send("server/sv", SolveRequest(
                    request_id=rid, problem="signal/fft", inputs=(x,),
                    reply_to="probe",
                ))
            assert wait_for(lambda: len(probe.replies) >= FFT_COUNT)
            elapsed = time.perf_counter() - t0
            assert all(m.ok for m in probe.replies)
        finally:
            transport.close()
        out[label] = {
            "makespan_s": elapsed,
            "batches": server.batches,
            "batched_requests": server.batched_requests,
        }
    out["speedup_on_vs_off"] = (
        out["off"]["makespan_s"] / out["on"]["makespan_s"]
    )
    return out


# ----------------------------------------------------------------------
def test_server_throughput():
    sim = sim_worker_scaling()
    tcp = tcp_worker_scaling()
    kern = batching_kernel()
    flood = tcp_batching_flood()
    cores = os.cpu_count() or 1

    lines = [
        f"server throughput: {SIM_JOBS} x dgesv({SIM_N}) flood (sim), "
        f"{TCP_JOBS} x dgesv({TCP_N}) (tcp), "
        f"{FFT_COUNT} x fft({FFT_N}) batching flood",
        "",
        f"{'axis':>24} {'1-slot':>10} {'4-slot':>10} {'speedup':>8}",
        (
            f"{'sim makespan (virt s)':>24} "
            f"{sim[1]['makespan_s']:>10.3f} {sim[4]['makespan_s']:>10.3f} "
            f"{sim['speedup_4_vs_1']:>8.2f}"
        ),
        (
            f"{'tcp makespan (wall s)':>24} "
            f"{tcp[1]['makespan_s']:>10.3f} {tcp[4]['makespan_s']:>10.3f} "
            f"{tcp['speedup_4_vs_1']:>8.2f}"
        ),
        "",
        f"{'batching':>24} {'serial':>10} {'stacked':>10} {'speedup':>8}",
        (
            f"{'fft kernel (wall s)':>24} "
            f"{kern['fft']['single_s']:>10.4f} "
            f"{kern['fft']['batched_s']:>10.4f} "
            f"{kern['fft']['speedup']:>8.2f}"
        ),
        (
            f"{'dgesv kernel (wall s)':>24} "
            f"{kern['dgesv']['single_s']:>10.4f} "
            f"{kern['dgesv']['batched_s']:>10.4f} "
            f"{kern['dgesv']['speedup']:>8.2f}"
        ),
        (
            f"{'tcp flood (wall s)':>24} "
            f"{flood['off']['makespan_s']:>10.4f} "
            f"{flood['on']['makespan_s']:>10.4f} "
            f"{flood['speedup_on_vs_off']:>8.2f}"
        ),
        "",
        (
            f"tcp flood batched {flood['on']['batched_requests']}/"
            f"{FFT_COUNT} requests into {flood['on']['batches']} stacked "
            f"calls ({cores} core(s) on this machine)"
        ),
    ]
    emit("server_throughput", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_server.json").write_text(
        json.dumps(
            {
                "benchmark": "server_throughput",
                "smoke": SMOKE,
                "cpu_count": cores,
                "sim_scaling": sim,
                "tcp_scaling": tcp,
                "batching_kernel": kern,
                "tcp_batching": flood,
            },
            indent=2,
        )
        + "\n"
    )

    # worker scaling: the simulator is the deterministic model — 4 slots
    # on 4 CPUs must clear the flood at least 2x faster than 1 slot
    assert sim["speedup_4_vs_1"] >= 2.0, sim
    assert sim[1]["makespan_s"] > sim[2]["makespan_s"] > sim[4]["makespan_s"]
    # real sockets can only show thread speedup when the machine has the
    # cores; on smaller boxes the wall-clock numbers are report-only
    if cores >= 4:
        assert tcp["speedup_4_vs_1"] >= 2.0, tcp
    # batching: the kernel boundary is where the claim lives
    assert kern["fft"]["speedup"] >= 3.0, kern
    assert kern["dgesv"]["speedup"] > 1.0, kern
    # end-to-end, batching must actually engage and must not cost time
    assert flood["on"]["batches"] > 0, flood
    assert flood["speedup_on_vs_off"] >= 1.0, flood


if __name__ == "__main__":
    test_server_throughput()
    print("bench_server_throughput: all assertions passed")
