"""Ablation A1 — what the predictor's workload term buys.

DESIGN.md calls out the workload correction (effective speed =
peak * 100/(100+w)) as a load-bearing design choice.  This ablation
re-runs the T3 scenario with an agent whose predictor ignores workload
reports (``use_workload=False``): it keeps MCT's form but ranks by peak
speed and network only, so externally loaded machines soak up work they
cannot turn around.
"""

from repro.config import AgentConfig, ClientConfig
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_REQUESTS = 48
SIZES = (256, 320, 384, 448, 512)
PEAKS = [150.0, 100.0, 75.0, 50.0]
LOADS = [4.0, 0.0, 1.0, 0.0]


def run(use_workload: bool):
    tb = standard_testbed(
        n_servers=4,
        server_mflops=PEAKS,
        seed=55,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(policy="mct", candidate_list_length=3),
        client_cfg=ClientConfig(max_retries=5, timeout_floor=30.0,
                                server_timeout=7200.0),
        use_workload=use_workload,
    )
    for i, load in enumerate(LOADS):
        if load > 0:
            tb.host(f"zeus{i}").set_background_load(load)
    tb.settle(30.0)
    rng = RngStreams(55).get("a1.data")
    args = [
        list(linear_system(rng, SIZES[i % len(SIZES)]))
        for i in range(N_REQUESTS)
    ]
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    tb.wait_all(farm.handles)
    assert len(farm.completed) == N_REQUESTS
    return farm.makespan, farm.stats().mean_seconds, farm.servers_used()


def test_a1_predictor_without_workload_term(benchmark):
    def experiment():
        return {"with": run(True), "without": run(False)}

    results = once(benchmark, experiment)

    rows = [
        [label, f"{mk:.1f}", f"{mean:.1f}",
         " ".join(f"{k}:{v}" for k, v in spread.items())]
        for label, (mk, mean, spread) in results.items()
    ]
    text = format_table(
        ["workload term", "makespan(s)", "mean(s)", "per-server"],
        rows,
        title=(
            "A1: MCT with vs without the workload correction "
            "(peaks 150/100/75/50, loads 4/0/1/0)"
        ),
    )
    emit("A1_ablation_predictor", text)

    with_term = results["with"]
    without = results["without"]
    # claim: dropping the workload term costs real makespan
    assert with_term[0] < without[0]
    # the blind agent over-assigns the loaded 150 Mflop/s machine
    assert without[2].get("s0", 0) > with_term[2].get("s0", 0)
