"""Experiment F5 — many clients sharing one NetSolve system.

Claim (NetSolve): the agent serves many independent client applications
at once; MCT keeps the pool balanced under concurrent demand, and total
throughput grows with offered load until the servers saturate, after
which per-request latency grows but nothing collapses.

Protocol: C clients on separate workstations each farm 12 dgesv
requests concurrently over 4 equal servers; sweep C in {1, 2, 4, 8}.
"""

from repro.config import AgentConfig, ClientConfig, ServerConfig
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import ClientDef, HostDef, LinkDef, ServerDef, build_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_SERVERS = 4
PER_CLIENT = 12
SIZE = 384
CLIENT_COUNTS = (1, 2, 4, 8)


def run_clients(n_clients: int):
    hosts = [HostDef("broker", 50.0)]
    clients = []
    for i in range(n_clients):
        hosts.append(HostDef(f"ws{i}", 20.0))
        clients.append(ClientDef(
            f"c{i}", f"ws{i}",
            cfg=ClientConfig(max_retries=5, timeout_floor=60.0,
                             server_timeout=7200.0),
        ))
    servers = []
    for i in range(N_SERVERS):
        hosts.append(HostDef(f"srv{i}", 100.0))
        servers.append(ServerDef(f"s{i}", f"srv{i}", cfg=ServerConfig()))
    tb = build_testbed(
        hosts=hosts,
        servers=servers,
        clients=clients,
        agent_host="broker",
        default_link=LinkDef("*", "*", latency=2e-3, bandwidth=12.5e6),
        agent_cfg=AgentConfig(candidate_list_length=3),
    )
    tb.settle(30.0)
    rng = RngStreams(111).get("f5.data")
    start = tb.kernel.now
    farms = []
    for i in range(n_clients):
        args = [list(linear_system(rng, SIZE)) for _ in range(PER_CLIENT)]
        farms.append(submit_farm(tb.client(f"c{i}"), "linsys/dgesv", args))
    handles = [h for farm in farms for h in farm.handles]
    tb.wait_all(handles)
    makespan = max(f.makespan for f in farms)
    total = n_clients * PER_CLIENT
    mean_latency = sum(
        r.total_seconds for f in farms for r in f.records
    ) / total
    spread: dict[str, int] = {}
    for farm in farms:
        for sid, count in farm.servers_used().items():
            spread[sid] = spread.get(sid, 0) + count
    return {
        "clients": n_clients,
        "requests": total,
        "makespan": makespan,
        "throughput": total / (tb.kernel.now - start),
        "mean_latency": mean_latency,
        "spread": dict(sorted(spread.items())),
    }


def test_f5_multiclient_scaling(benchmark):
    results = once(
        benchmark, lambda: [run_clients(c) for c in CLIENT_COUNTS]
    )

    rows = [
        [r["clients"], r["requests"], f"{r['makespan']:.1f}",
         f"{r['throughput']:.2f}", f"{r['mean_latency']:.2f}",
         " ".join(f"{k}:{v}" for k, v in r["spread"].items())]
        for r in results
    ]
    text = format_table(
        ["clients", "requests", "makespan(s)", "req/s", "mean latency(s)",
         "per-server"],
        rows,
        title=(
            f"F5: C concurrent clients x {PER_CLIENT} dgesv n={SIZE} over "
            f"{N_SERVERS} equal servers"
        ),
    )
    emit("F5_multiclient", text)

    by_clients = {r["clients"]: r for r in results}
    # all requests complete at every load level
    for r in results:
        assert r["requests"] == r["clients"] * PER_CLIENT
    # throughput grows with offered load until the pool saturates
    assert by_clients[2]["throughput"] > by_clients[1]["throughput"]
    assert by_clients[4]["throughput"] > by_clients[2]["throughput"]
    # past saturation latency rises but the system stays stable
    assert by_clients[8]["mean_latency"] > by_clients[1]["mean_latency"]
    assert by_clients[8]["throughput"] >= 0.9 * by_clients[4]["throughput"]
    # the concurrent demand lands on every server
    assert len(by_clients[8]["spread"]) == N_SERVERS