"""Experiment T3 — MCT load balancing vs baseline policies.

Claim (NetSolve): ranking servers by predicted completion time (network
+ workload-corrected compute) beats uninformed selection.  Baselines:
uniform random, round-robin, and always-the-fastest-peak-machine.

Protocol: 48 mixed-size ``linsys/dgesv`` requests farmed from one client
over 4 servers whose *peak* speeds (150/100/75/50 Mflop/s) and external
background loads (2/0/1/0) deliberately diverge — the nominally fastest
machine is the busiest, so peak ratings mislead and only the
workload-corrected predictor sees the true available capacity
(50/100/37.5/50 effective Mflop/s).  Lower batch makespan is better.
"""

from repro.config import AgentConfig, ClientConfig
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

POLICIES = ("mct", "roundrobin", "random", "fastestpeak")
N_REQUESTS = 48
SIZES = (256, 320, 384, 448, 512)
PEAKS = [150.0, 100.0, 75.0, 50.0]
LOADS = [2.0, 0.0, 1.0, 0.0]


def run_policy(policy: str):
    tb = standard_testbed(
        n_servers=4,
        server_mflops=PEAKS,
        seed=51,
        bandwidth=12.5e6,  # 100 Mb/s: compute, not the wire, dominates
        agent_cfg=AgentConfig(policy=policy, candidate_list_length=3),
        client_cfg=ClientConfig(max_retries=5, timeout_floor=30.0,
                                server_timeout=7200.0),
    )
    for i, load in enumerate(LOADS):
        if load > 0:
            tb.host(f"zeus{i}").set_background_load(load)
    tb.settle(30.0)
    rng = RngStreams(51).get("t3.data")
    args = [
        list(linear_system(rng, SIZES[i % len(SIZES)]))
        for i in range(N_REQUESTS)
    ]
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    tb.wait_all(farm.handles)
    stats = farm.stats()
    return {
        "policy": policy,
        "makespan": farm.makespan,
        "mean": stats.mean_seconds,
        "p95": stats.p95_seconds,
        "spread": farm.servers_used(),
        "completed": stats.completed,
    }


def test_t3_scheduling_policies(benchmark):
    results = once(benchmark, lambda: [run_policy(p) for p in POLICIES])
    by_policy = {r["policy"]: r for r in results}

    rows = [
        [r["policy"], r["completed"], f"{r['makespan']:.1f}",
         f"{r['mean']:.1f}", f"{r['p95']:.1f}",
         " ".join(f"{k}:{v}" for k, v in r["spread"].items())]
        for r in results
    ]
    text = format_table(
        ["policy", "done", "makespan(s)", "mean(s)", "p95(s)", "per-server"],
        rows,
        title=(
            "T3: 48 mixed dgesv, peaks 150/100/75/50 Mflop/s with external "
            "loads 2/0/1/0 (effective 50/100/37.5/50)"
        ),
    )
    emit("T3_scheduling", text)

    for r in results:
        assert r["completed"] == N_REQUESTS

    mct = by_policy["mct"]["makespan"]
    # claims: MCT strictly beats every baseline on makespan
    for baseline in ("roundrobin", "random", "fastestpeak"):
        assert mct < by_policy[baseline]["makespan"], baseline
    # and MCT actually spreads work across the pool
    assert len(by_policy["mct"]["spread"]) >= 3
    # fastest-peak herds onto the nominally fastest (but busy) machine
    assert by_policy["fastestpeak"]["spread"] == {"s0": N_REQUESTS}
    # MCT routes the plurality of work to the highest *effective* server
    mct_spread = by_policy["mct"]["spread"]
    assert max(mct_spread, key=mct_spread.get) == "s1"
