"""Microbenchmarks — zero-copy wire path vs the legacy copying encoder.

Measures the hot protocol paths on dgesv-sized SolveRequests
(n in {256, 1024, 2048}):

* ``legacy encode``    — the seed's single-buffer encoder (tobytes +
  concatenation copies), inlined below as the reference baseline,
* ``encode_message``   — the scatter/gather encoder joined to one buffer,
* ``encode_iov``       — the gather list alone (what transports consume),
* ``frame_size``       — analytic sizing (the simulator's per-message cost;
  the legacy equivalent is encoding and taking ``len``),
* ``decode``           — zero-copy decode from a writable bytearray.

Prints a paper-style table, persists it under ``benchmarks/results/``,
and writes machine-readable ``benchmarks/results/BENCH_wire.json``.
Asserts the headline claim: the new encode+frame_size path is >= 3x
faster than the legacy path at n=1024, and frame_size materializes no
payload-sized buffer.
"""

import json
import time
import tracemalloc

import numpy as np

from _harness import RESULTS_DIR, emit
from repro.protocol.codec import (
    decode_message,
    encode_message,
    encode_message_iov,
    frame_size,
)
from repro.protocol.messages import SolveRequest

RNG = np.random.default_rng(0)
SIZES = (256, 1024, 2048)


# ----------------------------------------------------------------------
# The seed codec's encoder, kept verbatim as the baseline.  It pays a
# tobytes() copy per array plus a header+body concatenation copy.
# ----------------------------------------------------------------------
def _legacy_encode_value(value, out: bytearray) -> None:
    import struct

    from repro.protocol.codec import (
        _T_BOOL, _T_BYTES, _T_COMPLEX, _T_DICT, _T_FLOAT, _T_INT, _T_LIST,
        _T_NDARRAY, _T_NONE, _T_OBJREF, _T_STR,
    )
    from repro.protocol.messages import ObjectRef

    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        out.append(_T_INT)
        out += struct.pack("<q", int(value))
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += struct.pack("<d", float(value))
    elif isinstance(value, (complex, np.complexfloating)):
        out.append(_T_COMPLEX)
        cv = complex(value)
        out += struct.pack("<dd", cv.real, cv.imag)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, np.ndarray):
        contig = np.ascontiguousarray(value)
        out.append(_T_NDARRAY)
        dname = value.dtype.name.encode("ascii")
        out.append(len(dname))
        out += dname
        out.append(contig.ndim)
        for dim in contig.shape:
            out += struct.pack("<q", dim)
        raw = contig.tobytes()
        out += struct.pack("<Q", len(raw))
        out += raw
    elif isinstance(value, ObjectRef):
        raw = value.key.encode("utf-8")
        out.append(_T_OBJREF)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            _legacy_encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            _legacy_encode_value(key, out)
            _legacy_encode_value(item, out)
    else:  # pragma: no cover
        raise AssertionError(f"unexpected {type(value)}")


def _legacy_encode_message(msg) -> bytes:
    from repro.protocol.codec import HEADER, MAGIC, PROTOCOL_VERSION

    body = bytearray()
    _legacy_encode_value(msg.to_fields(), body)
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, type(msg).TYPE_CODE, len(body))
    return header + bytes(body)


def _solve_request(n: int) -> SolveRequest:
    a = RNG.standard_normal((n, n))
    b = RNG.standard_normal(n)
    return SolveRequest(
        request_id=1, problem="linsys/dgesv", inputs=(a, b),
        reply_to="client/c0",
    )


def _best_of(fn, repeats: int) -> float:
    """Best-of-k wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure(n: int) -> dict:
    msg = _solve_request(n)
    repeats = max(3, 40_000_000 // (n * n * 8))
    wire = bytearray()
    for part in encode_message_iov(msg):
        wire += part
    row = {
        "n": n,
        "frame_bytes": frame_size(msg),
        "legacy_encode_s": _best_of(lambda: _legacy_encode_message(msg), repeats),
        "encode_s": _best_of(lambda: encode_message(msg), repeats),
        "encode_iov_s": _best_of(lambda: encode_message_iov(msg), repeats),
        "legacy_frame_size_s": _best_of(
            lambda: len(_legacy_encode_message(msg)), repeats
        ),
        "frame_size_s": _best_of(lambda: frame_size(msg), repeats),
        "decode_s": _best_of(lambda: decode_message(wire), repeats),
    }
    row["speedup_encode_plus_size"] = (
        (row["legacy_encode_s"] + row["legacy_frame_size_s"])
        / (row["encode_s"] + row["frame_size_s"])
    )
    return row


def test_wire_microbench():
    rows = [_measure(n) for n in SIZES]

    # frame_size must be purely analytic: no payload-sized allocation
    big = _solve_request(1024)
    frame_size(big)  # warm caches before tracing
    tracemalloc.start()
    frame_size(big)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    payload = big.inputs[0].nbytes
    assert peak < payload / 8, f"frame_size allocated {peak} bytes"

    lines = [
        "Wire path microbenchmark — dgesv SolveRequest, times in ms (best-of-k)",
        "",
        f"{'n':>5} {'bytes':>10} {'legacy enc':>11} {'encode':>8} "
        f"{'iov':>8} {'legacy size':>12} {'size':>8} {'decode':>8} {'speedup':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>5} {r['frame_bytes']:>10} "
            f"{r['legacy_encode_s'] * 1e3:>11.3f} {r['encode_s'] * 1e3:>8.3f} "
            f"{r['encode_iov_s'] * 1e3:>8.3f} "
            f"{r['legacy_frame_size_s'] * 1e3:>12.3f} "
            f"{r['frame_size_s'] * 1e3:>8.4f} {r['decode_s'] * 1e3:>8.3f} "
            f"{r['speedup_encode_plus_size']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        "speedup = (legacy encode + legacy frame_size) / (encode + frame_size)"
    )
    emit("BENCH_wire", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wire.json").write_text(
        json.dumps({"benchmark": "wire_micro", "rows": rows}, indent=2) + "\n"
    )

    at_1024 = next(r for r in rows if r["n"] == 1024)
    assert at_1024["speedup_encode_plus_size"] >= 3.0, at_1024


if __name__ == "__main__":
    test_wire_microbench()
