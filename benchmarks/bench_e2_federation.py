"""Extension experiment E2 — federated agents share the broker load.

NetSolve's scalability path: replicate the agent and let the replicas
mirror ground truth (registrations, workload reports, failure reports),
so clients spread their queries over the agent pool while every agent
can broker every request.

Protocol: 8 clients x 8 requests over 4 servers, brokered by 1 vs 2
agents (clients split evenly).  Measured: per-agent query load,
mirroring overhead, and that results/makespan are unaffected.
"""

from repro.config import ClientConfig
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import ClientDef, HostDef, LinkDef, ServerDef, build_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_CLIENTS = 8
PER_CLIENT = 8
N_SERVERS = 4
SIZE = 320


def run(n_agents: int):
    agent_addresses = ["agent"] + [f"agent-{i}" for i in range(1, n_agents)]
    hosts = [HostDef(f"agh{i}", 50.0) for i in range(n_agents)]
    extra = [
        (addr, f"agh{i}")
        for i, addr in enumerate(agent_addresses)
        if i > 0
    ]
    servers = []
    for i in range(N_SERVERS):
        hosts.append(HostDef(f"srv{i}", 100.0))
        servers.append(ServerDef(
            f"s{i}", f"srv{i}", agent=agent_addresses[i % n_agents]
        ))
    clients = []
    for i in range(N_CLIENTS):
        hosts.append(HostDef(f"ws{i}", 20.0))
        clients.append(ClientDef(
            f"c{i}", f"ws{i}", agent=agent_addresses[i % n_agents],
            cfg=ClientConfig(max_retries=5, timeout_floor=60.0,
                             server_timeout=7200.0),
        ))
    tb = build_testbed(
        hosts=hosts,
        servers=servers,
        clients=clients,
        agent_host="agh0",
        extra_agents=extra,
        default_link=LinkDef("*", "*", latency=2e-3, bandwidth=12.5e6),
    )
    tb.settle(30.0)
    rng = RngStreams(121).get("e2.data")
    farms = []
    for i in range(N_CLIENTS):
        args = [list(linear_system(rng, SIZE)) for _ in range(PER_CLIENT)]
        farms.append(submit_farm(tb.client(f"c{i}"), "linsys/dgesv", args))
    tb.wait_all([h for f in farms for h in f.handles])
    queries = {addr: a.queries_served for addr, a in tb.agents.items()}
    mirrors = sum(a.forwards_sent for a in tb.agents.values())
    makespan = max(f.makespan for f in farms)
    completed = sum(len(f.completed) for f in farms)
    return {
        "agents": n_agents,
        "queries": queries,
        "max_queries": max(queries.values()),
        "mirrors": mirrors,
        "makespan": makespan,
        "completed": completed,
    }


def test_e2_federated_agents(benchmark):
    results = once(benchmark, lambda: [run(1), run(2)])

    rows = [
        [r["agents"], r["completed"], f"{r['makespan']:.1f}",
         r["max_queries"], r["mirrors"],
         " ".join(f"{k}:{v}" for k, v in sorted(r["queries"].items()))]
        for r in results
    ]
    text = format_table(
        ["agents", "completed", "makespan(s)", "max queries/agent",
         "mirror msgs", "per-agent queries"],
        rows,
        title=(
            f"E2: {N_CLIENTS} clients x {PER_CLIENT} dgesv over "
            f"{N_SERVERS} servers, 1 vs 2 federated agents"
        ),
    )
    emit("E2_federation", text)

    single, double = results
    total = N_CLIENTS * PER_CLIENT
    assert single["completed"] == double["completed"] == total
    # the broker hot spot halves (queries split across the federation)
    assert double["max_queries"] <= 0.6 * single["max_queries"]
    # mirroring costs messages, but only proportional to ground-truth
    # events, not to query volume
    assert double["mirrors"] > 0
    assert double["mirrors"] < total
    # and scheduling quality is preserved within noise
    assert double["makespan"] < 1.3 * single["makespan"]
