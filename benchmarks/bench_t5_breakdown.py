"""Experiment T5 — where a request's time goes.

Claim (NetSolve): the agent negotiation is a small constant cost; data
transfer amortizes as problems grow; computation dominates large
requests — so the brokering architecture adds negligible overhead
exactly where remote solving is worthwhile.

Protocol: single ``linsys/dgesv`` requests for n in {128..2048};
decompose each into negotiation (agent round trip), transfer (request/
reply shipping minus server compute) and compute (server-reported).
"""

from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

SIZES = (128, 256, 512, 1024, 2048)


def run_breakdown():
    tb = standard_testbed(
        n_servers=2, server_mflops=[100.0, 200.0], seed=91, bandwidth=1.25e6
    )
    tb.settle(30.0)
    rng = RngStreams(91).get("t5.data")
    rows = []
    for n in SIZES:
        a, b = linear_system(rng, n)
        tb.run(until=tb.kernel.now + 15.0)
        tb.solve("c0", "linsys/dgesv", [a, b])
        record = tb.client("c0").records[-1]
        rows.append(
            {
                "n": n,
                "negotiation": record.negotiation_seconds,
                "transfer": record.transfer_seconds,
                "compute": record.compute_seconds,
                "total": record.negotiation_seconds
                + record.transfer_seconds
                + record.compute_seconds,
            }
        )
    return rows


def test_t5_request_breakdown(benchmark):
    rows = once(benchmark, run_breakdown)

    table_rows = [
        [r["n"], f"{1e3 * r['negotiation']:.1f}", f"{r['transfer']:.3f}",
         f"{r['compute']:.3f}",
         f"{100 * r['compute'] / r['total']:.0f}%"]
        for r in rows
    ]
    text = format_table(
        ["n", "negotiation(ms)", "transfer(s)", "compute(s)", "compute share"],
        table_rows,
        title="T5: request-time breakdown, dgesv over 10 Mb/s",
    )
    emit("T5_breakdown", text)

    # claims: negotiation is small and roughly constant (< 50 ms, and
    # does not scale with n)
    negs = [r["negotiation"] for r in rows]
    assert max(negs) < 0.05
    assert max(negs) < 5 * min(negs)
    # transfer grows ~n^2, compute ~n^3: the compute share rises
    shares = [r["compute"] / r["total"] for r in rows]
    assert shares[-1] > shares[0]
    assert shares[-1] > 0.5
    # and for the smallest problem, overhead (not compute) dominates
    assert shares[0] < 0.5
