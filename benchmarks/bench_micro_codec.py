"""Microbenchmarks — wire codec throughput.

Unlike the experiment benches (one deterministic virtual-time run),
these measure real wall-clock cost of the hot protocol paths with
pytest-benchmark's full statistics.  They guard against codec
regressions: the simulated transport encodes/decodes *every* message,
so a slow codec taxes every experiment.
"""

import numpy as np
import pytest

from repro.protocol.codec import decode_message, encode_message
from repro.protocol.messages import (
    QueryRequest,
    SolveReply,
    SolveRequest,
    WorkloadReport,
)

RNG = np.random.default_rng(0)


def solve_request(n):
    a = RNG.standard_normal((n, n))
    b = RNG.standard_normal(n)
    return SolveRequest(
        request_id=1, problem="linsys/dgesv", inputs=(a, b),
        reply_to="client/c0",
    )


def test_encode_small_control_message(benchmark):
    msg = WorkloadReport(server_id="s0", workload=125.0)
    frame = benchmark(lambda: encode_message(msg))
    assert len(frame) < 200


def test_decode_small_control_message(benchmark):
    frame = encode_message(
        QueryRequest(problem="linsys/dgesv", sizes={"n": 512},
                     client_host="ws0", tag=7)
    )
    msg = benchmark(lambda: decode_message(frame))
    assert msg.sizes["n"] == 512


@pytest.mark.parametrize("n", [64, 512])
def test_encode_matrix_payload(benchmark, n):
    msg = solve_request(n)
    frame = benchmark(lambda: encode_message(msg))
    # payload dominates: framing overhead stays under 1%
    assert len(frame) < n * n * 8 * 1.01 + 4096


@pytest.mark.parametrize("n", [64, 512])
def test_decode_matrix_payload(benchmark, n):
    frame = encode_message(solve_request(n))
    msg = benchmark(lambda: decode_message(frame))
    assert msg.inputs[0].shape == (n, n)


def test_roundtrip_reply_with_outputs(benchmark):
    reply = SolveReply(
        request_id=9, ok=True, outputs=(RNG.standard_normal(4096),),
        compute_seconds=1.25,
    )

    def roundtrip():
        return decode_message(encode_message(reply))

    out = benchmark(roundtrip)
    assert out.outputs[0].shape == (4096,)


def test_encode_throughput_large_matrix(benchmark):
    """MB/s of encoding a 1k x 1k matrix — should be memcpy-bound."""
    msg = solve_request(1024)
    nbytes = 1024 * 1024 * 8

    frame = benchmark(lambda: encode_message(msg))
    assert len(frame) >= nbytes
