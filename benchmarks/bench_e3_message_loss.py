"""Extension experiment E3 — surviving a lossy network.

The NetSolve protocol has no transport-level retransmission (each
message is fire-and-forget); reliability comes entirely from the
request-level loop: per-attempt timeouts, failure reports, candidate
fall-through and agent re-query.  This experiment drops each message
independently with probability p and checks that the loop converts loss
into latency, not into lost work — up to strikingly high loss rates.
"""

from repro.config import AgentConfig, ClientConfig, ServerConfig, WorkloadPolicy
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_REQUESTS = 24
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)


def run_loss(rate: float):
    tb = standard_testbed(
        n_servers=3,
        server_mflops=[100.0] * 3,
        seed=131,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=3),
        client_cfg=ClientConfig(
            max_retries=10, agent_timeout=15.0, agent_retries=8,
            timeout_floor=5.0, timeout_factor=3.0, server_timeout=600.0,
        ),
        server_cfg=ServerConfig(
            workload=WorkloadPolicy(time_step=10.0, threshold=10.0),
            reregister_interval=60.0,
        ),
    )
    tb.transport.set_message_loss(rate, tb.rng.get("e3.loss"))
    tb.settle(30.0)
    rng = RngStreams(131).get("e3.data")
    args = [list(linear_system(rng, 256)) for _ in range(N_REQUESTS)]
    start = tb.kernel.now
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    tb.wait_all(farm.handles, limit=start + 7200.0)
    stats = farm.stats()
    return {
        "rate": rate,
        "completed": stats.completed,
        "failed": stats.failed,
        "makespan": farm.makespan,
        "retries": stats.total_retries,
        "lost": tb.transport.messages_lost,
    }


def test_e3_message_loss_tolerance(benchmark):
    results = once(benchmark, lambda: [run_loss(r) for r in LOSS_RATES])

    rows = [
        [f"{100 * r['rate']:.0f}%", r["completed"], r["failed"],
         f"{r['makespan']:.1f}", r["retries"], r["lost"]]
        for r in results
    ]
    text = format_table(
        ["loss", "completed", "failed", "makespan(s)", "retries",
         "msgs lost"],
        rows,
        title=(
            f"E3: {N_REQUESTS} dgesv n=256 over 3 servers with random "
            "message loss (no transport retransmission)"
        ),
    )
    emit("E3_message_loss", text)

    by_rate = {r["rate"]: r for r in results}
    # the clean run is the baseline
    assert by_rate[0.0]["completed"] == N_REQUESTS
    assert by_rate[0.0]["retries"] == 0
    # up to 10% loss: the retry loop still completes every request
    for rate in (0.02, 0.05, 0.10):
        assert by_rate[rate]["completed"] == N_REQUESTS, rate
    # loss costs time, monotonically in expectation at the extremes
    assert by_rate[0.10]["makespan"] > by_rate[0.0]["makespan"]
    # at 20% the control plane itself erodes (lost workload reports keep
    # servers suspect; lost queries burn the agent-retry budget): the
    # majority still completes, but degradation is real and honest — the
    # 1996 design assumed TCP underneath, not a 20%-lossy datagram path
    assert by_rate[0.20]["completed"] >= 0.5 * N_REQUESTS
    assert by_rate[0.20]["failed"] > 0
    assert by_rate[0.20]["makespan"] > by_rate[0.10]["makespan"]
