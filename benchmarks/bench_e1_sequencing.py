"""Extension experiment E1 — request sequencing vs independent brokering.

The original project's follow-on release added *request sequencing*:
related requests sharing a large operand execute on one server with the
operand shipped once and referenced thereafter.  This bench quantifies
the trade on the canonical pattern — k matrix-vector products against a
single large ``A`` over a slow (10 Mb/s) client link:

* brokered: every request re-ships A (the agent may also bounce the
  work between servers),
* sequenced: A is stored once on the agent's top pick; each request
  carries only the vector and an object reference.
"""

import numpy as np

from repro.sequencing import open_sequence
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, once

N = 512
K = 12


def build():
    tb = standard_testbed(n_servers=3, seed=101, bandwidth=1.25e6)
    tb.settle()
    rng = RngStreams(101).get("e1.data")
    a = rng.standard_normal((N, N)) + N * np.eye(N)
    xs = [rng.standard_normal(N) for _ in range(K)]
    return tb, a, xs


def run_brokered():
    tb, a, xs = build()
    start = tb.kernel.now
    for x in xs:
        (y,) = tb.solve("c0", "blas/dgemv", [a, x])
        assert np.allclose(y, a @ x)
    bytes_sent = tb.transport.node("client/c0").bytes_sent
    return tb.kernel.now - start, bytes_sent


def run_sequenced():
    tb, a, xs = build()
    client = tb.client("c0")
    start = tb.kernel.now
    seq = open_sequence(
        client, "blas/dgemv", {"m": N, "n": N}, wait=tb.transport.run_until
    )
    seq.store("A", a)
    for x in xs:
        (y,) = seq.solve("blas/dgemv", [seq.ref("A"), x])
        assert np.allclose(y, a @ x)
    seq.release()
    bytes_sent = tb.transport.node("client/c0").bytes_sent
    return tb.kernel.now - start, bytes_sent


def test_e1_request_sequencing(benchmark):
    def experiment():
        return run_brokered(), run_sequenced()

    (t_brokered, b_brokered), (t_sequenced, b_sequenced) = once(
        benchmark, experiment
    )

    rows = [
        ["brokered (reship A)", f"{t_brokered:.2f}", f"{b_brokered / 1e6:.1f}"],
        ["sequenced (store once)", f"{t_sequenced:.2f}",
         f"{b_sequenced / 1e6:.1f}"],
        ["ratio", f"{t_brokered / t_sequenced:.1f}x",
         f"{b_brokered / b_sequenced:.1f}x"],
    ]
    text = format_table(
        ["mode", "total time(s)", "client bytes sent (MB)"],
        rows,
        title=(
            f"E1: {K} dgemv requests against one {N}x{N} matrix over "
            "10 Mb/s (store-once vs reship)"
        ),
    )
    emit("E1_sequencing", text)

    # claims: sequencing saves nearly the whole repeated-operand cost
    assert t_sequenced < t_brokered / 4
    # client traffic collapses to ~one matrix + k vectors
    assert b_sequenced < b_brokered / 4
    # lower bound sanity: it still had to ship the matrix once
    assert b_sequenced > N * N * 8
