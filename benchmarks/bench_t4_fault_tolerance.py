"""Experiment T4 — transparent fault tolerance under server crashes.

Claim (NetSolve): when a server dies mid-batch the client library
detects the failure (timeout), reports it to the agent, and transparently
resubmits to the next candidate; every request completes, at a bounded
makespan overhead.  Without the retry loop, requests on the dead server
are lost.

Protocol: 48 ``linsys/dgesv`` requests over 4 equal servers; crash k in
{0, 1, 2} servers while roughly a third of the batch is in flight.  A
final no-retry run (max_retries=1, no requery) shows the loss.
"""

from repro.config import AgentConfig, ClientConfig
from repro.core.faults import FailureInjector
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import server_address, standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_REQUESTS = 48
N_SERVERS = 4
CRASH_AT = 4.0  # seconds after the batch starts


def run_case(k_failures: int, *, retry: bool):
    client_cfg = ClientConfig(
        max_retries=5 if retry else 1,
        requery_agent=retry,
        timeout_floor=5.0,
        timeout_factor=3.0,
        server_timeout=600.0,
    )
    tb = standard_testbed(
        n_servers=N_SERVERS,
        server_mflops=[100.0] * N_SERVERS,
        seed=71,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=3),
        client_cfg=client_cfg,
    )
    tb.settle(30.0)
    rng = RngStreams(71).get("t4.data")
    args = [list(linear_system(rng, 384)) for _ in range(N_REQUESTS)]
    start = tb.kernel.now
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    injector = FailureInjector(tb.transport)
    for i in range(k_failures):
        injector.crash_at(start + CRASH_AT + i, server_address(f"s{i}"))
    tb.wait_all(farm.handles, limit=start + 3600.0)
    stats = farm.stats()
    return {
        "k": k_failures,
        "retry": retry,
        "completed": stats.completed,
        "failed": stats.failed,
        "makespan": farm.makespan,
        "retries": stats.total_retries,
    }


def test_t4_fault_tolerance(benchmark):
    def experiment():
        with_retry = [run_case(k, retry=True) for k in (0, 1, 2)]
        without = run_case(2, retry=False)
        return with_retry, without

    with_retry, without = once(benchmark, experiment)

    rows = [
        [r["k"], "yes" if r["retry"] else "no", r["completed"], r["failed"],
         f"{r['makespan']:.1f}", r["retries"]]
        for r in (*with_retry, without)
    ]
    text = format_table(
        ["crashes", "retry", "completed", "lost", "makespan(s)", "retries"],
        rows,
        title=(
            f"T4: {N_REQUESTS} dgesv over {N_SERVERS} equal servers; k "
            f"servers crash {CRASH_AT:.0f}s into the batch"
        ),
    )
    emit("T4_fault_tolerance", text)

    # claims: with the retry loop nothing is lost, ever
    for r in with_retry:
        assert r["completed"] == N_REQUESTS and r["failed"] == 0
    # failures cost retries and time, growing with k
    assert with_retry[0]["retries"] == 0
    assert with_retry[1]["retries"] >= 1
    assert with_retry[2]["retries"] >= with_retry[1]["retries"]
    assert with_retry[2]["makespan"] > with_retry[0]["makespan"]
    # overhead is bounded by failure *detection*: each crashed server costs
    # roughly one per-attempt timeout before its work is redone elsewhere,
    # not a restart of the batch
    detection_budget = 40.0  # generous bound on timeout + resubmit per crash
    assert (
        with_retry[2]["makespan"]
        < with_retry[0]["makespan"] + 2 * detection_budget
    )
    # without the loop, work is lost
    assert without["failed"] > 0
