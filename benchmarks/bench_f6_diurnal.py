"""Experiment F6 — a day in the life of a shared pool.

Claim (NetSolve): on shared departmental machines whose load follows the
working day, workload-aware brokering routes requests around the busy
machines hour by hour, keeping service latency nearly flat where
uninformed selection degrades with the office-hours load.

Protocol: 4 equal servers; two carry a 9h-17h background load (one
department), two a 13h-21h load (another).  A client submits one dgesv
every 5 simulated minutes for 24 h (288 requests).  Compare per-2-hour
mean latency under MCT vs round-robin.
"""

import numpy as np
import pytest

from repro.config import AgentConfig, ClientConfig
from repro.simnet.rng import RngStreams
from repro.simnet.traffic import TraceLoad
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

HOUR = 3600.0
DAY = 24 * HOUR
PERIOD = 300.0  # one request every 5 minutes
SIZE = 320
OFFICE_A = (9.0, 17.0)   # zeus0, zeus1
OFFICE_B = (13.0, 21.0)  # zeus2, zeus3
LOAD = 3.0


def office_trace(start_h: float, end_h: float):
    return [(start_h * HOUR, LOAD), (end_h * HOUR, 0.0)]


def run_policy(policy: str):
    tb = standard_testbed(
        n_servers=4,
        server_mflops=[100.0] * 4,
        seed=141,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(policy=policy, candidate_list_length=3),
        client_cfg=ClientConfig(max_retries=5, timeout_floor=120.0,
                                server_timeout=7200.0),
    )
    for i in (0, 1):
        TraceLoad(tb.host(f"zeus{i}"), office_trace(*OFFICE_A)).start()
    for i in (2, 3):
        TraceLoad(tb.host(f"zeus{i}"), office_trace(*OFFICE_B)).start()
    tb.settle(30.0)
    rng = RngStreams(141).get("f6.data")

    latencies_by_bucket: dict[int, list[float]] = {}
    t_start = tb.kernel.now
    n_requests = int(DAY / PERIOD)
    for i in range(n_requests):
        target = t_start + i * PERIOD
        tb.run(until=target)
        a, b = linear_system(rng, SIZE)
        handle = tb.submit("c0", "linsys/dgesv", [a, b])
        tb.wait_all([handle], limit=target + PERIOD * 10)
        bucket = int((i * PERIOD) // (2 * HOUR))
        latencies_by_bucket.setdefault(bucket, []).append(
            handle.record.total_seconds
        )
    return {
        bucket: float(np.mean(values))
        for bucket, values in latencies_by_bucket.items()
    }


def test_f6_diurnal_load(benchmark):
    results = once(
        benchmark, lambda: {"mct": run_policy("mct"),
                            "roundrobin": run_policy("roundrobin")}
    )
    mct = results["mct"]
    rr = results["roundrobin"]

    rows = []
    for bucket in sorted(mct):
        h0, h1 = 2 * bucket, 2 * bucket + 2
        rows.append(
            [f"{h0:02d}-{h1:02d}h", f"{mct[bucket]:.2f}",
             f"{rr[bucket]:.2f}",
             f"{rr[bucket] / mct[bucket]:.2f}x"]
        )
    text = format_table(
        ["hours", "mct mean(s)", "roundrobin mean(s)", "rr/mct"],
        rows,
        title=(
            "F6: hourly dgesv latency under office-hours load "
            "(zeus0/1 busy 9-17h, zeus2/3 busy 13-21h, load avg 3)"
        ),
    )
    emit("F6_diurnal", text)

    night = [0, 1, 2, 3]          # 00-08h: everyone idle
    partial = [4, 5, 9, 10]       # 08-12h & 18-22h: idle machines exist
    full = 7                      # 14-16h: every server is busy
    mct_night = np.mean([mct[b] for b in night])
    rr_night = np.mean([rr[b] for b in night])
    mct_partial = np.mean([mct[b] for b in partial])
    rr_partial = np.mean([rr[b] for b in partial])
    # at night the policies agree (everything idle)
    assert mct_night == pytest.approx(rr_night, rel=0.15)
    # when idle machines exist, only MCT finds them: it stays at the
    # night-time latency while round-robin keeps hitting busy boxes
    assert mct_partial == pytest.approx(mct_night, rel=0.15)
    assert rr_partial > 1.4 * mct_partial
    # in the full-overlap hour no policy can beat physics: they converge
    assert rr[full] == pytest.approx(mct[full], rel=0.15)
    # and over the whole day MCT is strictly cheaper (both peak at the
    # same full-overlap ceiling, so compare the day-average, not swing)
    assert np.mean(list(mct.values())) < 0.85 * np.mean(list(rr.values()))
