"""Data handles + request DAGs — iterative loops without re-shipping.

Claim: a >= 20-iteration iterative solver loop (x_{i+1} = A x_i, the
shape of every relaxation / power-iteration / time-stepping workload)
that keeps its operand resident and chains node outputs server-side
moves >= 10x fewer payload bytes and clears >= 3x the throughput of the
ship-everything baseline, with bit-identical numerics.

* **Simulator** (virtual time, deterministic — the model of the
  claim): the ship-everything loop pays one matrix transfer per
  iteration over the slow canonical LAN; the reference loop stores the
  matrix once and submits the whole chain as one DAG.
* **Real sockets** (wall clock — the proof the fast path is real): the
  same two loops against a single TCP server, payload bytes measured
  by the transport's own wire counters.

Writes ``benchmarks/results/BENCH_dag.json``.  Set ``BENCH_SMOKE=1``
for a quick CI run (smaller operands, same >= 20-iteration chain, same
asserts).
"""

import json
import os
import threading
import time

import numpy as np

from _harness import RESULTS_DIR, emit
from repro.dag import DagBuilder
from repro.problems.builtin import builtin_registry
from repro.protocol.messages import (
    DagReply, SolveReply, SolveRequest, StoreAck, StoreObject, SubmitDag,
)
from repro.testbed import standard_testbed
from repro.trace.instruments import MetricsRegistry, Observability

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

ITERS = 20                      # the acceptance floor: a real loop
SIM_N = 96 if SMOKE else 128
TCP_N = 512 if SMOKE else 768
TCP_REPS = 2                    # best-of to damp loopback jitter


def operand(rng, n):
    """A spectrally tame iteration matrix (entries ~ N(0, 1/n)) and a
    start vector: 20 applications neither explode nor vanish."""
    a = rng.standard_normal((n, n)) / np.sqrt(n)
    x0 = rng.standard_normal(n)
    return a, x0


def chain_dag(handle, x0, iters):
    """x_{i+1} = A x_i as one DAG: the matrix rides as a handle, every
    edge is a NodeOutput — no payload repeats."""
    dag = DagBuilder()
    prev = None
    for i in range(iters):
        rhs = x0 if prev is None else prev.output(0)
        prev = dag.node(f"x{i}", "blas/dgemv", [handle, rhs])
    return dag.build()   # terminal node emits the final vector


# ----------------------------------------------------------------------
# simulator: full stack, virtual time
# ----------------------------------------------------------------------
def sim_loop() -> dict:
    rng = np.random.default_rng(51)
    a, x0 = operand(rng, SIM_N)
    out = {}

    # ship-everything: the brokered loop, one matrix transfer per step
    obs = Observability()
    tb = standard_testbed(n_servers=1, seed=53, observability=obs)
    tb.settle()
    bytes0 = obs.metrics.snapshot()["counters"].get("wire.bytes", 0)
    t0 = tb.kernel.now
    x_ship = x0
    for _ in range(ITERS):
        (x_ship,) = tb.solve("c0", "blas/dgemv", [a, x_ship])
    ship_s = tb.kernel.now - t0
    ship_bytes = (
        obs.metrics.snapshot()["counters"]["wire.bytes"] - bytes0
    )

    # reference path: store once, one DAG for the whole chain
    obs = Observability()
    tb = standard_testbed(n_servers=1, seed=53, observability=obs)
    tb.settle()
    bytes0 = obs.metrics.snapshot()["counters"].get("wire.bytes", 0)
    t0 = tb.kernel.now
    h = tb.store("c0", "s0", "A", a)
    (x_dag,) = tb.solve_dag("c0", chain_dag(h, x0, ITERS))
    dag_s = tb.kernel.now - t0
    dag_bytes = (
        obs.metrics.snapshot()["counters"]["wire.bytes"] - bytes0
    )

    assert np.array_equal(np.asarray(x_ship), np.asarray(x_dag)), \
        "reference path changed the numerics"
    out["ship"] = {"makespan_s": ship_s, "payload_bytes": int(ship_bytes),
                   "throughput_rps": ITERS / ship_s}
    out["dag"] = {"makespan_s": dag_s, "payload_bytes": int(dag_bytes),
                  "throughput_rps": ITERS / dag_s}
    out["byte_ratio"] = ship_bytes / dag_bytes
    out["speedup"] = ship_s / dag_s
    return out


# ----------------------------------------------------------------------
# real sockets: single server, wall clock
# ----------------------------------------------------------------------
def make_tcp_world():
    from repro.core.server import ComputationalServer
    from repro.protocol.tcp import TcpTransport
    from repro.protocol.transport import Component

    class Probe(Component):
        def __init__(self):
            self.last = None
            self.event = threading.Event()

        def on_message(self, src, msg):
            # node-progress messages stream through; only terminal
            # replies wake the waiter
            if isinstance(msg, (SolveReply, StoreAck, DagReply)):
                self.last = msg
                self.event.set()

    metrics = MetricsRegistry()
    transport = TcpTransport(metrics=metrics)
    server = ComputationalServer(
        server_id="sv", agent_address="agent",  # unresolvable: drops
        registry=builtin_registry().subset(("blas/dgemv",)),
        mflops=100.0, host=transport.host_name,
    )
    transport.add_node("server/sv", server, port=0)
    probe = Probe()
    transport.add_node("probe", probe, port=0)
    return transport, metrics, probe


def tcp_roundtrip(transport, probe, msg):
    probe.event.clear()
    transport.nodes["probe"].send("server/sv", msg)
    assert probe.event.wait(120.0), "server never replied"
    return probe.last


def wire_bytes(metrics) -> int:
    return metrics.snapshot()["counters"].get("wire.bytes", 0)


def tcp_loop() -> dict:
    rng = np.random.default_rng(61)
    a, x0 = operand(rng, TCP_N)
    best = None
    for _ in range(TCP_REPS):
        # ship-everything
        transport, metrics, probe = make_tcp_world()
        try:
            bytes0 = wire_bytes(metrics)
            t0 = time.perf_counter()
            x_ship = x0
            for rid in range(1, ITERS + 1):
                reply = tcp_roundtrip(transport, probe, SolveRequest(
                    request_id=rid, problem="blas/dgemv",
                    inputs=(a, x_ship), reply_to="probe",
                ))
                assert isinstance(reply, SolveReply) and reply.ok, reply
                x_ship = reply.outputs[0]
            ship_s = time.perf_counter() - t0
            ship_bytes = wire_bytes(metrics) - bytes0
        finally:
            transport.close()

        # store once + one DAG
        transport, metrics, probe = make_tcp_world()
        try:
            bytes0 = wire_bytes(metrics)
            t0 = time.perf_counter()
            ack = tcp_roundtrip(
                transport, probe, StoreObject(key="A", value=a)
            )
            assert isinstance(ack, StoreAck) and ack.ok, ack
            reply = tcp_roundtrip(transport, probe, SubmitDag(
                dag_id="bench", nodes=tuple(
                    chain_dag(ack.handle, x0, ITERS)
                ), reply_to="probe",
            ))
            assert isinstance(reply, DagReply) and reply.ok, reply
            (x_dag,) = reply.outputs
            dag_s = time.perf_counter() - t0
            dag_bytes = wire_bytes(metrics) - bytes0
        finally:
            transport.close()

        assert np.array_equal(np.asarray(x_ship), np.asarray(x_dag)), \
            "reference path changed the numerics over TCP"
        run = {
            "ship": {"makespan_s": ship_s, "payload_bytes": int(ship_bytes),
                     "throughput_rps": ITERS / ship_s},
            "dag": {"makespan_s": dag_s, "payload_bytes": int(dag_bytes),
                    "throughput_rps": ITERS / dag_s},
            "byte_ratio": ship_bytes / dag_bytes,
            "speedup": ship_s / dag_s,
        }
        if best is None or run["speedup"] > best["speedup"]:
            best = run
    return best


# ----------------------------------------------------------------------
def test_dag_bench():
    sim = sim_loop()
    tcp = tcp_loop()

    def row(label, r):
        return (
            f"{label:>4} ship {r['ship']['makespan_s']:>9.3f} s "
            f"/ {r['ship']['payload_bytes'] / 1e6:>7.2f} MB   "
            f"dag {r['dag']['makespan_s']:>9.3f} s "
            f"/ {r['dag']['payload_bytes'] / 1e6:>7.2f} MB   "
            f"{r['speedup']:>5.1f}x faster, "
            f"{r['byte_ratio']:>5.1f}x fewer bytes"
        )

    lines = [
        (
            f"data handles + request DAGs: {ITERS}-iteration "
            f"x_(i+1) = A x_i loop, dgemv({SIM_N}) sim / "
            f"dgemv({TCP_N}) tcp, identical numerics both paths"
        ),
        "",
        row("sim", sim),
        row("tcp", tcp),
    ]
    emit("dag", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dag.json").write_text(
        json.dumps(
            {
                "benchmark": "dag",
                "smoke": SMOKE,
                "iterations": ITERS,
                "sim": sim,
                "tcp": tcp,
            },
            indent=2,
        )
        + "\n"
    )

    # the loop really is >= 20 chained solves
    assert ITERS >= 20
    # bytes: the reference path re-ships nothing
    assert sim["byte_ratio"] >= 10.0, sim
    assert tcp["byte_ratio"] >= 10.0, tcp
    # throughput: one transfer + one round trip beat 20 of each
    assert sim["speedup"] >= 3.0, sim
    assert tcp["speedup"] >= 3.0, tcp


if __name__ == "__main__":
    test_dag_bench()
    print("bench_dag: all assertions passed")
