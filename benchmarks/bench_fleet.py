"""Agent-fleet benchmark — sharded broker scaling + agent-death failover.

Two scenarios, one headline JSON (``benchmarks/results/BENCH_fleet.json``):

* **scaling** — a sans-IO fleet of 1 vs 3 peered agents brokering the
  same query stream under registry churn (periodic re-registrations,
  mirrored fleet-wide).  Each agent's message-handling wall time is
  accumulated separately; aggregate throughput is ``queries /
  max(per-agent busy time)`` — the fleet runs on separate machines, so
  the busiest broker is the bottleneck.  With ``shard`` on, a non-owner
  hops a query one hop to its consistent-hash owner, so the ranking work
  (the expensive part: predict_batch over the whole table) splits across
  the fleet while every agent still pays the full churn cost.  Asserts
  the headline claim: 3 agents >= 2.2x one agent.
* **kill_agent** — a simulated ``fleet_testbed`` deployment (3 sharded
  agents, anti-entropy on); the primary agent is crashed mid-run and
  clients keep submitting.  Asserts zero failed requests and that the
  client failover rotation actually fired.

Set ``BENCH_SMOKE=1`` for a quick CI run (smaller fleet, same asserts).
"""

import json
import os
import time

from _harness import RESULTS_DIR, emit
from repro.config import AgentConfig
from repro.core.agent import Agent
from repro.core.fleet import HashRing
from repro.core.predictor import LinkEstimate, StaticNetworkInfo
from repro.protocol.messages import QueryReply, QueryRequest, RegisterServer
from repro.testbed import fleet_testbed

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

N_PROBLEMS = 30
N_SERVERS = 250 if SMOKE else 600
N_QUERIES = 600 if SMOKE else 2400
CHURN_EVERY = 10  # one churn-server (re-)registration per this many queries
N_CHURN_SERVERS = 8  # dedicated churners cycling through registrations


def bench_pdl(n_problems: int) -> str:
    """A synthetic catalogue: ``bench/pNN`` dense-solver lookalikes."""
    blocks = []
    for i in range(n_problems):
        blocks.append(
            f"problem bench/p{i:02d}\n"
            f"    complexity  2/3*n^3 + {i + 1}*n^2\n"
            f"    input  A matrix[n,n]\n"
            f"    input  b vector[n]\n"
            f"    output x vector[n]\n"
            f"end\n"
        )
    return "\n".join(blocks)


#: what the churning servers advertise — a problem nobody queries, so
#: the candidate sets under measurement never change shape; the churn
#: cost is the *registration processing* (PDL parse, table update,
#: mirror fan-out), which every agent pays for every churn event
CHURN_PDL = (
    "problem bench/churn\n"
    "    complexity  n^2\n"
    "    input  A matrix[n,n]\n"
    "    output s scalar\n"
    "end\n"
)


class _FleetNode:
    """Sans-IO node for one fleet member: sends go to a shared router."""

    def __init__(self, address: str, outbox: list):
        self.address = address
        self.host = f"host-{address}"
        self.t = 0.0
        self.outbox = outbox

    def now(self):
        return self.t

    def send(self, dst, msg):
        self.outbox.append((self.address, dst, msg))

    def call_after(self, delay, fn):
        return None

    def endpoint_of(self, address):
        return None

    def learn_endpoint(self, address, endpoint):
        return None


class _Fleet:
    """N peered agents wired through an explicit message router, with
    per-agent busy-time accounting around every delivery."""

    def __init__(self, n_agents: int, *, shard: bool):
        self.outbox: list = []
        self.addresses = [f"agent{i}" for i in range(n_agents)]
        self.agents: dict[str, Agent] = {}
        self.busy = dict.fromkeys(self.addresses, 0.0)
        self.replies: list[QueryReply] = []
        network = StaticNetworkInfo(
            default=LinkEstimate(latency=1e-3, bandwidth=1.25e6)
        )
        for addr in self.addresses:
            peers = tuple(a for a in self.addresses if a != addr)
            agent = Agent(
                network=network,
                # sync_interval=0: no anti-entropy timers in the hot
                # loop, and the shard forwarder treats every peer as
                # reachable (no heartbeats to go stale)
                cfg=AgentConfig(shard=shard, sync_interval=0.0),
                peers=peers,
            )
            agent.bind(_FleetNode(addr, self.outbox))
            self.agents[addr] = agent

    def deliver(self, src: str, dst: str, msg, *, timed: bool) -> None:
        agent = self.agents.get(dst)
        if agent is None:
            if isinstance(msg, QueryReply):
                self.replies.append(msg)
            return
        if timed:
            t0 = time.perf_counter()
            agent.on_message(src, msg)
            self.busy[dst] += time.perf_counter() - t0
        else:
            agent.on_message(src, msg)

    def drain(self, *, timed: bool) -> None:
        while self.outbox:
            src, dst, msg = self.outbox.pop(0)
            self.deliver(src, dst, msg, timed=timed)

    def register_all(self, pdl: str) -> None:
        """Home each server round-robin; mirrors fan out untimed."""
        for i in range(N_SERVERS):
            home = self.addresses[i % len(self.addresses)]
            self.deliver(
                f"server/s{i:04d}", home,
                RegisterServer(
                    server_id=f"s{i:04d}",
                    host=f"h{i % 64}",
                    mflops=20.0 + (i * 37) % 400,
                    problems_pdl=pdl,
                ),
                timed=False,
            )
            self.drain(timed=False)

    def reset_pending(self) -> None:
        """Clear assignment hints so ranking cost stays flat over the
        run (the simulated clock never advances, so holds never lapse)."""
        for agent in self.agents.values():
            for entry in agent.table.entries():
                entry.pending_expiries.clear()


def run_scaling(n_agents: int, *, shard: bool) -> dict:
    pdl = bench_pdl(N_PROBLEMS)
    fleet = _Fleet(n_agents, shard=shard)
    fleet.register_all(pdl)
    for agent in fleet.agents.values():
        assert len(agent.table) == N_SERVERS

    churn_id = 0
    for q in range(N_QUERIES):
        # farm-style stream: a block of same-problem queries at a time
        # (the same stream feeds both configs; blocks keep the owner's
        # working set hot the way a real per-machine broker would be)
        problem = f"bench/p{(q * N_PROBLEMS) // N_QUERIES:02d}"
        entry_agent = fleet.addresses[q % n_agents]
        fleet.deliver(
            f"client/c{q % 8}", entry_agent,
            QueryRequest(
                problem=problem, sizes={"n": 300},
                client_host=f"ws{q % 8}", tag=q,
            ),
            timed=True,
        )
        fleet.drain(timed=True)  # forwarded hop + its reply
        if q % CHURN_EVERY == CHURN_EVERY - 1:
            i = churn_id % N_CHURN_SERVERS
            churn_id += 1
            home = fleet.addresses[i % n_agents]
            fleet.deliver(
                f"server/x{i:02d}", home,
                RegisterServer(
                    server_id=f"x{i:02d}",
                    host=f"h{i % 64}",
                    mflops=50.0 + churn_id,  # changes every round: a
                    # genuinely new registration shape, not a no-op
                    problems_pdl=CHURN_PDL,
                ),
                timed=True,
            )
            fleet.drain(timed=True)  # the mirror copies
        fleet.reset_pending()

    ok = [r for r in fleet.replies if r.ok]
    assert len(ok) == N_QUERIES, (len(ok), N_QUERIES)
    forwards = sum(a.queries_forwarded for a in fleet.agents.values())
    served = {a: fleet.agents[a].queries_served for a in fleet.addresses}
    bottleneck = max(fleet.busy.values())
    return {
        "agents": n_agents,
        "shard": shard,
        "queries": N_QUERIES,
        "registrations": churn_id,
        "forwards": forwards,
        "served": served,
        "busy_seconds": dict(fleet.busy),
        "qps": N_QUERIES / bottleneck,
    }


def run_kill_agent() -> dict:
    n_requests = 4 if SMOKE else 8
    tb = fleet_testbed(
        n_agents=3, n_servers=4, n_clients=2, seed=11,
        shard=True, sync_interval=2.0,
    )
    tb.settle()

    import numpy as np

    rng = np.random.default_rng(11)

    def system(n=96):
        return [rng.standard_normal((n, n)) + n * np.eye(n),
                rng.standard_normal(n)]

    handles = []
    for k in range(n_requests // 2):
        handles.append(tb.submit(f"c{k % 2}", "linsys/dgesv", system()))
    tb.wait_all(handles)

    # kill c0's (and s0's) primary broker mid-run; the survivors' peer
    # heartbeats notice within 2 sync intervals, clients rotate on their
    # own query timeouts
    tb.transport.crash("agent")
    tb.run(until=tb.kernel.now + 15.0)
    for k in range(n_requests - n_requests // 2):
        handles.append(tb.submit(f"c{k % 2}", "linsys/dgesv", system()))
    tb.wait_all(handles)

    from repro.core.client import RequestStatus

    failed = [h for h in handles if h.status is not RequestStatus.DONE]
    failovers = sum(c.agent_failovers for c in tb.clients.values())
    return {
        "requests": len(handles),
        "failed": len(failed),
        "client_failovers": failovers,
    }


def test_fleet_bench():
    single = run_scaling(1, shard=False)
    fleet = run_scaling(3, shard=True)
    speedup = fleet["qps"] / single["qps"]

    ring = HashRing(tuple(f"agent{i}" for i in range(3)))
    owners = [ring.owner(f"bench/p{i:02d}") for i in range(N_PROBLEMS)]
    spread = {a: owners.count(a) for a in sorted(set(owners))}

    kill = run_kill_agent()

    lines = [
        "Agent fleet — sharded brokering under registry churn",
        "",
        f"{'agents':>7} {'queries':>8} {'churn':>6} {'forwards':>9} "
        f"{'agg q/s':>10}",
    ]
    for r in (single, fleet):
        lines.append(
            f"{r['agents']:>7} {r['queries']:>8} {r['registrations']:>6} "
            f"{r['forwards']:>9} {r['qps']:>10.1f}"
        )
    lines += [
        "",
        f"speedup: {speedup:.2f}x  (aggregate q/s = queries / busiest "
        "agent's handling time)",
        f"shard ownership of {N_PROBLEMS} problems: "
        + " ".join(f"{a}:{n}" for a, n in spread.items()),
        "",
        f"kill-one-agent: {kill['requests']} requests, "
        f"{kill['failed']} failed, "
        f"{kill['client_failovers']} client failover(s)",
    ]
    emit("BENCH_fleet", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(
        json.dumps(
            {
                "benchmark": "fleet",
                "smoke": SMOKE,
                "scaling": {
                    "single": single,
                    "fleet": fleet,
                    "speedup": speedup,
                    "ownership": spread,
                },
                "kill_agent": kill,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= 2.2, (single["qps"], fleet["qps"], speedup)
    assert kill["failed"] == 0, kill
    assert kill["client_failovers"] > 0, kill


if __name__ == "__main__":
    test_fleet_bench()
