"""Microbenchmarks — numerical kernels.

Wall-clock cost of the routines servers execute, with pytest-benchmark
statistics.  These keep the from-scratch implementations honest: the
blocked LU/Cholesky paths must stay within a small factor of the
vendor-tuned `numpy.linalg` equivalents (they share the underlying BLAS
for their panel products), and the O(n)/O(n log n) kernels must not
regress to accidental quadratic behaviour.
"""

import numpy as np
import pytest

from repro.numerics import (
    cholesky_factor,
    fft,
    gemm,
    merge_sort,
    solve,
    thomas_solve,
)

RNG = np.random.default_rng(1)
N = 512


@pytest.fixture(scope="module")
def system():
    a = RNG.standard_normal((N, N)) + N * np.eye(N)
    b = RNG.standard_normal(N)
    return a, b


def test_blocked_lu_solve(benchmark, system):
    a, b = system
    x = benchmark(lambda: solve(a, b))
    assert np.allclose(a @ x, b, atol=1e-7)


def test_numpy_reference_solve(benchmark, system):
    """Reference point for the row above in the same report."""
    a, b = system
    x = benchmark(lambda: np.linalg.solve(a, b))
    assert np.allclose(a @ x, b, atol=1e-7)


def test_blocked_cholesky(benchmark):
    m = RNG.standard_normal((N, N))
    a = m @ m.T + N * np.eye(N)
    lower = benchmark(lambda: cholesky_factor(a))
    assert np.allclose(lower @ lower.T, a, atol=1e-6 * N)


def test_blocked_gemm(benchmark):
    a = RNG.standard_normal((N, N))
    b = RNG.standard_normal((N, N))
    c = benchmark(lambda: gemm(a, b))
    assert np.allclose(c, a @ b, atol=1e-9)


def test_fft_4096(benchmark):
    x = RNG.standard_normal(4096) + 1j * RNG.standard_normal(4096)
    y = benchmark(lambda: fft(x))
    assert np.allclose(y, np.fft.fft(x), atol=1e-8)


def test_merge_sort_100k(benchmark):
    x = RNG.standard_normal(100_000)
    out = benchmark(lambda: merge_sort(x))
    assert np.array_equal(out, np.sort(x))


def test_thomas_1e5(benchmark):
    n = 100_000
    dl = RNG.uniform(-1, 1, n - 1)
    du = RNG.uniform(-1, 1, n - 1)
    d = 4.0 + RNG.uniform(0, 1, n)
    b = RNG.standard_normal(n)
    x = benchmark(lambda: thomas_solve(dl, d, du, b))
    assert np.isfinite(x).all()
