"""Agent query-path benchmark — fast path vs the seed's per-candidate path.

Measures broker throughput (queries/second) against table sizes of 10,
100 and 1000 servers, all advertising the queried problem:

* ``legacy`` — the seed's query path, inlined below as the baseline:
  ``candidates_for`` re-sorting the whole table, the complexity AST
  tree-walked three times per candidate (flops + input/output bytes),
  one scalar prediction per candidate, and a full sort to ship the top
  ``candidate_list_length``;
* ``fast``   — the shipped path: compiled+memoized complexity evaluated
  once per query, the indexed table, ``predict_batch`` over candidate
  arrays, and partial top-k selection.

Both paths run against the same agent state and must return identical
candidate lists — the benchmark asserts decision equality before it
measures.  Prints a paper-style table, persists it under
``benchmarks/results/``, and writes machine-readable
``benchmarks/results/BENCH_agent.json``.  Asserts the headline claim:
>= 10x queries/sec at the 1000-server table.  Set ``BENCH_SMOKE=1`` for
a quick CI run (fewer repetitions, same asserts).
"""

import json
import os
import time

from _harness import RESULTS_DIR, emit
from repro.config import AgentConfig
from repro.core.agent import Agent
from repro.core.predictor import LinkEstimate, StaticNetworkInfo, predict
from repro.problems.builtin import builtin_registry
from repro.protocol.messages import QueryReply, QueryRequest

PROBLEM = "linsys/dgesv"
SIZES = (10, 100, 1000)
SMOKE = bool(os.environ.get("BENCH_SMOKE"))


class _BenchNode:
    """Minimal sans-IO node: constant clock, sink for replies."""

    address = "agent/a0"
    host = "agenthost"

    def __init__(self):
        self.t = 0.0
        self.sent = []

    def now(self):
        return self.t

    def send(self, dst, msg):
        self.sent.append((dst, msg))

    def call_after(self, delay, fn):
        return None

    def endpoint_of(self, address):
        return None

    def learn_endpoint(self, address, endpoint):
        return None


def make_agent(n_servers: int) -> Agent:
    agent = Agent(
        network=StaticNetworkInfo(
            default=LinkEstimate(latency=1e-3, bandwidth=1.25e6)
        ),
        cfg=AgentConfig(),
    )
    agent.bind(_BenchNode())
    spec = builtin_registry().get(PROBLEM).spec
    agent.specs[spec.name] = spec
    for i in range(n_servers):
        agent.table.register(
            server_id=f"s{i:04d}",
            address=f"server/s{i:04d}",
            host=f"h{i % 64}",
            mflops=20.0 + (i * 37) % 400,
            problems={spec.name},
            now=0.0,
        )
        agent.table.report_workload(f"s{i:04d}", float((i * 13) % 250), now=0.0)
    return agent


# ----------------------------------------------------------------------
# The seed's query path, kept as the measured baseline.
# ----------------------------------------------------------------------
def legacy_handle_query(agent: Agent, src: str, msg: QueryRequest):
    spec = agent.specs[msg.problem]
    # seed candidates_for: sort every server id, then filter
    banned = set(msg.exclude)
    entries = [
        e
        for e in (
            agent.table._entries[k] for k in sorted(agent.table._entries)
        )
        if e.alive and msg.problem in e.problems and e.server_id not in banned
    ]
    env = {k: int(v) for k, v in msg.sizes.items()}

    predictions = {}

    def predict_one(entry):
        cached = predictions.get(entry.server_id)
        if cached is None:
            # seed predict_for: three spec evaluations per candidate,
            # with the complexity AST tree-walked (no compiled form)
            base = predict(
                flops=spec.complexity.interpret(env),
                input_bytes=spec.input_bytes(env),
                output_bytes=spec.output_bytes(env),
                link=agent.network.link(msg.client_host, entry.host),
                peak_mflops=entry.mflops,
                workload=entry.workload,
                use_workload=agent.use_workload,
            )
            cached = agent._inflate_pending(base, entry, agent.node.now())
            predictions[entry.server_id] = cached
        return cached

    ranked = sorted(entries, key=lambda e: (predict_one(e).total, e.server_id))
    top = ranked[: agent.cfg.candidate_list_length]
    if top:
        hold = min(600.0, max(1.0, predict_one(top[0]).total * 1.5))
        agent.table.note_assignment(
            top[0].server_id, agent.node.now(), hold_for=hold
        )
    return [(e.server_id, predict_one(e).total) for e in top]


def _drain(agent: Agent):
    """Reset per-run side effects (reply sink, pending hints)."""
    agent.node.sent.clear()
    for entry in agent.table.entries():
        entry.pending_expiries.clear()


def _fast_reply(agent: Agent, msg: QueryRequest):
    agent._handle_query("client/c0", msg)
    _dst, reply = agent.node.sent[-1]
    assert isinstance(reply, QueryReply) and reply.ok
    return [
        (c.server_id, c.predicted_seconds) for c in reply.candidate_list()
    ]


def _qps(fn, agent, msg, repeats: int) -> float:
    fn(agent, msg)  # warm caches/memos outside the timed window
    _drain(agent)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn(agent, msg)
    elapsed = time.perf_counter() - t0
    _drain(agent)
    return repeats / elapsed


def _measure(n_servers: int) -> dict:
    agent = make_agent(n_servers)
    msg = QueryRequest(problem=PROBLEM, sizes={"n": 500}, client_host="c0")

    # decision equality first: same candidates, same predictions
    legacy_decision = legacy_handle_query(agent, "client/c0", msg)
    _drain(agent)
    fast_decision = _fast_reply(agent, msg)
    _drain(agent)
    assert fast_decision == legacy_decision, (fast_decision, legacy_decision)

    budget = 20_000 if SMOKE else 400_000
    repeats = max(10, budget // n_servers)
    legacy_qps = _qps(
        lambda a, m: legacy_handle_query(a, "client/c0", m),
        agent, msg, max(5, repeats // 20),
    )
    fast_qps = _qps(
        lambda a, m: a._handle_query("client/c0", m), agent, msg, repeats
    )
    return {
        "servers": n_servers,
        "legacy_qps": legacy_qps,
        "fast_qps": fast_qps,
        "speedup": fast_qps / legacy_qps,
    }


def test_agent_query_bench():
    rows = [_measure(n) for n in SIZES]

    lines = [
        "Agent query path — queries/second vs server-table size",
        "",
        f"{'servers':>8} {'legacy q/s':>12} {'fast q/s':>12} {'speedup':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['servers']:>8} {r['legacy_qps']:>12.1f} "
            f"{r['fast_qps']:>12.1f} {r['speedup']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        "legacy = seed path (per-candidate AST walks, full re-sorts); "
        "fast = compiled complexity + indexed table + predict_batch + top-k"
    )
    emit("BENCH_agent", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_agent.json").write_text(
        json.dumps(
            {"benchmark": "agent_query", "problem": PROBLEM, "rows": rows},
            indent=2,
        )
        + "\n"
    )

    at_1000 = next(r for r in rows if r["servers"] == 1000)
    assert at_1000["speedup"] >= 10.0, at_1000


if __name__ == "__main__":
    test_agent_query_bench()
