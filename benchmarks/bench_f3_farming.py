"""Experiment F3 — farming speedup with pool size.

Claim (NetSolve): N independent requests fired non-blocking from one
client spread over the server pool, so batch makespan shrinks nearly
linearly until client-side transfer serialization saturates.

Protocol: 32 ``ode/linear`` instances (compute-heavy, light on the
wire) farmed over M in {1, 2, 4, 8} equal 100 Mflop/s servers.
"""

from repro.config import AgentConfig, ClientConfig
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, ode_instance, once

POOL_SIZES = (1, 2, 4, 8)
N_TASKS = 32
DIM = 96
STEPS = 3000


def run_pool(m: int):
    tb = standard_testbed(
        n_servers=m,
        server_mflops=[100.0] * m,
        seed=61,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=min(3, m)),
        client_cfg=ClientConfig(max_retries=5, timeout_floor=60.0,
                                server_timeout=7200.0),
    )
    tb.settle(30.0)
    rng = RngStreams(61).get("f3.data")
    args = [ode_instance(rng, DIM, STEPS) for _ in range(N_TASKS)]
    farm = submit_farm(tb.client("c0"), "ode/linear", args)
    tb.wait_all(farm.handles)
    assert len(farm.completed) == N_TASKS
    return farm.makespan, farm.servers_used()


def test_f3_farming_speedup(benchmark):
    results = once(
        benchmark, lambda: {m: run_pool(m) for m in POOL_SIZES}
    )
    base = results[1][0]
    rows = []
    for m in POOL_SIZES:
        makespan, spread = results[m]
        rows.append(
            [m, f"{makespan:.1f}", f"{base / makespan:.2f}",
             f"{base / makespan / m * 100:.0f}%",
             " ".join(f"{k}:{v}" for k, v in spread.items())]
        )
    text = format_table(
        ["servers", "makespan(s)", "speedup", "efficiency", "per-server"],
        rows,
        title=f"F3: farming {N_TASKS} ode/linear (d={DIM}, steps={STEPS}) "
        "over M equal servers",
    )
    emit("F3_farming", text)

    speedups = [base / results[m][0] for m in POOL_SIZES]
    # claims: speedup grows with the pool and is near-linear early on
    assert speedups[1] > 1.7   # 2 servers
    assert speedups[2] > 3.0   # 4 servers
    assert speedups[3] > 4.5   # 8 servers
    assert all(s2 > s1 for s1, s2 in zip(speedups, speedups[1:]))
    # the whole pool is used at M=8
    assert len(results[8][1]) == 8
