"""Experiment T1 — accuracy of the completion-time predictor.

Claim (NetSolve): the agent's T = T_net + T_comp model, fed by measured
link characteristics and (possibly stale) workload reports, predicts
request completion well enough to rank servers.

Protocol: solve ``linsys/dgesv`` for n in {256..1536} on a 3-server
testbed, (a) with idle servers and (b) with a statically loaded fast
server; compare the agent's prediction for the chosen server against the
attempt's realised time, and check that ranking survives load.
"""

import numpy as np

from repro.simnet.rng import RngStreams
from repro.simnet.traffic import SquareWaveLoad
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

SIZES = (256, 512, 768, 1024, 1536)


def run_case(background_load: float, *, dynamic: bool = False):
    tb = standard_testbed(
        n_servers=3, server_mflops=[50.0, 100.0, 200.0], seed=31,
        bandwidth=12.5e6,
    )
    if dynamic:
        # load flips every 30 s: reports (every 10 s) are always stale
        # somewhere, which is the honest error source of the real system
        SquareWaveLoad(
            tb.host("zeus2"), low=0.0, high=background_load, period=60.0
        ).start()
    elif background_load > 0:
        # load the nominally fastest server
        tb.host("zeus2").set_background_load(background_load)
    tb.settle(30.0)
    rng = RngStreams(31).get("t1.data")
    rows = []
    errors = []
    for n in SIZES:
        a, b = linear_system(rng, n)
        # steady state between requests: let the next workload report
        # land so the agent's view reflects the idle (or loaded) truth
        tb.run(until=tb.kernel.now + 15.0)
        tb.solve("c0", "linsys/dgesv", [a, b])
        record = tb.client("c0").records[-1]
        attempt = record.successful_attempt
        predicted = attempt.predicted_seconds
        actual = attempt.elapsed
        rel_err = abs(predicted - actual) / actual
        errors.append(rel_err)
        rows.append(
            [n, attempt.server_id, f"{predicted:.3f}", f"{actual:.3f}",
             f"{100 * rel_err:.1f}%"]
        )
    return rows, errors, tb


def test_t1_predictor_accuracy(benchmark):
    def experiment():
        idle = run_case(0.0)
        static = run_case(3.0)
        dynamic = run_case(3.0, dynamic=True)
        return idle, static, dynamic

    (idle_rows, idle_errors, _), (load_rows, load_errors, _), \
        (dyn_rows, dyn_errors, _) = once(benchmark, experiment)

    headers = ["n", "server", "predicted(s)", "actual(s)", "rel.err"]
    text = format_table(headers, idle_rows, title="T1a: idle servers") + "\n\n"
    text += format_table(
        headers, load_rows, title="T1b: zeus2 loaded (static, load avg 3)"
    ) + "\n\n"
    text += format_table(
        headers, dyn_rows,
        title="T1c: zeus2 load flipping 0<->3 every 30s (reports go stale)",
    )
    text += (
        f"\n\nmean relative error: idle {100 * np.mean(idle_errors):.1f}%  "
        f"static load {100 * np.mean(load_errors):.1f}%  "
        f"dynamic load {100 * np.mean(dyn_errors):.1f}%"
    )
    emit("T1_predictor", text)

    # claims: predictions are accurate enough to rank
    assert float(np.mean(idle_errors)) < 0.25
    assert float(np.mean(load_errors)) < 0.40
    # idle: the fastest server must always win
    assert all(row[1] == "s2" for row in idle_rows)
    # static load: the agent must route AWAY from the loaded fast server
    # (load avg 3 makes 200 Mflop/s effectively 50)
    assert all(row[1] != "s2" for row in load_rows)
    # dynamic load: staleness hurts — the error exceeds the static case,
    # which is the honest cost of sampled workload information
    assert float(np.mean(dyn_errors)) > float(np.mean(load_errors))
    # but every request still completes with a ranked choice
    assert len(dyn_rows) == len(SIZES)
