"""Experiments F2 & T2 — the hysteretic workload-broadcast policy.

Claim (NetSolve): broadcasting the workload only when it moves more than
a threshold (sampled every Δt) keeps the agent's view close to the true
load average while bounding update traffic.

F2 plots the true load signal against the agent's view over one
simulated hour under a square-wave + Poisson background load; T2 sweeps
the threshold and reports (broadcasts, mean absolute tracking error).
"""

import numpy as np

from repro.config import ServerConfig, WorkloadPolicy
from repro.simnet.traffic import PoissonJobLoad, SquareWaveLoad
from repro.testbed import ClientDef, HostDef, ServerDef, build_testbed
from repro.trace.metrics import format_table, mean_abs_error_vs_truth

from _harness import emit, once

HOUR = 3600.0


def run_policy(threshold: float, time_step: float = 10.0, seed: int = 41):
    tb = build_testbed(
        hosts=[HostDef("c", 20.0), HostDef("ag", 50.0), HostDef("sv", 100.0)],
        servers=[
            ServerDef(
                "s0",
                "sv",
                cfg=ServerConfig(
                    workload=WorkloadPolicy(
                        time_step=time_step,
                        threshold=threshold,
                        forced_interval=900.0,
                    )
                ),
            )
        ],
        clients=[ClientDef("c0", "c")],
        agent_host="ag",
    )
    host = tb.host("sv")
    # coarse structure (other users' big jobs) + fine-grained jitter
    # (short interactive tasks at a quarter of a load unit each)
    SquareWaveLoad(host, low=0.0, high=1.5, period=1200.0).start()
    PoissonJobLoad(
        host, tb.rng.get("f2.poisson"), rate=1 / 40.0, mean_duration=100.0,
        unit_load=0.25,
    ).start()
    tb.run(until=HOUR)
    reporter = tb.server("s0").reporter
    truth = [(t, 100.0 * v) for t, v in host.load_history]
    belief = reporter.sent_history
    mae = mean_abs_error_vs_truth(truth, belief, 60.0, HOUR)
    return {
        "threshold": threshold,
        "broadcasts": reporter.broadcasts,
        "samples": reporter.samples,
        "mae": mae,
        "truth": truth,
        "belief": belief,
    }


def test_f2_workload_tracking(benchmark):
    result = once(benchmark, lambda: run_policy(threshold=25.0))

    # F2: the agent's-view-vs-truth series, decimated to 2-minute rows
    rows = []
    for t in np.arange(0.0, HOUR, 120.0):
        def at(sig):
            value = sig[0][1]
            for when, v in sig:
                if when <= t:
                    value = v
                else:
                    break
            return value

        rows.append(
            [f"{t:.0f}", f"{at(result['truth']):.0f}",
             f"{at(result['belief']):.0f}"]
        )
    text = format_table(
        ["t(s)", "true workload", "agent's view"],
        rows,
        title="F2: true load vs agent belief (threshold=25, dt=10s)",
    )
    text += (
        f"\n\nbroadcasts: {result['broadcasts']} of {result['samples']} "
        f"samples   mean abs tracking error: {result['mae']:.1f} workload units"
    )
    emit("F2_workload_tracking", text)

    # claims: the view tracks within a few threshold-widths on average,
    # with far fewer messages than samples
    assert result["mae"] < 3 * 25.0
    assert result["broadcasts"] < 0.5 * result["samples"]
    assert result["broadcasts"] >= 5  # it does keep updating


def test_t2_threshold_sweep(benchmark):
    thresholds = (0.0, 5.0, 10.0, 25.0, 50.0, 100.0)

    def sweep():
        return [run_policy(th) for th in thresholds]

    results = once(benchmark, sweep)
    rows = [
        [f"{r['threshold']:.0f}", r["samples"], r["broadcasts"],
         f"{r['mae']:.1f}"]
        for r in results
    ]
    text = format_table(
        ["threshold", "samples", "broadcasts", "mean abs err"],
        rows,
        title="T2: traffic vs tracking error across thresholds (dt=10s, 1h)",
    )
    emit("T2_threshold_sweep", text)

    broadcasts = [r["broadcasts"] for r in results]
    maes = [r["mae"] for r in results]
    # claims: messages fall monotonically with the threshold; tracking
    # error rises overall from the tightest to the loosest policy
    assert all(b1 >= b2 for b1, b2 in zip(broadcasts, broadcasts[1:]))
    assert maes[0] < maes[-1]
    assert maes[0] < 10.0  # threshold 0 tracks within one sample period


def test_t2b_timestep_sweep(benchmark):
    """The other policy axis: sampling period Δt at a fixed threshold.

    Slower sampling bounds traffic the blunt way — by not looking — so
    tracking error grows with Δt even though the threshold is tight.
    """
    steps = (5.0, 10.0, 30.0, 60.0, 120.0)

    def sweep():
        return [run_policy(threshold=10.0, time_step=dt) for dt in steps]

    results = once(benchmark, sweep)
    rows = [
        [f"{dt:.0f}", r["samples"], r["broadcasts"], f"{r['mae']:.1f}"]
        for dt, r in zip(steps, results)
    ]
    text = format_table(
        ["dt(s)", "samples", "broadcasts", "mean abs err"],
        rows,
        title="T2b: sampling period vs tracking error (threshold=10, 1h)",
    )
    emit("T2b_timestep_sweep", text)

    maes = [r["mae"] for r in results]
    broadcasts = [r["broadcasts"] for r in results]
    # fewer samples, fewer messages...
    assert all(b1 >= b2 for b1, b2 in zip(broadcasts, broadcasts[1:]))
    # ...and strictly worse tracking at the extremes
    assert maes[0] < maes[-1]
