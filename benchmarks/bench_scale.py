"""Million-request scale harness — QoS classes under flash crowds and faults.

The capstone scale scenario from the roadmap: a 10,000-server farm
absorbing 1,000,000 requests in virtual time, driven by a diurnal
arrival profile with a flash-crowd spike layered on top and rack-sized
correlated outages injected while the crowd is in flight.  Requests
carry a QoS class (``interactive`` / ``batch`` / ``background``); the
servers order their bounded queues earliest-deadline-first and shed
``background`` past its queue share, so the harness is also the
end-to-end proof that the class system buys what it promises:
interactive p99 turnaround must beat background p99 while the farm is
saturated.

Four sections, all recorded in ``benchmarks/results/BENCH_scale.json``:

* **sim** — the 10k-server / 1M-request flash-crowd scenario above
  (driver components speak raw ``SolveRequest`` to the servers; the
  brokered path is exercised separately so the event loop, not client
  bookkeeping, is what 1M requests stress).  This doubles as the
  kernel's perf gate: 1M timeout timers are armed and cancelled, so the
  run leans on lazy heap deletion and amortized compaction.
* **performability** — a smaller farm under per-unit exponential
  breakdown/repair (MTTF/MTTR renewal); measured availability is
  checked against the ``mttf/(mttf+mttr)`` model and delivered-request
  fraction shows retries riding through repairs.
* **brokered** — a standard agent-brokered testbed farm with mixed
  classes, proving the class tag survives the full query/assign path.
* **tcp** — real sockets: a burst of mixed-class submits through
  ``TcpSession.submit(qos=...)``, wall-clock requests/sec and per-class
  percentiles.

Set ``BENCH_SMOKE=1`` for the CI-sized run (200 servers / 20k requests,
same asserts).  The committed JSON holds full-scale numbers.
"""

import itertools
import json
import os
import time

import numpy as np

from _harness import RESULTS_DIR, emit, linear_system
from repro.config import ClientConfig, ServerConfig, WorkloadPolicy
from repro.core.qos import QOS_CLASSES
from repro.simnet.rng import RngStreams
from repro.simnet.traffic import (
    ArrivalProcess,
    BreakdownRepair,
    CorrelatedFailures,
    diurnal_rate,
    flash_crowd,
)

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

# ---- the flash-crowd scenario ----------------------------------------
N_SERVERS = 200 if SMOKE else 10_000
N_REQUESTS = 20_000 if SMOKE else 1_000_000
MFLOPS = 50.0
SIZES = (200, 256, 320)          # n^3 flops: 0.16 / 0.34 / 0.66 s
MEAN_SERVICE = sum(n ** 3 for n in SIZES) / len(SIZES) / (MFLOPS * 1e6)
MAX_QUEUE = 8
TIMEOUT = 6.0                    # > worst-case wait of a full queue
RETRY_DELAY = 0.05
MAX_ATTEMPTS = 4
GROUP = 20 if SMOKE else 100     # servers per failure group (a "rack")

# ---- the performability scenario -------------------------------------
N_PERF = 60 if SMOKE else 300
R_PERF = 5_000 if SMOKE else 50_000
MTTF, MTTR = 300.0, 60.0

# ---- the brokered + tcp samples --------------------------------------
BROKERED = 24 if SMOKE else 60
TCP_COUNT = 24 if SMOKE else 96
TCP_N = 128

HORIZON = 600.0

PDL = """
problem bench/solve
    lib         BENCH
    description Synthetic unit kernel for the scale harness
    complexity  n^3
    input  x vector[n]
    output y vector[n]
end
"""


def bench_registry():
    from repro.problems.pdl import parse_pdl
    from repro.problems.registry import ProblemRegistry

    registry = ProblemRegistry()
    (spec,) = parse_pdl(PDL, source="<bench_scale>")
    registry.register(spec, lambda x: x)
    return registry


def percentiles(values):
    if not values:
        return {"count": 0}
    arr = np.asarray(values)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
    }


# ----------------------------------------------------------------------
# the request driver
# ----------------------------------------------------------------------
class _Pending:
    __slots__ = ("qos", "t0", "attempts", "timer", "size")

    def __init__(self, qos, t0, size):
        self.qos = qos
        self.t0 = t0
        self.attempts = 0
        self.timer = None
        self.size = size


class ScaleDriver:
    """Sends raw SolveRequests round-robin, retries Busy/timeouts, and
    keeps per-class turnaround stats.  One instance is the whole client
    population — per-request state is a single slotted record."""

    ADDRESS = "driver"

    def __init__(self, kernel, targets, rng):
        from repro.protocol.transport import Component

        self.kernel = kernel
        self.targets = targets
        self.rng = rng
        self.pending = {}
        self.turnaround = {name: [] for name in QOS_CLASSES}
        self.completed = 0
        self.failed = 0
        self.busies = 0
        self.timeouts = 0
        self._rr = 0
        self._rid = itertools.count(1)
        self.payloads = [(np.ones(n),) for n in SIZES]

        driver = self

        class _DriverComponent(Component):
            def on_message(self, src, msg):
                driver._on_message(msg)

        self.component = _DriverComponent()

    # -- arrivals ------------------------------------------------------
    def arrive(self):
        u = self.rng.random()
        qos = "interactive" if u < 0.2 else ("" if u < 0.8 else "background")
        rid = next(self._rid)
        rec = _Pending(qos, self.kernel.now, int(self.rng.integers(len(SIZES))))
        self.pending[rid] = rec
        self._send(rid, rec)

    def _send(self, rid, rec):
        from repro.protocol.messages import SolveRequest

        rec.attempts += 1
        target = self.targets[self._rr % len(self.targets)]
        self._rr += 1
        self.component.node.send(
            target,
            SolveRequest(
                request_id=rid, problem="bench/solve",
                inputs=self.payloads[rec.size],
                reply_to=self.ADDRESS, qos=rec.qos,
            ),
        )
        rec.timer = self.kernel.call_after(
            TIMEOUT, lambda: self._timeout(rid)
        )

    # -- replies -------------------------------------------------------
    def _on_message(self, msg):
        from repro.protocol.messages import Busy, SolveReply

        if isinstance(msg, SolveReply):
            rec = self.pending.pop(msg.request_id, None)
            if rec is None:
                return  # a late duplicate; the first reply already won
            rec.timer.cancel()
            if msg.ok:
                self.completed += 1
                cls = rec.qos or "batch"
                self.turnaround[cls].append(self.kernel.now - rec.t0)
            else:
                self.failed += 1
        elif isinstance(msg, Busy):
            rec = self.pending.get(msg.request_id)
            if rec is None:
                return
            self.busies += 1
            rec.timer.cancel()
            if rec.attempts >= MAX_ATTEMPTS:
                del self.pending[msg.request_id]
                self.failed += 1
            else:
                rec.timer = self.kernel.call_after(
                    RETRY_DELAY, lambda rid=msg.request_id: self._retry(rid)
                )

    def _retry(self, rid):
        rec = self.pending.get(rid)
        if rec is not None:
            self._send(rid, rec)

    def _timeout(self, rid):
        rec = self.pending.get(rid)
        if rec is None:
            return
        self.timeouts += 1
        if rec.attempts >= MAX_ATTEMPTS:
            del self.pending[rid]
            self.failed += 1
        else:
            self._send(rid, rec)


# ----------------------------------------------------------------------
# world building
# ----------------------------------------------------------------------
def make_farm(n_servers, rng):
    """A star farm: driver host linked to every server host; an agent
    sink absorbs registrations so the broker is out of the hot path."""
    from repro.core.server import ComputationalServer
    from repro.protocol.transport import Component, SimTransport
    from repro.simnet.kernel import EventKernel
    from repro.simnet.network import Topology

    class Sink(Component):
        def on_message(self, src, msg):
            pass

    kernel = EventKernel()
    topo = Topology(kernel)
    topo.add_host("driver-host", 1000.0)
    registry = bench_registry()
    cfg = ServerConfig(
        max_concurrent=1,
        max_queue=MAX_QUEUE,
        reregister_interval=0.0,
        workload=WorkloadPolicy(
            time_step=1e9, threshold=1e9, forced_interval=1e9
        ),
    )
    transport = SimTransport(topo, codec_roundtrip=False)
    servers, targets = [], []
    for i in range(n_servers):
        host = f"h{i}"
        topo.add_host(host, MFLOPS)
        topo.add_link("driver-host", host, latency=5e-5, bandwidth=1e9)
        server = ComputationalServer(
            server_id=f"sv{i}", agent_address="agent",
            registry=registry, mflops=MFLOPS, host=host, cfg=cfg,
        )
        address = f"server/sv{i}"
        transport.add_node(address, host, server)
        servers.append(server)
        targets.append(address)
    transport.add_node("agent", "driver-host", Sink())
    driver = ScaleDriver(kernel, targets, rng)
    transport.add_node(ScaleDriver.ADDRESS, "driver-host", driver.component)
    return kernel, transport, servers, driver


def drain(kernel, gen, driver, n_requests):
    kernel.run(
        until=HORIZON,
        stop=lambda: gen.arrivals >= n_requests and not driver.pending,
    )
    assert gen.arrivals == n_requests
    assert not driver.pending, f"{len(driver.pending)} requests stuck"


# ----------------------------------------------------------------------
# section 1: the flash-crowd scenario
# ----------------------------------------------------------------------
def sim_flash_crowd() -> dict:
    streams = RngStreams(2026)
    kernel, transport, servers, driver = make_farm(
        N_SERVERS, streams.get("qos-mix")
    )

    capacity = N_SERVERS / MEAN_SERVICE  # requests/s at full utilisation
    base = diurnal_rate(
        low=0.10 * capacity, high=0.55 * capacity, period=120.0, peak_at=0.25
    )
    rate = flash_crowd(
        base, at=45.0, magnitude=4.0, ramp=5.0, hold=20.0, decay=20.0
    )
    gen = ArrivalProcess(
        kernel, streams.get("arrivals"), rate, driver.arrive,
        rate_max=0.55 * capacity * 4.0, limit=N_REQUESTS,
    ).start()

    # rack-sized correlated outages while the crowd is in flight
    groups = [
        tuple(f"server/sv{i}" for i in range(g, min(g + GROUP, N_SERVERS)))
        for g in range(0, N_SERVERS, GROUP)
    ]
    faults = CorrelatedFailures(
        kernel, streams.get("faults"), groups,
        transport.crash, transport.revive,
        rate=1 / 30.0, repair_mean=10.0,
    ).start()

    wall0 = time.perf_counter()
    drain(kernel, gen, driver, N_REQUESTS)
    wall = time.perf_counter() - wall0
    faults.stop()
    gen.stop()

    shed_by_class = {name: 0 for name in QOS_CLASSES}
    for s in servers:
        for name in QOS_CLASSES:
            shed_by_class[name] += s.sheds_by_class[name]
    return {
        "servers": N_SERVERS,
        "offered": N_REQUESTS,
        "completed": driver.completed,
        "failed": driver.failed,
        "busy_replies": driver.busies,
        "timeouts": driver.timeouts,
        "sheds_by_class": shed_by_class,
        "outages": faults.failures,
        "virtual_makespan_s": kernel.now,
        "virtual_req_per_s": driver.completed / kernel.now,
        "wall_s": wall,
        "wall_req_per_s": driver.completed / wall,
        "kernel_events": kernel.events_processed,
        "kernel_compactions": kernel.compactions,
        "turnaround_s": {
            name: percentiles(driver.turnaround[name])
            for name in QOS_CLASSES
        },
    }


# ----------------------------------------------------------------------
# section 2: breakdown/repair performability
# ----------------------------------------------------------------------
def sim_performability() -> dict:
    streams = RngStreams(2027)
    kernel, transport, servers, driver = make_farm(
        N_PERF, streams.get("qos-mix")
    )
    rate = 0.5 * N_PERF / MEAN_SERVICE  # half-loaded when fully up
    gen = ArrivalProcess(
        kernel, streams.get("arrivals"), rate, driver.arrive, limit=R_PERF
    ).start()

    down_at, downtime = {}, [0.0]

    def crash(u):
        transport.crash(u)
        down_at[u] = kernel.now

    def revive(u):
        transport.revive(u)
        downtime[0] += kernel.now - down_at.pop(u)

    units = [f"server/sv{i}" for i in range(N_PERF)]
    faults = BreakdownRepair(
        kernel, streams.get("faults"), units, crash, revive,
        mttf=MTTF, mttr=MTTR,
    ).start()

    drain(kernel, gen, driver, R_PERF)
    faults.stop()
    gen.stop()
    horizon = kernel.now
    for t in down_at.values():  # still-down units at the end of the run
        downtime[0] += horizon - t
    measured = 1.0 - downtime[0] / (horizon * N_PERF)
    return {
        "servers": N_PERF,
        "offered": R_PERF,
        "completed": driver.completed,
        "failed": driver.failed,
        "delivered_fraction": driver.completed / R_PERF,
        "breakdowns": faults.breakdowns,
        "repairs": faults.repairs,
        "model_availability": faults.availability,
        "measured_availability": measured,
        "virtual_makespan_s": horizon,
        "virtual_req_per_s": driver.completed / horizon,
        "turnaround_s": {
            name: percentiles(driver.turnaround[name])
            for name in QOS_CLASSES
        },
    }


# ----------------------------------------------------------------------
# section 3: the class tag through the brokered path
# ----------------------------------------------------------------------
def brokered_sample() -> dict:
    from repro.testbed import standard_testbed

    tb = standard_testbed(n_servers=4, seed=2028)
    tb.settle()
    rng = np.random.default_rng(2028)
    cycle = ("interactive", "", "background")
    handles = []
    for i in range(BROKERED):
        a, b = linear_system(rng, 96)
        handles.append(
            tb.submit("c0", "linsys/dgesv", [a, b], qos=cycle[i % 3])
        )
    t0 = tb.kernel.now
    tb.wait_all(handles)
    done = sum(1 for h in handles if h.record.status.name == "DONE")
    return {
        "requests": BROKERED,
        "done": done,
        "virtual_makespan_s": tb.kernel.now - t0,
        "agent_queries_by_class": dict(tb.agent.queries_by_class),
    }


# ----------------------------------------------------------------------
# section 4: real sockets
# ----------------------------------------------------------------------
def tcp_sample() -> dict:
    from repro.core.agent import Agent
    from repro.core.client import NetSolveClient
    from repro.core.server import ComputationalServer
    from repro.core.predictor import LinkEstimate, StaticNetworkInfo
    from repro.problems.builtin import builtin_registry
    from repro.protocol.tcp import TcpSession, TcpTransport

    transport = TcpTransport()
    try:
        network = StaticNetworkInfo(
            default=LinkEstimate(latency=1e-4, bandwidth=1e9)
        )
        agent = Agent(network=network)
        transport.add_node("agent", agent, port=0)
        for i, mflops in enumerate((200.0, 400.0)):
            server = ComputationalServer(
                server_id=f"s{i}", agent_address="agent",
                registry=builtin_registry().subset(("linsys/dgesv",)),
                mflops=mflops, host=transport.host_name,
                cfg=ServerConfig(
                    workload=WorkloadPolicy(time_step=0.2, threshold=10.0)
                ),
            )
            transport.add_node(f"server/s{i}", server, port=0)
        client = NetSolveClient(
            client_id="c0", agent_address="agent",
            cfg=ClientConfig(
                agent_timeout=15.0, server_timeout=60.0, timeout_floor=15.0
            ),
        )
        node = transport.add_node("client/c0", client, port=0)
        session = TcpSession(node, timeout=60.0)

        deadline = time.monotonic() + 30.0
        while agent.registrations < 2:
            if time.monotonic() > deadline:
                raise RuntimeError("servers never registered over TCP")
            time.sleep(0.01)

        rng = np.random.default_rng(2029)
        a, b = linear_system(rng, TCP_N)
        classes = ("interactive", "background")
        stamps = {}
        handles = []
        wall0 = time.perf_counter()
        for i in range(TCP_COUNT):
            qos = classes[i % 2]
            h = session.submit("linsys/dgesv", [a, b], qos=qos)
            rid = h.record.request_id
            stamps[rid] = [qos, time.perf_counter(), None]
            h.promise.on_settled(
                lambda _p, rid=rid: stamps[rid].__setitem__(
                    2, time.perf_counter()
                )
            )
            handles.append(h)
        for h in handles:
            h.promise.wait(60.0)
        wall = time.perf_counter() - wall0

        turnaround = {name: [] for name in classes}
        for qos, t0, t1 in stamps.values():
            turnaround[qos].append(t1 - t0)
        return {
            "requests": TCP_COUNT,
            "wall_s": wall,
            "wall_req_per_s": TCP_COUNT / wall,
            "turnaround_s": {
                name: percentiles(turnaround[name]) for name in classes
            },
        }
    finally:
        transport.close()


# ----------------------------------------------------------------------
def test_scale_bench():
    sim = sim_flash_crowd()
    perf = sim_performability()
    brokered = brokered_sample()
    tcp = tcp_sample()

    lines = [
        f"mode: {'smoke' if SMOKE else 'full'}",
        "",
        f"flash crowd: {sim['servers']} servers, {sim['offered']} requests",
        f"  completed {sim['completed']}  failed {sim['failed']}  "
        f"busy {sim['busy_replies']}  timeouts {sim['timeouts']}  "
        f"outages {sim['outages']}",
        f"  virtual {sim['virtual_makespan_s']:.1f} s "
        f"({sim['virtual_req_per_s']:.0f} req/s)  "
        f"wall {sim['wall_s']:.1f} s ({sim['wall_req_per_s']:.0f} req/s)",
        f"  kernel: {sim['kernel_events']} events, "
        f"{sim['kernel_compactions']} compactions",
    ]
    for name in QOS_CLASSES:
        t = sim["turnaround_s"][name]
        if t["count"]:
            lines.append(
                f"  {name:<12} n={t['count']:<8} p50={t['p50']:.3f} s  "
                f"p99={t['p99']:.3f} s"
            )
    lines += [
        "",
        f"performability: {perf['servers']} servers, "
        f"mttf={MTTF:.0f}/mttr={MTTR:.0f}",
        f"  delivered {perf['delivered_fraction']:.4f}  "
        f"availability measured {perf['measured_availability']:.3f} "
        f"vs model {perf['model_availability']:.3f}",
        "",
        f"brokered: {brokered['done']}/{brokered['requests']} done, "
        f"classes {brokered['agent_queries_by_class']}",
        f"tcp: {tcp['requests']} requests, "
        f"{tcp['wall_req_per_s']:.1f} req/s wall",
    ]
    emit("BENCH_scale", "\n".join(lines))
    (RESULTS_DIR / "BENCH_scale.json").write_text(
        json.dumps(
            {
                "smoke": SMOKE,
                "sim": sim,
                "performability": perf,
                "brokered": brokered,
                "tcp": tcp,
            },
            indent=2,
        )
        + "\n"
    )

    # accounting closes
    assert sim["completed"] + sim["failed"] == sim["offered"]
    assert sim["completed"] > 0.8 * sim["offered"]
    # the QoS claim: interactive beats background at the tail while the
    # farm is saturated, and background bears the shedding
    assert (
        sim["turnaround_s"]["interactive"]["p99"]
        < sim["turnaround_s"]["background"]["p99"]
    )
    assert (
        sim["sheds_by_class"]["background"]
        >= sim["sheds_by_class"]["interactive"]
    )
    # the kernel perf fixes are actually exercised at this scale
    assert sim["kernel_compactions"] > 0
    # performability: retries ride through repairs; availability matches
    assert perf["delivered_fraction"] >= 0.97
    assert abs(
        perf["measured_availability"] - perf["model_availability"]
    ) < 0.2
    assert brokered["done"] == brokered["requests"]
    expected = {
        "interactive": (BROKERED + 2) // 3,
        "batch": (BROKERED + 1) // 3,
        "background": BROKERED // 3,
    }
    assert brokered["agent_queries_by_class"] == expected
    assert tcp["requests"] == TCP_COUNT


if __name__ == "__main__":
    test_scale_bench()
