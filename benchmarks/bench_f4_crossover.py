"""Experiment F4 — remote solve vs local solve: the crossover.

Claim (NetSolve): shipping a problem to a fast remote server pays off
once the computation dwarfs the transfer, so NetSolve beats solving
locally beyond a crossover size; faster links move the crossover left.

Protocol: a 10 Mflop/s client workstation solves ``linsys/dgesv`` for
n in {64..2048}: locally (flops / local speed — no network), and via
NetSolve against a 200 Mflop/s server over 10 Mb/s and 100 Mb/s links.
"""

import numpy as np

from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

SIZES = (64, 128, 256, 512, 1024, 2048)
CLIENT_MFLOPS = 10.0
SERVER_MFLOPS = 200.0


def run_link(bandwidth: float):
    tb = standard_testbed(
        n_servers=1,
        server_mflops=[SERVER_MFLOPS],
        client_mflops=CLIENT_MFLOPS,
        bandwidth=bandwidth,
        seed=81,
    )
    tb.settle(30.0)
    rng = RngStreams(81).get("f4.data")
    times = {}
    for n in SIZES:
        a, b = linear_system(rng, n)
        tb.run(until=tb.kernel.now + 15.0)
        tb.solve("c0", "linsys/dgesv", [a, b])
        record = tb.client("c0").records[-1]
        attempt = record.successful_attempt
        # time as the application sees it: negotiation + the attempt
        times[n] = record.negotiation_seconds + attempt.elapsed
    spec = tb.agent.specs["linsys/dgesv"]
    local = {n: spec.flops({"n": n}) / (CLIENT_MFLOPS * 1e6) for n in SIZES}
    return times, local


def crossover(local: dict, remote: dict) -> int | None:
    for n in SIZES:
        if remote[n] < local[n]:
            return n
    return None


def test_f4_local_vs_remote_crossover(benchmark):
    def experiment():
        slow, local = run_link(1.25e6)    # 10 Mb/s
        fast, _ = run_link(12.5e6)        # 100 Mb/s
        return local, slow, fast

    local, slow, fast = once(benchmark, experiment)

    rows = []
    for n in SIZES:
        winner10 = "netsolve" if slow[n] < local[n] else "local"
        winner100 = "netsolve" if fast[n] < local[n] else "local"
        rows.append(
            [n, f"{local[n]:.3f}", f"{slow[n]:.3f}", f"{fast[n]:.3f}",
             winner10, winner100]
        )
    text = format_table(
        ["n", "local(s)", "netsolve@10Mb(s)", "netsolve@100Mb(s)",
         "winner@10Mb", "winner@100Mb"],
        rows,
        title=(
            f"F4: {CLIENT_MFLOPS:.0f} Mflop/s client vs "
            f"{SERVER_MFLOPS:.0f} Mflop/s NetSolve server"
        ),
    )
    x_slow = crossover(local, slow)
    x_fast = crossover(local, fast)
    text += f"\n\ncrossover: 10 Mb/s at n={x_slow}, 100 Mb/s at n={x_fast}"
    emit("F4_crossover", text)

    # claims: local wins small problems, NetSolve wins big ones
    assert local[SIZES[0]] < slow[SIZES[0]]
    assert slow[SIZES[-1]] < local[SIZES[-1]]
    assert fast[SIZES[-1]] < local[SIZES[-1]]
    # both links cross over somewhere, the faster link no later
    assert x_slow is not None and x_fast is not None
    assert x_fast <= x_slow
    # asymptotically the remote advantage approaches the speed ratio
    ratio = local[SIZES[-1]] / fast[SIZES[-1]]
    assert ratio > 0.5 * (SERVER_MFLOPS / CLIENT_MFLOPS)
    assert np.isfinite(ratio)
