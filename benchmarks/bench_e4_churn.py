"""Extension experiment E4 — long-run soak under server churn.

The availability question for a system meant to run for months: with
servers continuously crashing and restarting (staggered outages), does a
steady request stream keep completing, and what does churn cost?

Protocol: 4 servers; each follows a crash/restart cycle (uptime 240 s,
downtime 60 s, phases staggered so 1 server is typically down and
occasionally 2).  A client submits one dgesv every 20 s for 30 simulated
minutes (90 requests).  Compare against the churn-free run.  Exercises
the whole recovery stack end-to-end over many cycles: timeouts, failure
reports, suspect probing, re-registration, retry.
"""

import numpy as np

from repro.config import AgentConfig, ClientConfig, ServerConfig, WorkloadPolicy
from repro.core.faults import FailureInjector
from repro.simnet.rng import RngStreams
from repro.testbed import server_address, standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_SERVERS = 4
HORIZON = 1800.0
PERIOD = 20.0
SIZE = 256
UPTIME = 240.0
DOWNTIME = 60.0


def run(churn: bool):
    tb = standard_testbed(
        n_servers=N_SERVERS,
        server_mflops=[100.0] * N_SERVERS,
        seed=151,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=3,
                              suspect_probe_interval=15.0),
        client_cfg=ClientConfig(
            max_retries=8, agent_retries=4, agent_timeout=10.0,
            timeout_floor=5.0, timeout_factor=3.0, server_timeout=600.0,
        ),
        server_cfg=ServerConfig(
            workload=WorkloadPolicy(time_step=10.0, threshold=10.0),
            reregister_interval=45.0,
        ),
    )
    tb.settle(30.0)
    start = tb.kernel.now
    if churn:
        injector = FailureInjector(tb.transport)
        cycle = UPTIME + DOWNTIME
        for i in range(N_SERVERS):
            phase = start + 10.0 + i * cycle / N_SERVERS
            t = phase
            while t < start + HORIZON:
                injector.crash_for(t, server_address(f"s{i}"), DOWNTIME)
                t += cycle
    rng = RngStreams(151).get("e4.data")
    handles = []
    n_requests = int(HORIZON / PERIOD)
    for i in range(n_requests):
        tb.run(until=start + i * PERIOD)
        a, b = linear_system(rng, SIZE)
        handles.append(tb.submit("c0", "linsys/dgesv", [a, b]))
    tb.wait_all(handles, limit=start + HORIZON + 3600.0)
    records = [h.record for h in handles]
    done = [r for r in records if r.t_done is not None and not r.error]
    latencies = [r.total_seconds for r in done]
    return {
        "churn": churn,
        "requests": n_requests,
        "completed": len(done),
        "failed": len(records) - len(done),
        "mean": float(np.mean(latencies)),
        "p95": float(np.percentile(latencies, 95)),
        "worst": float(np.max(latencies)),
        "retries": sum(r.retries for r in records),
    }


def test_e4_server_churn_soak(benchmark):
    results = once(benchmark, lambda: [run(False), run(True)])

    rows = [
        ["churning" if r["churn"] else "stable", r["requests"],
         r["completed"], r["failed"], f"{r['mean']:.2f}",
         f"{r['p95']:.2f}", f"{r['worst']:.1f}", r["retries"]]
        for r in results
    ]
    text = format_table(
        ["pool", "requests", "completed", "lost", "mean(s)", "p95(s)",
         "worst(s)", "retries"],
        rows,
        title=(
            f"E4: 30-min soak, one dgesv every {PERIOD:.0f}s; churning = "
            f"each server cycles {UPTIME:.0f}s up / {DOWNTIME:.0f}s down, "
            "staggered"
        ),
    )
    emit("E4_churn_soak", text)

    stable, churning = results
    # the stable pool is perfect and retry-free
    assert stable["completed"] == stable["requests"]
    assert stable["retries"] == 0
    # under continuous churn, nothing is lost — outages cost latency only
    assert churning["completed"] == churning["requests"]
    assert churning["retries"] > 0
    # the typical request is barely affected (it lands on a live server);
    # only requests unlucky enough to hit an outage pay the timeout
    assert churning["mean"] < 3.0 * stable["mean"] + 5.0
    assert churning["worst"] > stable["worst"]
