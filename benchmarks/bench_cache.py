"""Result cache — repeat traffic at wire-latency cost.

Claim: under NEOS-style repeat traffic (an 80/20 Zipf trace — 80% of
requests re-ask the hottest 20% of distinct problems) the
content-addressed result cache collapses hit turnaround to wire
latency and multiplies aggregate throughput >= 5x, while costing
nothing when switched off.

* **Simulator** (virtual time, deterministic — the model of the
  claim): the full client -> agent -> server stack with the cache on
  answers warm repeats from the agent's hot cache in one RTT, within
  2x the analytic wire floor ``2 x (latency + per-message overhead)``.
* **Real sockets** (wall clock — the proof the fast path is real): a
  single TCP server with ``cache_entries`` set answers repeats without
  running the kernel, within ~2x a pure wire round trip measured
  through the very same stack (a ``FetchResult`` ping).

Writes ``benchmarks/results/BENCH_cache.json``.  Set ``BENCH_SMOKE=1``
for a quick CI run (shorter trace, same asserts).
"""

import json
import os
import threading
import time

import numpy as np

from _harness import RESULTS_DIR, emit, linear_system, ode_instance
from repro.config import ServerConfig
from repro.problems.builtin import builtin_registry
from repro.protocol.messages import FetchResult, SolveReply, SolveRequest
from repro.testbed import DEFAULT_LATENCY, standard_testbed
from repro.trace.instruments import Observability

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

CACHE_ENTRIES = 64

# simulator trace: dgesv systems big enough that the wire + kernel cost
# of a full solve dwarfs the one-RTT hit path
SIM_N = 160
SIM_DISTINCT = 6 if SMOKE else 10
SIM_TRAFFIC = 50 if SMOKE else 100

# TCP trace: ode/linear is a Python-loop kernel (tiny frames, ~0.1 s of
# real compute) so hits measurably collapse to the socket round trip
ODE_D = 24
ODE_STEPS = 3000
TCP_DISTINCT = 3 if SMOKE else 5
TCP_TRAFFIC = 20 if SMOKE else 40
PINGS = 10


def zipf_trace(rng, distinct: int, count: int) -> list:
    """An 80/20 trace: 80% of draws land on the hottest 20% of items."""
    hot = max(1, distinct // 5)
    idxs = []
    for _ in range(count):
        if rng.random() < 0.8:
            idxs.append(int(rng.integers(hot)))
        else:
            idxs.append(int(hot + rng.integers(distinct - hot)))
    return idxs


# ----------------------------------------------------------------------
# simulator: full stack, virtual time
# ----------------------------------------------------------------------
def sim_repeat_traffic() -> dict:
    """The same Zipf trace driven sequentially, cache off vs on."""
    rng = np.random.default_rng(31)
    pool = [linear_system(rng, SIM_N) for _ in range(SIM_DISTINCT)]
    trace = zipf_trace(np.random.default_rng(32), SIM_DISTINCT, SIM_TRAFFIC)
    out = {}
    for label, entries in (("off", 0), ("on", CACHE_ENTRIES)):
        obs = Observability()
        tb = standard_testbed(
            n_servers=3, seed=29, cache_entries=entries, observability=obs
        )
        tb.settle()
        t0 = tb.kernel.now
        for idx in trace:
            a, b = pool[idx]
            (x,) = tb.solve("c0", "linsys/dgesv", [a, b])
            assert np.allclose(a @ x, b, atol=1e-8)
        makespan = tb.kernel.now - t0
        counters = obs.metrics.snapshot()["counters"]
        out[label] = {
            "makespan_s": makespan,
            "throughput_rps": SIM_TRAFFIC / makespan,
            "agent_hits": counters.get("agent.cache_hits", 0),
            "server_hits": counters.get("server.cache_hits", 0),
            "cached_replies": counters.get("client.cached_replies", 0),
        }
        if label == "on":
            # warm-hit turnaround: one more solve of the hottest item,
            # against the analytic wire floor of one client<->agent RTT
            hottest = max(set(trace), key=trace.count)
            a, b = pool[hottest]
            t0 = tb.kernel.now
            (x,) = tb.solve("c0", "linsys/dgesv", [a.copy(), b.copy()])
            out[label]["hit_turnaround_s"] = tb.kernel.now - t0
            out[label]["wire_floor_s"] = 2 * (
                DEFAULT_LATENCY + tb.sim.per_message_overhead
            )
            assert np.allclose(a @ x, b, atol=1e-8)
    out["speedup_on_vs_off"] = (
        out["off"]["makespan_s"] / out["on"]["makespan_s"]
    )
    return out


# ----------------------------------------------------------------------
# real sockets: single server, wall clock
# ----------------------------------------------------------------------
def make_tcp_world(cfg):
    from repro.core.server import ComputationalServer
    from repro.protocol.tcp import TcpTransport
    from repro.protocol.transport import Component

    class Probe(Component):
        def __init__(self):
            self.replies = []
            self.event = threading.Event()

        def on_message(self, src, msg):
            self.replies.append(msg)
            self.event.set()

    transport = TcpTransport()
    server = ComputationalServer(
        server_id="sv", agent_address="agent",  # unresolvable: drops
        registry=builtin_registry().subset(("ode/linear",)),
        mflops=100.0, host=transport.host_name, cfg=cfg,
    )
    transport.add_node("server/sv", server, port=0)
    probe = Probe()
    transport.add_node("probe", probe, port=0)
    return transport, server, probe


def tcp_roundtrip(transport, probe, msg) -> object:
    """Send one message to the server, block until its reply lands."""
    probe.event.clear()
    transport.nodes["probe"].send("server/sv", msg)
    assert probe.event.wait(120.0), "server never replied"
    return probe.replies[-1]


def tcp_solve(transport, probe, rid, inputs) -> SolveReply:
    reply = tcp_roundtrip(transport, probe, SolveRequest(
        request_id=rid, problem="ode/linear", inputs=tuple(inputs),
        reply_to="probe",
    ))
    assert isinstance(reply, SolveReply) and reply.ok, reply
    return reply


def tcp_repeat_traffic() -> dict:
    """Wall-clock makespan of the Zipf trace over real sockets."""
    rng = np.random.default_rng(41)
    pool = [
        ode_instance(rng, ODE_D, ODE_STEPS) for _ in range(TCP_DISTINCT)
    ]
    trace = zipf_trace(np.random.default_rng(42), TCP_DISTINCT, TCP_TRAFFIC)
    out = {}
    for label, entries in (("off", 0), ("on", CACHE_ENTRIES)):
        transport, server, probe = make_tcp_world(
            ServerConfig(cache_entries=entries)
        )
        try:
            t0 = time.perf_counter()
            for rid, idx in enumerate(trace, start=1):
                tcp_solve(transport, probe, rid, pool[idx])
            elapsed = time.perf_counter() - t0
            stats = server.result_cache.stats()
        finally:
            transport.close()
        out[label] = {
            "makespan_s": elapsed,
            "throughput_rps": TCP_TRAFFIC / elapsed,
            "cache_hits": stats["hits"],
            "cache_misses": stats["misses"],
        }
    out["speedup_on_vs_off"] = (
        out["off"]["makespan_s"] / out["on"]["makespan_s"]
    )
    return out


def tcp_hit_latency() -> dict:
    """Best-of-N hit turnaround vs a pure wire RTT on the same stack.

    The wire baseline is a ``FetchResult`` ping (no store configured,
    so the server answers ``unsupported`` immediately): same sockets,
    same codec, same dispatch — zero compute.  Minima are compared
    because a single wall-clock sample on loopback is jitter-bound.
    """
    rng = np.random.default_rng(43)
    inst = ode_instance(rng, ODE_D, ODE_STEPS)
    transport, server, probe = make_tcp_world(
        ServerConfig(cache_entries=8)
    )
    try:
        t0 = time.perf_counter()
        first = tcp_solve(transport, probe, 1, inst)
        compute_s = time.perf_counter() - t0
        assert not first.cached
        hits = []
        for i in range(PINGS):
            t0 = time.perf_counter()
            reply = tcp_solve(transport, probe, 2 + i, inst)
            hits.append(time.perf_counter() - t0)
            assert reply.cached, "repeat did not hit the cache"
            assert np.array_equal(reply.outputs[0], first.outputs[0])
        pings = []
        for i in range(PINGS):
            t0 = time.perf_counter()
            tcp_roundtrip(transport, probe, FetchResult(
                request_id=20_000 + i, client="probe",
            ))
            pings.append(time.perf_counter() - t0)
    finally:
        transport.close()
    return {
        "compute_s": compute_s,
        "hit_s": min(hits),
        "wire_s": min(pings),
        "hit_over_wire": min(hits) / min(pings),
    }


# ----------------------------------------------------------------------
def test_cache_bench():
    sim = sim_repeat_traffic()
    tcp = tcp_repeat_traffic()
    lat = tcp_hit_latency()

    lines = [
        (
            f"result cache: 80/20 Zipf trace, "
            f"{SIM_TRAFFIC} x dgesv({SIM_N}) over {SIM_DISTINCT} distinct "
            f"(sim), {TCP_TRAFFIC} x ode({ODE_D},{ODE_STEPS}) over "
            f"{TCP_DISTINCT} distinct (tcp)"
        ),
        "",
        f"{'trace':>22} {'cache off':>11} {'cache on':>11} {'speedup':>8}",
        (
            f"{'sim makespan (virt s)':>22} "
            f"{sim['off']['makespan_s']:>11.3f} "
            f"{sim['on']['makespan_s']:>11.3f} "
            f"{sim['speedup_on_vs_off']:>8.2f}"
        ),
        (
            f"{'tcp makespan (wall s)':>22} "
            f"{tcp['off']['makespan_s']:>11.3f} "
            f"{tcp['on']['makespan_s']:>11.3f} "
            f"{tcp['speedup_on_vs_off']:>8.2f}"
        ),
        "",
        (
            f"sim warm hit {sim['on']['hit_turnaround_s'] * 1e3:.2f} ms "
            f"vs wire floor {sim['on']['wire_floor_s'] * 1e3:.2f} ms "
            f"({sim['on']['hit_turnaround_s'] / sim['on']['wire_floor_s']:.2f}x); "
            f"agent hits {sim['on']['agent_hits']}, "
            f"server hits {sim['on']['server_hits']}"
        ),
        (
            f"tcp warm hit {lat['hit_s'] * 1e3:.2f} ms "
            f"vs wire rtt {lat['wire_s'] * 1e3:.2f} ms "
            f"({lat['hit_over_wire']:.2f}x); "
            f"cold compute {lat['compute_s'] * 1e3:.1f} ms"
        ),
    ]
    emit("cache", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_cache.json").write_text(
        json.dumps(
            {
                "benchmark": "cache",
                "smoke": SMOKE,
                "zipf": {"hot_share": 0.8, "hot_fraction": 0.2},
                "sim": sim,
                "tcp": tcp,
                "tcp_latency": lat,
            },
            indent=2,
        )
        + "\n"
    )

    # throughput: repeat traffic must clear >= 5x faster with the cache
    assert sim["speedup_on_vs_off"] >= 5.0, sim
    assert tcp["speedup_on_vs_off"] >= 5.0, tcp
    # the trace really was mostly hits, and the baseline never cached
    assert sim["on"]["agent_hits"] + sim["on"]["server_hits"] >= (
        SIM_TRAFFIC - SIM_DISTINCT
    ), sim
    assert sim["off"]["agent_hits"] == sim["off"]["server_hits"] == 0, sim
    assert tcp["on"]["cache_hits"] >= TCP_TRAFFIC - TCP_DISTINCT, tcp
    assert tcp["off"]["cache_hits"] == tcp["off"]["cache_misses"] == 0, tcp
    # latency: a warm hit is a wire round trip, not a compute
    assert sim["on"]["hit_turnaround_s"] <= 2.0 * sim["on"]["wire_floor_s"], sim
    assert lat["hit_s"] <= 2.0 * lat["wire_s"] + 2e-3, lat
    assert lat["hit_s"] < lat["compute_s"] / 5, lat


if __name__ == "__main__":
    test_cache_bench()
    print("bench_cache: all assertions passed")
