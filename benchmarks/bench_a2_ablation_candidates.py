"""Ablation A2 — the ranked candidate list vs a single candidate.

DESIGN.md calls out the agent's *list* reply as a design choice: on
failure the client falls through to the next candidate locally instead
of paying another agent round trip (and the agent stays off the critical
retry path).  This ablation reruns the T4 crash scenario with candidate
lists of length 1 vs 3 and compares agent traffic and recovery.
"""

from repro.config import AgentConfig, ClientConfig
from repro.core.faults import FailureInjector
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import server_address, standard_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

N_REQUESTS = 32
N_SERVERS = 4


def run(list_length: int):
    tb = standard_testbed(
        n_servers=N_SERVERS,
        server_mflops=[100.0] * N_SERVERS,
        seed=72,
        bandwidth=12.5e6,
        agent_cfg=AgentConfig(candidate_list_length=list_length),
        client_cfg=ClientConfig(
            max_retries=5, timeout_floor=5.0, timeout_factor=3.0,
            server_timeout=600.0,
        ),
    )
    tb.settle(30.0)
    rng = RngStreams(72).get("a2.data")
    args = [list(linear_system(rng, 384)) for _ in range(N_REQUESTS)]
    start = tb.kernel.now
    queries_before = tb.agent.queries_served
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    injector = FailureInjector(tb.transport)
    injector.crash_at(start + 0.5, server_address("s0"))
    injector.crash_at(start + 1.5, server_address("s1"))
    tb.wait_all(farm.handles, limit=start + 3600.0)
    stats = farm.stats()
    return {
        "list_length": list_length,
        "completed": stats.completed,
        "makespan": farm.makespan,
        "agent_queries": tb.agent.queries_served - queries_before,
        "retries": stats.total_retries,
    }


def test_a2_candidate_list_length(benchmark):
    results = once(benchmark, lambda: [run(1), run(3)])
    by_len = {r["list_length"]: r for r in results}

    rows = [
        [r["list_length"], r["completed"], f"{r['makespan']:.1f}",
         r["agent_queries"], r["retries"]]
        for r in results
    ]
    text = format_table(
        ["list length", "completed", "makespan(s)", "agent queries",
         "retries"],
        rows,
        title=(
            f"A2: candidate list length under 2 crashes "
            f"({N_REQUESTS} requests, {N_SERVERS} servers)"
        ),
    )
    emit("A2_ablation_candidates", text)

    # both configurations recover everything (the loop still works)
    for r in results:
        assert r["completed"] == N_REQUESTS
    # claim: a single-candidate agent must be re-queried on every retry,
    # so it serves strictly more queries than the list configuration
    assert by_len[1]["agent_queries"] > by_len[3]["agent_queries"]
    # with a list, most retries resubmit locally: close to one query per
    # request (a requery only happens when a request exhausts its list)
    assert by_len[3]["agent_queries"] <= N_REQUESTS + by_len[3]["retries"]
