"""Ablation A3 — the network-measurement feedback loop.

NetSolve's agent depends on network characteristics it cannot know
perfectly a priori (the original measured them; the project later
delegated to the Network Weather Service).  This experiment starts the
agent with a badly wrong prior (10x optimistic bandwidth) and compares a
static agent against one that folds the clients' per-request
TransferReports into a learned per-path bandwidth (EWMA): prediction
error collapses within a handful of requests.
"""

from repro.core.predictor import LearnedNetworkInfo, LinkEstimate, StaticNetworkInfo
from repro.simnet.rng import RngStreams
from repro.testbed import ClientDef, HostDef, LinkDef, ServerDef, build_testbed
from repro.trace.metrics import format_table

from _harness import emit, linear_system, once

TRUE_BW = 1.25e6         # 10 Mb/s reality
WRONG_BW = 12.5e6        # the agent believes 100 Mb/s
LATENCY = 2e-3
N_REQUESTS = 10
SIZE = 512


def run(learn: bool):
    prior = StaticNetworkInfo(
        default=LinkEstimate(latency=LATENCY, bandwidth=WRONG_BW)
    )
    network = LearnedNetworkInfo(prior, alpha=0.5) if learn else prior
    tb = build_testbed(
        hosts=[HostDef("ws", 20.0), HostDef("broker", 50.0),
               HostDef("crunch", 150.0)],
        servers=[ServerDef("s0", "crunch")],
        clients=[ClientDef("c0", "ws")],
        agent_host="broker",
        default_link=LinkDef("*", "*", latency=LATENCY, bandwidth=TRUE_BW),
        network_override=network,
    )
    tb.settle(30.0)
    rng = RngStreams(99).get("a3.data")
    errors = []
    for _ in range(N_REQUESTS):
        a, b = linear_system(rng, SIZE)
        tb.run(until=tb.kernel.now + 15.0)
        tb.solve("c0", "linsys/dgesv", [a, b])
        attempt = tb.client("c0").records[-1].successful_attempt
        errors.append(
            abs(attempt.predicted_seconds - attempt.elapsed) / attempt.elapsed
        )
    learned_bw = (
        network.learned_bandwidth("ws", "crunch") if learn else None
    )
    return errors, learned_bw


def test_a3_learned_network_measurements(benchmark):
    def experiment():
        return run(learn=False), run(learn=True)

    (static_err, _), (learned_err, learned_bw) = once(benchmark, experiment)

    rows = [
        [i + 1, f"{100 * s:.1f}%", f"{100 * l:.1f}%"]
        for i, (s, l) in enumerate(zip(static_err, learned_err))
    ]
    text = format_table(
        ["request #", "static agent rel.err", "learning agent rel.err"],
        rows,
        title=(
            "A3: prediction error with a 10x-optimistic bandwidth prior "
            f"(dgesv n={SIZE} over a 10 Mb/s path)"
        ),
    )
    text += (
        f"\n\nlearned bandwidth after {N_REQUESTS} requests: "
        f"{learned_bw / 1e6:.2f} MB/s (truth {TRUE_BW / 1e6:.2f} MB/s)"
    )
    emit("A3_learned_network", text)

    # the static agent stays badly wrong forever
    assert min(static_err) > 0.4
    # the learner's first prediction is as wrong, then collapses
    assert learned_err[0] > 0.4
    assert learned_err[-1] < 0.05
    # and the learned bandwidth lands near the truth
    assert abs(learned_bw - TRUE_BW) / TRUE_BW < 0.15
