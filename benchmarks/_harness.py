"""Shared infrastructure for the experiment benchmarks.

Every benchmark:

* builds its world through :mod:`repro.testbed` (deterministic seeds),
* runs the experiment in *virtual* time (pytest-benchmark measures the
  harness's real-time cost, the tables report virtual seconds),
* prints a paper-style table AND persists it under
  ``benchmarks/results/<experiment>.txt``, and
* asserts the qualitative claim the experiment reconstructs.
"""

from __future__ import annotations

import pathlib

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {experiment_id} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def linear_system(rng: np.random.Generator, n: int):
    """A well-conditioned dense system (diagonally dominated)."""
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


def ode_instance(rng: np.random.Generator, d: int, steps: int):
    """Arguments for ode/linear: a mildly damped random linear system."""
    m = rng.standard_normal((d, d)) * 0.1 - 0.5 * np.eye(d)
    y0 = rng.standard_normal(d)
    return [m, y0, steps, 1.0]


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
