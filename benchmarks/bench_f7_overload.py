"""Experiment F7 — overload protection under a saturating farm.

Claim: when a burst of requests saturates the pool, bounded server
admission (``max_queue``) plus Busy failover turns overload into cheap,
explicit re-balancing — every refusal costs one round trip and steers
the client to spare capacity — where the unbounded baseline piles the
burst onto the predicted-best server and recovers only through attempt
timeouts: seconds of queue wait lost per failover, the abandoned work
still grinding on the server, and false death marks on servers that
were merely busy.

Protocol: 4 equal servers (one execution slot each), pending-assignment
feedback disabled so the agent's view refreshes only through workload
reports — the stale-information regime the admission cap defends
against (reports cannot see a server's FIFO queue at all, so herding is
invisible to the broker in both modes).  A farm of dgesv instances is
submitted as one burst; the two modes differ *only* in
``ServerConfig.max_queue``.  Reports p50/p99 turnaround, shed counts
and terminal states; writes ``benchmarks/results/BENCH_overload.json``.
Set ``BENCH_SMOKE=1`` for a quick CI run (smaller farm, same asserts).
"""

import json
import os

import numpy as np

from _harness import RESULTS_DIR, emit, linear_system
from repro.config import AgentConfig, ClientConfig, ServerConfig
from repro.core.request import RequestStatus
from repro.farming import submit_farm
from repro.simnet.rng import RngStreams
from repro.testbed import standard_testbed

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

N_SERVERS = 4
SIZE = 500                     # ~8.3e7 flops: 0.83 s on a 100 Mflop/s box
FARM = 16 if SMOKE else 48     # burst size: well past the pool's slots
MAX_QUEUE = 6                  # bounded mode's admission cap


def run_mode(max_queue: int) -> dict:
    tb = standard_testbed(
        n_servers=N_SERVERS,
        server_mflops=[100.0] * N_SERVERS,
        seed=171,
        bandwidth=1e8,  # compute-dominated: the uplink is not the story
        agent_cfg=AgentConfig(candidate_list_length=3),
        client_cfg=ClientConfig(
            max_retries=80,       # busy failovers are attempts too
            agent_retries=40,     # empty-pool backoff budget
            timeout_floor=8.0,    # one timeout cycle ≈ 10 service times
            server_timeout=3600.0,
        ),
        server_cfg=ServerConfig(max_concurrent=1, max_queue=max_queue),
        assignment_feedback=False,
    )
    tb.settle()
    rng = RngStreams(171).get("f7.data")
    args = [list(linear_system(rng, SIZE)) for _ in range(FARM)]
    t0 = tb.kernel.now
    farm = submit_farm(tb.client("c0"), "linsys/dgesv", args)
    tb.wait_all(farm.handles, limit=t0 + 3600.0)

    records = farm.records
    # acceptance: every request reached a terminal state
    assert all(r.status.terminal for r in records), "non-terminal request"
    done = [r for r in records if r.status is RequestStatus.DONE]
    turnaround = np.array([r.total_seconds for r in done])
    outcomes = [a.outcome for r in records for a in r.attempts]
    return {
        "max_queue": max_queue,
        "requests": FARM,
        "done": len(done),
        "failed": len(records) - len(done),
        "p50_s": float(np.percentile(turnaround, 50)),
        "p99_s": float(np.percentile(turnaround, 99)),
        "mean_s": float(turnaround.mean()),
        "sheds": sum(s.requests_shed for s in tb.servers.values()),
        "peak_queue": max(s.peak_queue for s in tb.servers.values()),
        "busy_attempts": outcomes.count("busy"),
        "timeout_attempts": outcomes.count("timeout"),
        "stale_completions": sum(
            s.stale_completions for s in tb.servers.values()
        ),
        "agent_busy_reports": tb.agent.busy_reports_received,
        "servers_used": farm.servers_used(),
    }


def test_f7_overload():
    unbounded = run_mode(0)
    bounded = run_mode(MAX_QUEUE)

    header = (
        f"{'mode':>10} {'done':>5} {'fail':>5} {'p50 s':>8} {'p99 s':>8} "
        f"{'sheds':>6} {'peakQ':>6} {'busy':>5} {'tmout':>6}"
    )
    lines = [
        f"F7: saturating farm of {FARM} dgesv({SIZE}) over "
        f"{N_SERVERS} equal servers — bounded admission vs unbounded",
        "",
        header,
    ]
    for label, r in (("unbounded", unbounded), ("bounded", bounded)):
        lines.append(
            f"{label:>10} {r['done']:>5} {r['failed']:>5} "
            f"{r['p50_s']:>8.2f} {r['p99_s']:>8.2f} {r['sheds']:>6} "
            f"{r['peak_queue']:>6} {r['busy_attempts']:>5} "
            f"{r['timeout_attempts']:>6}"
        )
    lines.append("")
    lines.append(
        f"p99 ratio bounded/unbounded: "
        f"{bounded['p99_s'] / unbounded['p99_s']:.2f} "
        f"(max_queue={MAX_QUEUE}; unbounded failover is timeout-driven)"
    )
    emit("F7_overload", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_overload.json").write_text(
        json.dumps(
            {
                "benchmark": "overload",
                "farm": FARM,
                "size": SIZE,
                "smoke": SMOKE,
                "modes": {"unbounded": unbounded, "bounded": bounded},
            },
            indent=2,
        )
        + "\n"
    )

    # the unbounded baseline never sheds and its queue is unbounded
    assert unbounded["sheds"] == 0
    assert unbounded["peak_queue"] > MAX_QUEUE
    # bounded admission: sheds happened, and no queue ever passed the cap
    assert bounded["sheds"] > 0
    assert bounded["peak_queue"] <= MAX_QUEUE
    # busy reports reached the agent as penalties, not death marks
    assert bounded["agent_busy_reports"] > 0
    # the headline: explicit shedding beats timeout-driven recovery
    assert bounded["p99_s"] < 0.9 * unbounded["p99_s"], (
        bounded["p99_s"], unbounded["p99_s"],
    )


if __name__ == "__main__":
    test_f7_overload()
    print("bench_f7_overload: all assertions passed")
