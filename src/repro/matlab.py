"""MATLAB-flavoured interface.

The original paper's motivating interface: a MATLAB user typing
``x = netsolve('dgesv', a, b)`` with no knowledge of agents or servers.
This module reproduces that ergonomic layer in Python:

* short names resolve against the agent's catalogue (``'dgesv'``
  matches ``linsys/dgesv`` when the suffix is unambiguous),
* single-output problems return the bare value, multi-output problems a
  tuple (MATLAB's multiple-return feel),
* ``netsolve_nb`` / ``probe`` / ``wait`` mirror the non-blocking verbs,
* ``netsolve_err`` returns the last error message instead of raising,
  for MATLAB-script-style flow.
"""

from __future__ import annotations

from typing import Any, Optional

from .capi import Session
from .core.client import RequestHandle
from .core.request import RequestStatus
from .errors import NetSolveError, ProblemNotFoundError

__all__ = ["MatlabNetSolve"]


class MatlabNetSolve:
    """A MATLAB-session-like front end over a :class:`Session`."""

    def __init__(self, session: Session):
        self.session = session
        self._catalogue: Optional[tuple[str, ...]] = None
        self.last_error: str = ""

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _load_catalogue(self) -> tuple[str, ...]:
        if self._catalogue is None:
            promise = self.session.list_problems("")
            self.session.drive(promise)
            self._catalogue = tuple(promise.result())
        return self._catalogue

    def problems(self, prefix: str = "") -> list[str]:
        """Browse the catalogue (the problem-browser verb)."""
        return [n for n in self._load_catalogue() if n.startswith(prefix)]

    def resolve(self, name: str) -> str:
        """Resolve a short name to a full problem name.

        Exact matches win; otherwise a unique ``.../name`` suffix match
        is accepted; ambiguity or absence raises.
        """
        catalogue = self._load_catalogue()
        if name in catalogue:
            return name
        matches = [n for n in catalogue if n.endswith("/" + name)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ProblemNotFoundError(name)
        raise NetSolveError(
            f"ambiguous problem name {name!r}: matches {sorted(matches)}"
        )

    # ------------------------------------------------------------------
    # the MATLAB verbs
    # ------------------------------------------------------------------
    def netsolve(self, problem: str, *args: Any) -> Any:
        """Blocking call; single outputs unwrap, multiple return a tuple."""
        handle = self.netsolve_nb(problem, *args)
        return self.wait(handle)

    def netsolve_nb(self, problem: str, *args: Any) -> RequestHandle:
        """Non-blocking submit; returns a handle for probe/wait."""
        full = self.resolve(problem)
        return self.session.submit(full, list(args))

    def probe(self, handle: RequestHandle) -> bool:
        """True once the request has settled (success or failure)."""
        return handle.done

    def wait(self, handle: RequestHandle) -> Any:
        """Block until done; unwrap single outputs."""
        self.session.drive(handle.promise)
        if handle.status is not RequestStatus.DONE:
            error = handle.promise.error
            self.last_error = str(error)
            raise error if error is not None else NetSolveError("failed")
        outputs = handle.result()
        return outputs[0] if len(outputs) == 1 else outputs

    def help(self, problem: str) -> str:
        """MATLAB-style ``help`` text for a problem: signature,
        description and cost formula, fetched from the agent."""
        full = self.resolve(problem)
        promise = self.session.client.describe(full)
        self.session.drive(promise)
        spec = promise.result()
        lines = [
            spec.signature(),
            "",
            spec.description or "(no description)",
            f"cost: {spec.complexity.text} flops",
        ]
        if spec.provenance:
            lines.append(f"library: {spec.provenance}")
        for obj in spec.inputs:
            dims = ",".join(str(d) for d in obj.dims)
            kind = f"{obj.kind.value}[{dims}]" if dims else obj.kind.value
            note = f"  {obj.description}" if obj.description else ""
            lines.append(f"  in  {obj.name:<8} {kind:<16} {obj.dtype}{note}")
        for obj in spec.outputs:
            dims = ",".join(str(d) for d in obj.dims)
            kind = f"{obj.kind.value}[{dims}]" if dims else obj.kind.value
            note = f"  {obj.description}" if obj.description else ""
            lines.append(f"  out {obj.name:<8} {kind:<16} {obj.dtype}{note}")
        return "\n".join(lines)

    def netsolve_err(self, problem: str, *args: Any) -> tuple[Any, str]:
        """MATLAB-style ``[x, err] = netsolve(...)``: returns
        ``(value, "")`` or ``(None, message)`` and never raises."""
        try:
            return self.netsolve(problem, *args), ""
        except NetSolveError as exc:
            self.last_error = str(exc)
            return None, str(exc)
