"""Client-side builder for request DAGs.

A :class:`DagBuilder` assembles the node list that
:meth:`~repro.core.client.NetSolveClient.submit_dag` ships in one
``SubmitDag`` message, catching graph mistakes *before* anything hits
the wire.  Construction order enforces acyclicity for free: a node can
only reference outputs of nodes already defined, so the builder cannot
express a cycle (the server still runs its own Kahn check — it accepts
raw node lists from any client, not just this builder).

    dag = DagBuilder()
    solve = dag.node("solve", "linsys/dgesv", [a_handle, b], keep=True)
    norm = dag.node("norm", "blas/ddot", [solve.output(0), solve.output(0)],
                    emit=True)
    outputs = wait(client.submit_dag(dag.build(), address=server))

``keep=True`` leaves a node's outputs resident on the server (handles,
fetchable later); ``emit=True`` marks whose outputs the final
``DagReply`` carries (default: the graph's terminal nodes).
"""

from __future__ import annotations

from typing import Any, Sequence

from .errors import NetSolveError
from .protocol.messages import NodeOutput

__all__ = ["DagBuilder", "DagNode"]


class DagNode:
    """One defined node; hand its :meth:`output` to later nodes."""

    __slots__ = ("id", "problem", "n_declared")

    def __init__(self, node_id: str, problem: str):
        self.id = node_id
        self.problem = problem
        #: outputs referenced so far (informational; the server checks
        #: real arity at execution time)
        self.n_declared = 0

    def output(self, index: int = 0) -> NodeOutput:
        """Reference this node's ``index``-th output."""
        if index < 0:
            raise NetSolveError(f"node {self.id!r}: output index must be >= 0")
        self.n_declared = max(self.n_declared, index + 1)
        return NodeOutput(node=self.id, index=index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DagNode({self.id!r}, {self.problem!r})"


class DagBuilder:
    """Accumulates nodes in dependency order and renders the wire form."""

    def __init__(self):
        self._nodes: list[dict] = []
        self._ids: set[str] = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def node(
        self,
        node_id: str,
        problem: str,
        inputs: Sequence[Any] = (),
        *,
        keep: bool = False,
        emit: bool = False,
    ) -> DagNode:
        """Define a node; returns a :class:`DagNode` whose outputs later
        nodes can reference.  Inputs may be values, handles, or
        ``NodeOutput`` references to *already defined* nodes — forward
        references raise immediately, which is what makes a builder
        graph acyclic by construction.
        """
        if not node_id or not isinstance(node_id, str):
            raise NetSolveError("dag node needs a non-empty string id")
        if node_id in self._ids:
            raise NetSolveError(f"duplicate dag node id {node_id!r}")
        if not problem or not isinstance(problem, str):
            raise NetSolveError(f"dag node {node_id!r} needs a problem name")
        for ref in _refs_in(tuple(inputs)):
            if ref.node not in self._ids:
                raise NetSolveError(
                    f"dag node {node_id!r} references {ref.node!r}, which "
                    f"is not defined yet (define dependencies first)"
                )
        self._ids.add(node_id)
        self._nodes.append({
            "id": node_id,
            "problem": problem,
            "inputs": tuple(inputs),
            "keep": bool(keep),
            "emit": bool(emit),
        })
        return DagNode(node_id, problem)

    def build(self) -> tuple[dict, ...]:
        """The validated node list, ready for ``submit_dag``."""
        if not self._nodes:
            raise NetSolveError("dag has no nodes")
        return tuple(dict(node) for node in self._nodes)


def _refs_in(value: Any) -> list[NodeOutput]:
    refs: list[NodeOutput] = []
    if isinstance(value, NodeOutput):
        refs.append(value)
    elif isinstance(value, (list, tuple)):
        for item in value:
            refs.extend(_refs_in(item))
    elif isinstance(value, dict):
        for item in value.values():
            refs.extend(_refs_in(item))
    return refs
