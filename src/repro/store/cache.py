"""Bounded LRU + TTL result cache.

Deliberately transport-agnostic: the clock is injected so the same cache
runs under the simulator's virtual time and a live node's wall clock.
``entries == 0`` disables the cache entirely — every ``get`` misses
without counting, every ``put`` is a no-op — which is what makes the
default-off configuration provably inert.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Optional

from ..errors import ConfigError

__all__ = ["ResultCache"]


def _zero_clock() -> float:
    return 0.0


class ResultCache:
    """Content-digest -> value map with LRU eviction and optional TTL.

    ``ttl == 0`` means entries never expire (LRU bound only);
    ``ttl > 0`` expires an entry ``ttl`` clock-seconds after insertion
    (lazily, on lookup — an expired entry still occupies a slot until
    it is read or evicted).
    """

    __slots__ = (
        "entries",
        "ttl",
        "_clock",
        "_data",
        "hits",
        "misses",
        "evictions",
        "expirations",
    )

    def __init__(
        self,
        entries: int = 0,
        *,
        ttl: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if entries < 0:
            raise ConfigError(f"cache entries must be >= 0, got {entries}")
        if ttl < 0:
            raise ConfigError(f"cache ttl must be >= 0, got {ttl}")
        self.entries = entries
        self.ttl = ttl
        self._clock = clock if clock is not None else _zero_clock
        self._data: OrderedDict[str, tuple[Any, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.entries > 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> Any:
        """The cached value, or ``None`` on miss/expiry (counted)."""
        if not self.entries:
            return None
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, inserted = entry
        if self.ttl > 0 and self._clock() - inserted > self.ttl:
            del self._data[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: str) -> Any:
        """Like :meth:`get` but statistics- and LRU-neutral.

        For re-checks of a lookup already counted (e.g. the server's
        queue-time check after an admission-time miss): the entry's
        recency is not refreshed and no hit/miss is recorded, so stats
        stay one-to-one with logical requests.  Expiry still applies
        (an expired entry answers ``None``) but is left in place for
        the counting paths to collect.
        """
        if not self.entries:
            return None
        entry = self._data.get(key)
        if entry is None:
            return None
        value, inserted = entry
        if self.ttl > 0 and self._clock() - inserted > self.ttl:
            return None
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries past the cap."""
        if not self.entries:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = (value, self._clock())
        while len(self._data) > self.entries:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._data),
            "capacity": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }
