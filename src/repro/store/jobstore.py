"""SQLite-backed persistent job store.

NEOS-style: every completed solve is recorded under
``(client, request_id)`` with its content digest and the encoded
solution blob, so results survive a server restart and a crashed
non-blocking client can reconnect and fetch everything it is owed by
request id (``FetchResult``/``ResultStatus`` on the wire).

The store is deliberately codec-free — callers hand in the payload as
an opaque ``bytes`` blob (the server encodes the outputs tuple with the
wire codec) and get the same bytes back.  Plain stdlib ``sqlite3``, one
connection guarded by a lock (``check_same_thread=False`` so TCP worker
threads can record completions), synchronous writes left at the SQLite
default — a job database that lies about durability is worse than none.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass
from typing import Optional

__all__ = ["JobRow", "JobStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    client          TEXT    NOT NULL,
    request_id      INTEGER NOT NULL,
    digest          TEXT    NOT NULL DEFAULT '',
    problem         TEXT    NOT NULL DEFAULT '',
    ok              INTEGER NOT NULL,
    payload         BLOB    NOT NULL,
    detail          TEXT    NOT NULL DEFAULT '',
    compute_seconds REAL    NOT NULL DEFAULT 0.0,
    created         REAL    NOT NULL DEFAULT 0.0,
    PRIMARY KEY (client, request_id)
);
CREATE INDEX IF NOT EXISTS jobs_digest ON jobs (digest) WHERE ok = 1;
"""


@dataclass(frozen=True)
class JobRow:
    """One recorded job outcome."""

    client: str
    request_id: int
    digest: str
    problem: str
    ok: bool
    payload: bytes
    detail: str
    compute_seconds: float
    created: float


class JobStore:
    """Persistent ``(client, request_id) -> outcome`` map on SQLite."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # ------------------------------------------------------------------
    def record(
        self,
        client: str,
        request_id: int,
        *,
        digest: str = "",
        problem: str = "",
        ok: bool,
        payload: bytes = b"",
        detail: str = "",
        compute_seconds: float = 0.0,
        created: float = 0.0,
    ) -> None:
        """Upsert one job outcome (a retry overwrites its prior row)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs (client, request_id, digest,"
                " problem, ok, payload, detail, compute_seconds, created)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    client,
                    request_id,
                    digest,
                    problem,
                    1 if ok else 0,
                    sqlite3.Binary(payload),
                    detail,
                    compute_seconds,
                    created,
                ),
            )
            self._conn.commit()

    def fetch(self, client: str, request_id: int) -> Optional[JobRow]:
        """The recorded outcome for one request, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT client, request_id, digest, problem, ok, payload,"
                " detail, compute_seconds, created FROM jobs"
                " WHERE client = ? AND request_id = ?",
                (client, request_id),
            ).fetchone()
        if row is None:
            return None
        return JobRow(
            client=row[0],
            request_id=row[1],
            digest=row[2],
            problem=row[3],
            ok=bool(row[4]),
            payload=bytes(row[5]),
            detail=row[6],
            compute_seconds=row[7],
            created=row[8],
        )

    def lookup_digest(self, digest: str) -> Optional[bytes]:
        """Latest successful payload recorded under ``digest``, if any.

        This is the restart-warming path: a rebooted server with a cold
        memory cache can still answer a repeat request from disk.
        """
        if not digest:
            return None
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM jobs WHERE digest = ? AND ok = 1"
                " ORDER BY created DESC, rowid DESC LIMIT 1",
                (digest,),
            ).fetchone()
        return None if row is None else bytes(row[0])

    def count(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]

    def close(self) -> None:
        with self._lock:
            self._conn.close()
