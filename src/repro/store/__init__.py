"""Content-addressed result caching and the persistent job store.

Three small pieces, composed by the server/agent/client components:

- :func:`~repro.store.digest.solve_digest` — a content-addressed digest
  of ``(problem, canonicalized inputs, env)``, computed incrementally
  over the zero-copy iov encoding (no serialization pass);
- :class:`~repro.store.cache.ResultCache` — a bounded LRU with optional
  TTL, clocked by the owning node so it works under virtual time;
- :class:`~repro.store.jobstore.JobStore` — an optional SQLite-backed
  NEOS-style job database (request id -> digest -> solution blob) that
  survives server restarts;
- :class:`~repro.store.handles.HandleStore` — the server-resident object
  store behind ``DataHandle``: digest-at-insert, pin/refcount/TTL
  semantics and a byte budget, surviving ``on_restart`` but not
  ``on_shutdown``.
"""

from .cache import ResultCache
from .digest import solve_digest
from .handles import HandleStore, StoredObject
from .jobstore import JobRow, JobStore

__all__ = [
    "ResultCache", "solve_digest", "JobRow", "JobStore",
    "HandleStore", "StoredObject",
]
