"""Server-resident object store behind :class:`~repro.protocol.messages.DataHandle`.

Promotes the old ``{key: (value, nbytes)}`` sequencing dict into a real
store with the semantics handles need:

* **digests** — every object is content-digested at insert time (blake2b
  over its canonical wire encoding, the same scheme ``solve_digest``
  uses), so handle-bearing requests can fold the *stored* digest into
  their request digest instead of re-hashing megabytes per call;
* **pins** — client-``store``d operands are pinned: immune to TTL and
  eviction, released only by an explicit delete (the PR 1..7 sequencing
  contract, unchanged);
* **refcounts + TTL** — unpinned entries (``keep_result`` outputs, DAG
  intermediates) are reclaimable: a positive refcount (an executing DAG
  holding an edge) blocks reclamation, and once released the entry lives
  until its TTL lapses or the byte budget forces LRU eviction;
* **byte budget** — pinned inserts are *rejected* past the budget (the
  client hears a failed StoreAck, as before); unpinned inserts instead
  evict idle unpinned entries LRU-first and fail only if the object
  cannot fit at all.

Deliberately transport-agnostic, like :class:`ResultCache`: the clock is
injected so TTLs run under virtual and wall time alike.  Lifecycle
contract (pinned by tests): the store *survives* ``on_restart`` (an
in-process hiccup loses no resident data) and is *cleared* by
``on_shutdown`` (process death wipes memory; clients re-submit with
payloads via the typed ``missing_object`` error).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Optional

import numpy as np

from ..errors import CodecError, ConfigError, MissingObjectError
from ..protocol.codec import encoded_parts, encoded_size
from ..protocol.messages import DataHandle

__all__ = ["HandleStore", "StoredObject"]

#: matches ``repro.store.digest._DIGEST_BYTES`` — same digest family, so
#: a folded handle digest is as collision-resistant as a value digest
_DIGEST_BYTES = 20


def _zero_clock() -> float:
    return 0.0


def value_digest(value: Any) -> str:
    """blake2b hex of ``value``'s canonical wire encoding.

    Raises :class:`CodecError` for values the codec cannot carry (which
    could not have arrived over the wire anyway).
    """
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in encoded_parts(value):
        h.update(part)
    return h.hexdigest()


class StoredObject:
    """One resident object plus its handle metadata."""

    __slots__ = (
        "key", "value", "nbytes", "digest", "pinned", "refcount",
        "inserted", "shape", "dtype",
    )

    def __init__(self, key, value, nbytes, digest, pinned, inserted):
        self.key = key
        self.value = value
        self.nbytes = nbytes
        self.digest = digest
        self.pinned = pinned
        self.refcount = 0
        self.inserted = inserted
        if isinstance(value, np.ndarray):
            self.shape = tuple(int(d) for d in value.shape)
            self.dtype = value.dtype.name
        else:
            self.shape = ()
            self.dtype = ""

    def handle(self, *, server_id: str = "", address: str = "") -> DataHandle:
        return DataHandle(
            key=self.key,
            digest=self.digest,
            nbytes=self.nbytes,
            server_id=server_id,
            address=address,
            shape=self.shape,
            dtype=self.dtype,
        )


class HandleStore:
    """Key -> resident object map with pin/refcount/TTL/budget semantics."""

    __slots__ = (
        "budget", "ttl", "_clock", "_data", "nbytes",
        "stores", "rejects", "deletes", "evictions", "expirations", "misses",
    )

    def __init__(
        self,
        budget: int,
        *,
        ttl: float = 0.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if budget < 0:
            raise ConfigError(f"handle-store budget must be >= 0, got {budget}")
        if ttl < 0:
            raise ConfigError(f"handle ttl must be >= 0, got {ttl}")
        self.budget = budget
        self.ttl = ttl
        self._clock = clock if clock is not None else _zero_clock
        #: insertion/recency order — LRU reclamation walks from the front
        self._data: OrderedDict[str, StoredObject] = OrderedDict()
        self.nbytes = 0
        self.stores = 0
        self.rejects = 0
        self.deletes = 0
        self.evictions = 0
        self.expirations = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return self._lookup(key) is not None

    def _reclaimable(self, obj: StoredObject) -> bool:
        return not obj.pinned and obj.refcount == 0

    def _expired(self, obj: StoredObject, now: float) -> bool:
        return (
            self.ttl > 0
            and self._reclaimable(obj)
            and now - obj.inserted > self.ttl
        )

    def _lookup(self, key: str) -> Optional[StoredObject]:
        """The live entry for ``key``, expiring it lazily if stale."""
        obj = self._data.get(key)
        if obj is None:
            return None
        if self._expired(obj, self._clock()):
            del self._data[key]
            self.nbytes -= obj.nbytes
            self.expirations += 1
            return None
        return obj

    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, *, pin: bool = False) -> StoredObject:
        """Insert ``value`` under ``key``; returns its entry.

        Replacing an existing key keeps the stronger pin (re-storing a
        pinned operand never silently unpins it).  Raises
        :class:`CodecError` for unencodable values and
        :class:`ConfigError` when the object cannot be admitted within
        the byte budget: pinned inserts never evict on their own behalf
        (the historical StoreObject contract — the client is told the
        cache is full), unpinned inserts may evict idle unpinned
        entries LRU-first.
        """
        nbytes = encoded_size(value)
        old = self._data.get(key)
        old_bytes = old.nbytes if old is not None else 0
        projected = self.nbytes - old_bytes + nbytes
        if projected > self.budget:
            if pin or (old is not None and old.pinned):
                self.rejects += 1
                raise ConfigError(
                    f"object cache full ({projected} > {self.budget} bytes)"
                )
            projected -= self._evict(projected - self.budget, skip=key)
            if projected > self.budget:
                self.rejects += 1
                raise ConfigError(
                    f"object cache full ({projected} > {self.budget} bytes)"
                )
        obj = StoredObject(
            key, value, nbytes,
            value_digest(value),
            pin or (old is not None and old.pinned),
            self._clock(),
        )
        if old is not None:
            obj.refcount = old.refcount
            del self._data[key]
        self._data[key] = obj
        self.nbytes += nbytes - old_bytes
        self.stores += 1
        return obj

    def _evict(self, needed: int, *, skip: str) -> int:
        """Free at least ``needed`` bytes of idle unpinned entries
        (LRU-first); returns the bytes actually freed."""
        freed = 0
        for key in list(self._data):
            if freed >= needed:
                break
            obj = self._data[key]
            if key == skip or not self._reclaimable(obj):
                continue
            del self._data[key]
            self.nbytes -= obj.nbytes
            freed += obj.nbytes
            self.evictions += 1
        return freed

    def get(self, key: str) -> Any:
        """The resident value.  Raises :class:`MissingObjectError` when
        ``key`` is not resident (never stored, deleted, expired, evicted
        or lost to a shutdown) — the typed, retryable failure the client
        maps to re-submit-with-payload."""
        obj = self._lookup(key)
        if obj is None:
            self.misses += 1
            raise MissingObjectError(key)
        self._data.move_to_end(key)
        return obj.value

    def entry(self, key: str) -> Optional[StoredObject]:
        """The live entry, or ``None`` — no miss counted, LRU untouched."""
        return self._lookup(key)

    def digest_of(self, key: str) -> Optional[str]:
        """Stored content digest for ``key``, or ``None`` if absent."""
        obj = self._lookup(key)
        return obj.digest if obj is not None else None

    def delete(self, key: str) -> int:
        """Drop ``key`` regardless of pin state; returns bytes freed
        (0 when absent — deletion is idempotent)."""
        obj = self._data.pop(key, None)
        if obj is None:
            return 0
        self.nbytes -= obj.nbytes
        self.deletes += 1
        return obj.nbytes

    # ------------------------------------------------------------------
    def retain(self, key: str) -> None:
        """Bump ``key``'s refcount: an executing consumer (a DAG edge)
        blocks TTL expiry and eviction until :meth:`release`."""
        obj = self._lookup(key)
        if obj is None:
            raise MissingObjectError(key)
        obj.refcount += 1

    def release(self, key: str) -> None:
        """Drop one reference; the TTL clock restarts now, so an object
        idles for a full ``ttl`` *after* its last consumer finished.
        Releasing an absent key is a no-op (the entry may have been
        deleted explicitly while referenced)."""
        obj = self._data.get(key)
        if obj is None or obj.refcount == 0:
            return
        obj.refcount -= 1
        if obj.refcount == 0:
            obj.inserted = self._clock()

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Process death: every resident object is gone, pins included."""
        self._data.clear()
        self.nbytes = 0

    def sweep(self) -> int:
        """Expire every stale entry now (TTL is otherwise lazy); returns
        the number expired."""
        now = self._clock()
        stale = [k for k, o in self._data.items() if self._expired(o, now)]
        for key in stale:
            obj = self._data.pop(key)
            self.nbytes -= obj.nbytes
            self.expirations += 1
        return len(stale)

    def stats(self) -> dict:
        return {
            "objects": len(self._data),
            "nbytes": self.nbytes,
            "budget": self.budget,
            "pinned": sum(1 for o in self._data.values() if o.pinned),
            "stores": self.stores,
            "rejects": self.rejects,
            "deletes": self.deletes,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "misses": self.misses,
        }
