"""Content-addressed request digests.

A solve is memoizable when two requests that would compute the same
answer hash to the same key.  The key covers everything the kernel sees:
the problem name, the *canonicalized* input values, and the bound size
environment.  Canonicalization rides on the wire codec — ``_encode_iov``
already flattens every ndarray with ``ascontiguousarray``, so aliased,
strided and contiguous views of the same values produce byte-identical
encodings, while a different dtype, shape, problem or env changes the
bytes (and hence the digest).  The hash is folded incrementally over the
scatter/gather parts, so a megabyte matrix is hashed straight out of its
own buffer — no serialization pass, no copy.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, Optional, Sequence

from ..errors import CodecError
from ..protocol.codec import encoded_parts
from ..protocol.messages import ObjectRef

__all__ = ["solve_digest"]

#: blake2b output size; 20 bytes / 40 hex chars, constant-length so the
#: QueryRequest frame size never depends on input *values*
_DIGEST_BYTES = 20


def _contains_ref(value: Any) -> bool:
    if isinstance(value, ObjectRef):
        return True
    if isinstance(value, (list, tuple)):
        return any(_contains_ref(item) for item in value)
    if isinstance(value, dict):
        return any(_contains_ref(item) for item in value.values())
    return False


def solve_digest(
    problem: str,
    inputs: Sequence[Any],
    env: Optional[Mapping[str, Any]] = None,
) -> Optional[str]:
    """Hex digest keying ``(problem, inputs, env)``, or ``None``.

    Returns ``None`` when the request is not content-addressable: inputs
    containing an :class:`ObjectRef` (the referenced object's content is
    not in hand) or values the codec cannot encode.  Callers must treat
    ``None`` as "do not cache".

    Dict iteration order is part of the encoding, so the env is re-keyed
    in sorted order before hashing — two envs with the same bindings
    always digest equal.
    """
    if _contains_ref(inputs):
        return None
    canonical_env = (
        {key: env[key] for key in sorted(env)} if env else {}
    )
    try:
        parts = encoded_parts((problem, tuple(inputs), canonical_env))
    except CodecError:
        return None
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        h.update(part)
    return h.hexdigest()
