"""Content-addressed request digests.

A solve is memoizable when two requests that would compute the same
answer hash to the same key.  The key covers everything the kernel sees:
the problem name, the *canonicalized* input values, and the bound size
environment.  Canonicalization rides on the wire codec — ``_encode_iov``
already flattens every ndarray with ``ascontiguousarray``, so aliased,
strided and contiguous views of the same values produce byte-identical
encodings, while a different dtype, shape, problem or env changes the
bytes (and hence the digest).  The hash is folded incrementally over the
scatter/gather parts, so a megabyte matrix is hashed straight out of its
own buffer — no serialization pass, no copy.

Reference folding: an input that is a :class:`DataHandle` (or an
:class:`ObjectRef` the caller can resolve to a stored digest) does not
make the request un-addressable.  Its position contributes the *stored
content digest* of the referenced object — a constant-size marker — so a
handle-bearing request digests in O(1) of the referenced payload and
repeat submissions hit the result cache without the value ever being
re-hashed (or even in hand, on the client side).  Reference-folded
digests form their own key space: the same logical request submitted
by-value hashes the raw bytes instead, so the two forms do not collide
and do not alias.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Mapping, Optional, Sequence

from ..errors import CodecError
from ..protocol.codec import encoded_parts
from ..protocol.messages import DataHandle, ObjectRef

__all__ = ["solve_digest"]

#: blake2b output size; 20 bytes / 40 hex chars, constant-length so the
#: QueryRequest frame size never depends on input *values*
_DIGEST_BYTES = 20

#: marker tag for a folded reference; chosen to be un-constructable from
#: ordinary payloads only by deliberate effort (a client passing the
#: literal tuple ``("\x00ref", <40 hex>)`` as an argument would collide)
_REF_MARK = "\x00ref"


class _Unresolvable(Exception):
    """Internal: a reference had no digest in hand and no resolver."""


def _fold(value: Any, resolve: Optional[Callable[[str], Optional[str]]]):
    """``value`` with every reference replaced by its digest marker."""
    if isinstance(value, DataHandle):
        digest = value.digest
        if not digest and resolve is not None:
            digest = resolve(value.key)
        if not digest:
            raise _Unresolvable
        return (_REF_MARK, digest)
    if isinstance(value, ObjectRef):
        digest = resolve(value.key) if resolve is not None else None
        if not digest:
            raise _Unresolvable
        return (_REF_MARK, digest)
    if isinstance(value, (list, tuple)):
        return tuple(_fold(item, resolve) for item in value)
    if isinstance(value, dict):
        return {key: _fold(item, resolve) for key, item in value.items()}
    return value


def solve_digest(
    problem: str,
    inputs: Sequence[Any],
    env: Optional[Mapping[str, Any]] = None,
    *,
    resolve_ref: Optional[Callable[[str], Optional[str]]] = None,
) -> Optional[str]:
    """Hex digest keying ``(problem, inputs, env)``, or ``None``.

    Inputs containing references digest by *folding*: a
    :class:`DataHandle` contributes the content digest it carries (or
    the one ``resolve_ref`` returns for its key), an :class:`ObjectRef`
    the digest ``resolve_ref`` returns.  Returns ``None`` when the
    request is not content-addressable: a reference whose digest is not
    in hand (no resolver, or the resolver answers ``None`` — e.g. the
    key is not resident), or values the codec cannot encode.  Callers
    must treat ``None`` as "do not cache".

    Dict iteration order is part of the encoding, so the env is re-keyed
    in sorted order before hashing — two envs with the same bindings
    always digest equal.
    """
    try:
        folded = tuple(_fold(item, resolve_ref) for item in inputs)
    except _Unresolvable:
        return None
    canonical_env = (
        {key: env[key] for key in sorted(env)} if env else {}
    )
    try:
        parts = encoded_parts((problem, folded, canonical_env))
    except CodecError:
        return None
    h = hashlib.blake2b(digest_size=_DIGEST_BYTES)
    for part in parts:
        h.update(part)
    return h.hexdigest()
