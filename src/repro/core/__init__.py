"""The paper's contribution: the NetSolve client-agent-server system.

* :mod:`repro.core.predictor` — the agent's completion-time model,
* :mod:`repro.core.registry` — the agent's server table,
* :mod:`repro.core.scheduler` — server-selection policies (MCT & baselines),
* :mod:`repro.core.workload` — the hysteretic workload-broadcast policy,
* :mod:`repro.core.agent` — the resource broker,
* :mod:`repro.core.server` — the computational server,
* :mod:`repro.core.client` — the client library (blocking & non-blocking),
* :mod:`repro.core.request` — request lifecycle records and timelines,
* :mod:`repro.core.faults` — failure injection for experiments.
"""

from .request import RequestStatus, AttemptRecord, RequestRecord
from .predictor import (
    LinkEstimate,
    NetworkInfo,
    StaticNetworkInfo,
    LearnedNetworkInfo,
    Prediction,
    effective_mflops,
    predict,
    predict_for,
)
from .registry import ServerEntry, ServerTable
from .scheduler import (
    SchedulingPolicy,
    MinimumCompletionTime,
    RandomPolicy,
    RoundRobinPolicy,
    FastestPeakPolicy,
    make_policy,
)
from .workload import WorkloadReporter
from .agent import Agent
from .server import ComputationalServer
from .client import NetSolveClient, RequestHandle
from .faults import FailureInjector

__all__ = [
    "RequestStatus",
    "AttemptRecord",
    "RequestRecord",
    "LinkEstimate",
    "NetworkInfo",
    "StaticNetworkInfo",
    "LearnedNetworkInfo",
    "Prediction",
    "effective_mflops",
    "predict",
    "predict_for",
    "ServerEntry",
    "ServerTable",
    "SchedulingPolicy",
    "MinimumCompletionTime",
    "RandomPolicy",
    "RoundRobinPolicy",
    "FastestPeakPolicy",
    "make_policy",
    "WorkloadReporter",
    "Agent",
    "ComputationalServer",
    "NetSolveClient",
    "RequestHandle",
    "FailureInjector",
]
