"""The agent's server table.

Tracks every registered computational server: which problems it solves,
its peak speed, the freshest workload report, liveness, failure counts,
and *pending-assignment* hints.  A pending hint is the agent's
correction for report staleness: each time the agent hands a server out
as the best candidate it assumes one more request is about to queue
there, until a fresh workload report supersedes the hint or the hint's
own expiry (derived from the predicted lifetime of the request it
models) passes.  Without the hints, a burst of queries between two
reports would all pick the same momentarily-idle server — the classic
herd effect; without the expiry, short jobs finishing between samples
(which the hysteretic policy never reports) would pollute the view
until the forced keep-alive.

Every client query walks this table, so its read paths are indexed
rather than recomputed:

* a **problem index** (``problem -> {server ids}``) is maintained
  incrementally by :meth:`ServerTable.register` (the only operation that
  changes a server's problem set), making :meth:`candidates_for` cost
  O(candidates) and :meth:`known_problems` O(1);
* the **id-sorted views** (:meth:`entries` and the per-problem candidate
  views) are cached and invalidated only when table *membership*
  changes — workload reports, liveness sweeps and failure marks mutate
  entry attributes in place and never reorder or re-key the views, so
  they leave the caches intact;
* pending hints live in a **min-heap** ordered by expiry, so dropping
  expired hints pops only what actually expired instead of rebuilding
  the list;
* an **address index** (``address -> {server ids}``) serves the
  liveness-probe path: a Pong identifies the sender only by transport
  address, and :meth:`revive_address` resolves it without scanning the
  fleet.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import NetSolveError

__all__ = ["ServerEntry", "ServerTable"]


@dataclass
class ServerEntry:
    server_id: str
    address: str
    host: str
    mflops: float
    problems: set[str]
    registered_at: float
    last_report: float
    workload: float = 0.0
    alive: bool = True
    failures: int = 0
    #: executor worker count the server advertised at registration
    slots: int = 1
    #: in-flight executions from the freshest workload report
    inflight: int = 0
    #: min-heap of expiry times of assignments not yet reflected in a
    #: workload report (push via heapq only)
    pending_expiries: list[float] = field(default_factory=list)
    assignments: int = 0
    #: short-lived workload penalty from client Busy reports: the server
    #: is saturated *right now*, so rank it worse without losing it
    penalty_workload: float = 0.0
    penalty_until: float = 0.0
    busy_reports: int = 0

    @property
    def pending(self) -> int:
        return len(self.pending_expiries)

    def current_workload(self, now: float) -> float:
        """Reported workload plus any live busy penalty.

        Returns ``self.workload`` itself (the very same float) when no
        penalty is in force, so unpenalised ranking stays bit-identical
        to ranking on the raw report.
        """
        if self.penalty_workload and now < self.penalty_until:
            return self.workload + self.penalty_workload
        if self.penalty_workload:  # decayed: forget it lazily
            self.penalty_workload = 0.0
            self.penalty_until = 0.0
        return self.workload

    def live_pending(self, now: float) -> int:
        """Pending-assignment count after dropping expired hints."""
        heap = self.pending_expiries
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap)

    def effective_workload(
        self, now: float = 0.0, *, pending_weight: float = 100.0
    ) -> float:
        """Reported workload plus the pending-assignment correction.

        Each live pending request is assumed to add one runnable process
        (``pending_weight`` workload units = 1.0 load average).  A hint
        expires on its own once the request it models should long have
        finished — a fresh workload report would have superseded it, but
        the hysteretic policy suppresses "still idle" reports, so without
        the expiry a short job assigned between samples would pollute the
        agent's view until the forced keep-alive.
        """
        return self.workload + pending_weight * self.live_pending(now)


class ServerTable:
    """Registry of servers, keyed by server id."""

    def __init__(self) -> None:
        self._entries: dict[str, ServerEntry] = {}
        #: incremental problem -> server-id index; ids stay in the index
        #: while suspect/dead (candidates_for filters on ``alive``) and
        #: leave it only when a re-registration drops the problem
        self._by_problem: dict[str, set[str]] = {}
        #: transport address -> server ids (several servers may share an
        #: address behind a forwarding agent); used by probe revival
        self._by_address: dict[str, set[str]] = {}
        #: cached id-sorted views, dropped when membership changes
        self._sorted_entries: list[ServerEntry] | None = None
        self._problem_views: dict[str, tuple[ServerEntry, ...]] = {}

    # ------------------------------------------------------------------
    def _index_add(self, server_id: str, problems: set[str]) -> None:
        for name in problems:
            self._by_problem.setdefault(name, set()).add(server_id)
            self._problem_views.pop(name, None)

    def _index_discard(self, server_id: str, problems: set[str]) -> None:
        for name in problems:
            ids = self._by_problem.get(name)
            if ids is None:
                continue
            ids.discard(server_id)
            if not ids:
                del self._by_problem[name]
            self._problem_views.pop(name, None)

    def register(
        self,
        *,
        server_id: str,
        address: str,
        host: str,
        mflops: float,
        problems: set[str],
        now: float,
        slots: int = 1,
    ) -> ServerEntry:
        """Add or refresh a server (re-registration revives and updates)."""
        if mflops <= 0:
            raise NetSolveError(f"server {server_id!r}: bad mflops {mflops}")
        if not problems:
            raise NetSolveError(f"server {server_id!r} advertises no problems")
        if slots < 1:
            raise NetSolveError(f"server {server_id!r}: bad slots {slots}")
        entry = self._entries.get(server_id)
        if entry is None:
            entry = ServerEntry(
                server_id=server_id,
                address=address,
                host=host,
                mflops=mflops,
                problems=set(problems),
                registered_at=now,
                last_report=now,
                slots=slots,
            )
            self._entries[server_id] = entry
            self._sorted_entries = None
            self._index_add(server_id, entry.problems)
            self._by_address.setdefault(address, set()).add(server_id)
        else:
            old = entry.problems
            new = set(problems)
            self._index_discard(server_id, old - new)
            self._index_add(server_id, new - old)
            if address != entry.address:
                ids = self._by_address.get(entry.address)
                if ids is not None:
                    ids.discard(server_id)
                    if not ids:
                        del self._by_address[entry.address]
                self._by_address.setdefault(address, set()).add(server_id)
            entry.address = address
            entry.host = host
            entry.mflops = mflops
            entry.problems = new
            entry.slots = slots
            entry.inflight = 0
            entry.last_report = now
            entry.alive = True
            entry.pending_expiries.clear()
            # a re-registration is a cold restart: whatever saturation
            # the busy penalty modelled died with the old incarnation
            entry.penalty_workload = 0.0
            entry.penalty_until = 0.0
        return entry

    def get(self, server_id: str) -> ServerEntry:
        try:
            return self._entries[server_id]
        except KeyError:
            raise NetSolveError(f"unknown server {server_id!r}") from None

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ServerEntry]:
        if self._sorted_entries is None:
            self._sorted_entries = [
                self._entries[k] for k in sorted(self._entries)
            ]
        return list(self._sorted_entries)

    def alive_entries(self) -> list[ServerEntry]:
        return [e for e in self.entries() if e.alive]

    # ------------------------------------------------------------------
    def mark_alive(self, server_id: str, now: float) -> None:
        """The one revival path: fresh evidence the server is up.

        Used by both workload reports and probe Pongs, so revival always
        refreshes liveness bookkeeping *and* drops pending-assignment
        hints — a server that went silent long enough to need reviving
        has certainly shed whatever the hints modelled.
        """
        entry = self.get(server_id)
        entry.last_report = now
        entry.alive = True
        entry.pending_expiries.clear()

    def report_workload(
        self, server_id: str, workload: float, now: float, inflight: int = 0
    ) -> None:
        """Fresh truth from the server: update, revive, clear the hint."""
        entry = self.get(server_id)
        entry.workload = max(0.0, float(workload))
        entry.inflight = max(0, int(inflight))
        self.mark_alive(server_id, now)

    def revive_address(self, address: str, now: float) -> list[str]:
        """Revive every suspect server at ``address``; returns their ids.

        Indexed: cost is the number of servers registered at that
        address, not the fleet size.
        """
        revived = [
            server_id
            for server_id in sorted(self._by_address.get(address, ()))
            if not self._entries[server_id].alive
        ]
        for server_id in revived:
            self.mark_alive(server_id, now)
        return revived

    def note_assignment(
        self, server_id: str, now: float = 0.0, *, hold_for: float = 60.0
    ) -> None:
        """Record that a request was just steered at this server.

        ``hold_for`` should be roughly the predicted completion time of
        that request: once it should have finished, the hint expires.
        """
        entry = self.get(server_id)
        heapq.heappush(entry.pending_expiries, now + max(0.0, hold_for))
        entry.assignments += 1

    def mark_failed(self, server_id: str) -> None:
        """A client reported this server failing: suspect it until it
        speaks again (next workload report or re-registration)."""
        if server_id not in self._entries:
            return  # stale report about a server we already dropped
        entry = self._entries[server_id]
        entry.failures += 1
        entry.alive = False

    def penalize(
        self, server_id: str, now: float, *, workload: float, hold_for: float
    ) -> None:
        """A client reported this server Busy: worsen its ranking for
        ``hold_for`` seconds without touching liveness.

        Repeated reports stack (each refused client is more evidence of
        saturation) and extend the expiry; the penalty decays as a whole
        once ``hold_for`` passes with no further reports.  The server
        stays alive and schedulable throughout — overload is a
        re-balancing signal, not a death sentence.
        """
        if server_id not in self._entries:
            return  # stale report about a server we already dropped
        if workload <= 0 or hold_for <= 0:
            return  # penalties disabled: busy reports are telemetry only
        entry = self._entries[server_id]
        entry.busy_reports += 1
        if now >= entry.penalty_until:
            entry.penalty_workload = 0.0  # previous penalty had decayed
        entry.penalty_workload += workload
        entry.penalty_until = now + hold_for

    def sweep_liveness(self, now: float, timeout: float) -> list[str]:
        """Mark servers silent for longer than ``timeout`` as down."""
        died: list[str] = []
        for entry in self._entries.values():
            if entry.alive and now - entry.last_report > timeout:
                entry.alive = False
                died.append(entry.server_id)
        return sorted(died)

    # ------------------------------------------------------------------
    def candidates_for(
        self, problem: str, *, exclude: tuple[str, ...] = ()
    ) -> list[ServerEntry]:
        """Live servers able to solve ``problem``, minus exclusions.

        Served from the problem index: cost is proportional to the
        number of servers advertising ``problem``, not the fleet size.
        """
        if problem not in self._by_problem:
            return []
        view = self._problem_views.get(problem)
        if view is None:
            view = tuple(
                self._entries[k] for k in sorted(self._by_problem[problem])
            )
            self._problem_views[problem] = view
        if exclude:
            banned = set(exclude)
            return [
                e for e in view if e.alive and e.server_id not in banned
            ]
        return [e for e in view if e.alive]

    def known_problems(self) -> set[str]:
        return set(self._by_problem)
