"""The agent's server table.

Tracks every registered computational server: which problems it solves,
its peak speed, the freshest workload report, liveness, failure counts,
and *pending-assignment* hints.  A pending hint is the agent's
correction for report staleness: each time the agent hands a server out
as the best candidate it assumes one more request is about to queue
there, until a fresh workload report supersedes the hint or the hint's
own expiry (derived from the predicted lifetime of the request it
models) passes.  Without the hints, a burst of queries between two
reports would all pick the same momentarily-idle server — the classic
herd effect; without the expiry, short jobs finishing between samples
(which the hysteretic policy never reports) would pollute the view
until the forced keep-alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NetSolveError

__all__ = ["ServerEntry", "ServerTable"]


@dataclass
class ServerEntry:
    server_id: str
    address: str
    host: str
    mflops: float
    problems: set[str]
    registered_at: float
    last_report: float
    workload: float = 0.0
    alive: bool = True
    failures: int = 0
    #: expiry times of assignments not yet reflected in a workload report
    pending_expiries: list[float] = field(default_factory=list)
    assignments: int = 0

    @property
    def pending(self) -> int:
        return len(self.pending_expiries)

    def live_pending(self, now: float) -> int:
        """Pending-assignment count after dropping expired hints."""
        if self.pending_expiries:
            self.pending_expiries = [t for t in self.pending_expiries if t > now]
        return len(self.pending_expiries)

    def effective_workload(
        self, now: float = 0.0, *, pending_weight: float = 100.0
    ) -> float:
        """Reported workload plus the pending-assignment correction.

        Each live pending request is assumed to add one runnable process
        (``pending_weight`` workload units = 1.0 load average).  A hint
        expires on its own once the request it models should long have
        finished — a fresh workload report would have superseded it, but
        the hysteretic policy suppresses "still idle" reports, so without
        the expiry a short job assigned between samples would pollute the
        agent's view until the forced keep-alive.
        """
        if self.pending_expiries:
            self.pending_expiries = [t for t in self.pending_expiries if t > now]
        return self.workload + pending_weight * len(self.pending_expiries)


class ServerTable:
    """Registry of servers, keyed by server id."""

    def __init__(self) -> None:
        self._entries: dict[str, ServerEntry] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        *,
        server_id: str,
        address: str,
        host: str,
        mflops: float,
        problems: set[str],
        now: float,
    ) -> ServerEntry:
        """Add or refresh a server (re-registration revives and updates)."""
        if mflops <= 0:
            raise NetSolveError(f"server {server_id!r}: bad mflops {mflops}")
        if not problems:
            raise NetSolveError(f"server {server_id!r} advertises no problems")
        entry = self._entries.get(server_id)
        if entry is None:
            entry = ServerEntry(
                server_id=server_id,
                address=address,
                host=host,
                mflops=mflops,
                problems=set(problems),
                registered_at=now,
                last_report=now,
            )
            self._entries[server_id] = entry
        else:
            entry.address = address
            entry.host = host
            entry.mflops = mflops
            entry.problems = set(problems)
            entry.last_report = now
            entry.alive = True
            entry.pending_expiries.clear()
        return entry

    def get(self, server_id: str) -> ServerEntry:
        try:
            return self._entries[server_id]
        except KeyError:
            raise NetSolveError(f"unknown server {server_id!r}") from None

    def __contains__(self, server_id: str) -> bool:
        return server_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[ServerEntry]:
        return [self._entries[k] for k in sorted(self._entries)]

    def alive_entries(self) -> list[ServerEntry]:
        return [e for e in self.entries() if e.alive]

    # ------------------------------------------------------------------
    def report_workload(self, server_id: str, workload: float, now: float) -> None:
        """Fresh truth from the server: update, revive, clear the hint."""
        entry = self.get(server_id)
        entry.workload = max(0.0, float(workload))
        entry.last_report = now
        entry.alive = True
        entry.pending_expiries.clear()

    def note_assignment(
        self, server_id: str, now: float = 0.0, *, hold_for: float = 60.0
    ) -> None:
        """Record that a request was just steered at this server.

        ``hold_for`` should be roughly the predicted completion time of
        that request: once it should have finished, the hint expires.
        """
        entry = self.get(server_id)
        entry.pending_expiries.append(now + max(0.0, hold_for))
        entry.assignments += 1

    def mark_failed(self, server_id: str) -> None:
        """A client reported this server failing: suspect it until it
        speaks again (next workload report or re-registration)."""
        if server_id not in self._entries:
            return  # stale report about a server we already dropped
        entry = self._entries[server_id]
        entry.failures += 1
        entry.alive = False

    def sweep_liveness(self, now: float, timeout: float) -> list[str]:
        """Mark servers silent for longer than ``timeout`` as down."""
        died: list[str] = []
        for entry in self._entries.values():
            if entry.alive and now - entry.last_report > timeout:
                entry.alive = False
                died.append(entry.server_id)
        return sorted(died)

    # ------------------------------------------------------------------
    def candidates_for(
        self, problem: str, *, exclude: tuple[str, ...] = ()
    ) -> list[ServerEntry]:
        """Live servers able to solve ``problem``, minus exclusions."""
        banned = set(exclude)
        return [
            e
            for e in self.entries()
            if e.alive and problem in e.problems and e.server_id not in banned
        ]

    def known_problems(self) -> set[str]:
        out: set[str] = set()
        for e in self._entries.values():
            out |= e.problems
        return out
