"""Agent-fleet primitives: consistent-hash sharding + sync fingerprints.

A peered agent fleet shards *query ownership* by problem name: every
agent hashes the same member list onto the same ring, so all of them
agree — without any coordination — on which agent owns which problem.
A query landing on a non-owner hops exactly once to the owner (guarded
by ``QueryRequest.forwarded``, like the mirror messages); the registry
itself stays fully replicated via mirroring + anti-entropy, so any
agent *can* answer any query when the owner is unreachable.

The ring uses virtual nodes (many hash points per member) so ownership
spreads evenly and a member joining or leaving only moves the keys of
its own points.  blake2b keeps placement deterministic across processes
— ``hash()`` is salted per interpreter and would shard differently on
every daemon.

:func:`entry_fingerprint` is the anti-entropy companion: a stable
fingerprint of one server's registration shape.  Two agents whose
fingerprints for a server agree need not exchange its state; a mismatch
(or a missing entry) triggers a ``SyncPull``.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Iterable

from ..errors import NetSolveError

__all__ = ["HashRing", "entry_fingerprint", "RECORD_FIELDS"]

#: virtual nodes per member: enough to spread a handful of agents
#: evenly over the keyspace while keeping ring construction trivial
#: (at 64 points a 3-member ring still showed ~47% ownership skew over
#: a 30-problem catalogue; 128 brings the worst member under ~37%)
POINTS_PER_MEMBER = 128

#: the registration-shape fields a sync record carries (and the
#: fingerprint covers) — everything :meth:`ServerTable.register` needs,
#: plus the PDL so specs replicate with the entry
RECORD_FIELDS = (
    "server_id",
    "address",
    "endpoint",
    "host",
    "mflops",
    "slots",
    "problems_pdl",
)


def _point(data: str) -> int:
    return int.from_bytes(
        blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over a set of member names."""

    __slots__ = ("members", "_points", "_owners")

    def __init__(
        self,
        members: Iterable[str],
        *,
        points_per_member: int = POINTS_PER_MEMBER,
    ) -> None:
        self.members = tuple(sorted(set(members)))
        if not self.members:
            raise NetSolveError("hash ring needs at least one member")
        if points_per_member < 1:
            raise NetSolveError("points_per_member must be >= 1")
        placed = sorted(
            (_point(f"{member}#{v}"), member)
            for member in self.members
            for v in range(points_per_member)
        )
        self._points = [p for p, _ in placed]
        self._owners = [m for _, m in placed]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (first point clockwise of its hash)."""
        i = bisect.bisect_right(self._points, _point(key))
        if i == len(self._points):
            i = 0
        return self._owners[i]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys-per-member histogram (diagnostics / tests)."""
        counts = dict.fromkeys(self.members, 0)
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


def entry_fingerprint(record: dict) -> str:
    """Stable fingerprint of one server's registration shape.

    Covers exactly :data:`RECORD_FIELDS` — liveness and workload are
    deliberately excluded (they churn constantly and heal through the
    mirrored report stream; fingerprinting them would make every digest
    round pull every server).
    """
    h = blake2b(digest_size=8)
    for key in RECORD_FIELDS:
        h.update(repr(record.get(key)).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()
