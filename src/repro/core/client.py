"""The NetSolve client library.

Mirrors the original calling model: a blocking call (``netsl``) and a
non-blocking submit/probe/wait triple (``netslnb``/``netslpr``/
``netslwt``), both built on one asynchronous engine:

1. fetch & cache the problem description from the agent (PDL over the
   wire), validating arguments locally before anything large moves;
2. ask the agent for a ranked candidate list (sizes only — never data);
3. ship inputs to the best server; on error, timeout or crash, report
   the failure to the agent and fall through to the next candidate,
   re-querying the agent (excluding known-bad servers) when the list
   runs dry — the paper's transparent fault-tolerance loop;
4. resolve the request's promise with the outputs.

Every request keeps a full :class:`~repro.core.request.RequestRecord`
timeline, which is where the breakdown/fault experiments read from.
With a :class:`~repro.trace.instruments.MetricsRegistry` and/or
:class:`~repro.trace.spans.SpanLog` attached, the same lifecycle also
feeds live counters/histograms and per-request span timelines; without
them every hook is a single ``is not None`` check.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Optional, Sequence

from ..config import ClientConfig
from ..errors import (
    BadArgumentsError,
    MissingObjectError,
    NetSolveError,
    ProblemNotFoundError,
    RequestFailed,
)
from ..problems.pdl import parse_pdl
from ..problems.spec import ProblemSpec, validate_inputs
from ..protocol.messages import (
    Busy,
    Candidate,
    DagNodeDone,
    DagReply,
    DataHandle,
    DescribeProblem,
    FailureReport,
    FetchObject,
    FetchResult,
    ListProblems,
    ObjectPayload,
    ProblemDescription,
    ProblemList,
    QueryReply,
    QueryRequest,
    DeleteObject,
    ObjectRef,
    ResultStatus,
    SolveReply,
    SolveRequest,
    StoreAck,
    StoreObject,
    SubmitDag,
    TransferReport,
)
from ..protocol.transport import Promise
from ..runtime import DeadlineTable, DispatchComponent, RetryChain, handles
from ..store import solve_digest
from ..trace.events import EventLog
from ..trace.instruments import (
    ERROR_SECONDS_BUCKETS,
    MetricsRegistry,
)
from ..trace.spans import SpanLog
from .qos import QOS_DEFAULT, normalize_qos
from .request import AttemptRecord, RequestRecord, RequestStatus

__all__ = ["NetSolveClient", "RequestHandle"]


class _ClientMetrics:
    """Pre-resolved instrument bundle (one attribute load per hook)."""

    __slots__ = (
        "submits", "pinned_submits", "describe_sends", "describe_retries",
        "queries", "query_retries", "query_backoffs", "attempts",
        "attempt_ok", "attempt_errors", "attempt_timeouts", "failovers",
        "agent_failovers", "busy_failovers", "requests_done", "requests_failed",
        "cached_replies", "store_ops", "store_timeouts", "fetches",
        "object_fetches", "dag_submits", "payload_resubmits",
        "active", "request_seconds", "negotiation_seconds",
        "attempt_seconds", "prediction_error_seconds",
    )

    def __init__(self, m: MetricsRegistry):
        c, g, h = m.counter, m.gauge, m.histogram
        self.submits = c("client.submits", "brokered requests accepted")
        self.pinned_submits = c("client.pinned_submits",
                                "pinned (sequenced) requests accepted")
        self.describe_sends = c("client.describe_sends",
                                "DescribeProblem messages sent")
        self.describe_retries = c("client.describe_retries",
                                  "DescribeProblem re-sends on silence")
        self.queries = c("client.queries", "QueryRequest messages sent")
        self.query_retries = c("client.query_retries",
                               "agent query re-sends on silence")
        self.query_backoffs = c("client.query_backoffs",
                                "empty-pool backoffs before re-query")
        self.attempts = c("client.attempts", "SolveRequests sent to servers")
        self.attempt_ok = c("client.attempt_ok", "attempts answered ok")
        self.attempt_errors = c("client.attempt_errors",
                                "attempts answered with an error")
        self.attempt_timeouts = c("client.attempt_timeouts",
                                  "attempts abandoned on timeout")
        self.failovers = c("client.failovers",
                           "failures reported to the agent before retry")
        self.agent_failovers = c("client.agent_failovers",
                                 "agent silences answered by rotating to "
                                 "the next agent in the list")
        self.busy_failovers = c("client.busy_failovers",
                                "attempts refused with Busy and retried")
        self.requests_done = c("client.requests_done", "requests resolved")
        self.requests_failed = c("client.requests_failed",
                                 "requests rejected")
        self.cached_replies = c("client.cached_replies",
                                "requests answered from a result cache")
        self.store_ops = c("client.store_ops",
                           "store/delete operations started")
        self.store_timeouts = c("client.store_timeouts",
                                "store/delete batches timed out")
        self.fetches = c("client.fetches", "FetchResult lookups started")
        self.object_fetches = c("client.object_fetches",
                                "FetchObject pulls started")
        self.dag_submits = c("client.dag_submits", "SubmitDag graphs sent")
        self.payload_resubmits = c(
            "client.payload_resubmits",
            "missing-object errors answered by re-sending with payloads",
        )
        self.active = g("client.active_requests", "requests in flight")
        self.request_seconds = h("client.request_seconds",
                                 help="submit -> settle wall-clock")
        self.negotiation_seconds = h("client.negotiation_seconds",
                                     help="query -> candidate list")
        self.attempt_seconds = h("client.attempt_seconds",
                                 help="SolveRequest -> SolveReply")
        self.prediction_error_seconds = h(
            "client.prediction_error_seconds", ERROR_SECONDS_BUCKETS,
            help="attempt elapsed minus agent prediction (signed)",
        )


class RequestHandle:
    """Public handle for one submitted request."""

    def __init__(self, record: RequestRecord, promise: Promise):
        self.record = record
        self.promise = promise

    @property
    def request_id(self) -> int:
        return self.record.request_id

    @property
    def status(self) -> RequestStatus:
        return self.record.status

    @property
    def done(self) -> bool:
        return self.promise.done

    def result(self) -> tuple:
        """Outputs tuple; raises the request's error if it failed."""
        return self.promise.result()


class _Active:
    """Internal per-request state."""

    __slots__ = (
        "handle",
        "record",
        "problem",
        "raw_args",
        "inputs",
        "env",
        "digest",
        "candidates",
        "tried",
        "current",
        "attempt",
        "pinned",
        "keep_result",
        "payloads",
        "resubmitted",
        "query_silences",
        "span",
        "qos",
    )

    def __init__(self, handle: RequestHandle, problem: str, raw_args: list):
        self.handle = handle
        self.record = handle.record
        self.problem = problem
        self.raw_args = raw_args
        self.inputs: Optional[tuple] = None
        self.env: dict[str, int] = {}
        #: content digest carried in agent queries (cfg.cache_digest)
        self.digest = ""
        self.candidates: deque[Candidate] = deque()
        self.tried: list[str] = []
        self.current: Optional[Candidate] = None
        self.attempt: Optional[AttemptRecord] = None
        #: pinned requests bypass the agent and never fail over
        self.pinned = False
        #: ask the server to leave outputs resident (reply carries handles)
        self.keep_result = False
        #: key -> value fallback for handle inputs: a missing-object
        #: error re-submits once with these inlined instead of failing
        self.payloads: dict[str, Any] = {}
        #: the one payload re-submission has been spent
        self.resubmitted = False
        #: unanswered agent queries so far (control-message retry budget)
        self.query_silences = 0
        #: per-request span (None when no SpanLog is attached)
        self.span = None
        #: QoS class carried on the query and the solve ("" = batch)
        self.qos = ""


class _DagState:
    """Client-side state of one in-flight request DAG."""

    __slots__ = ("promise", "on_node", "interval", "address")

    def __init__(self, promise: Promise, on_node, interval: float, address: str):
        self.promise = promise
        #: optional per-node progress callback (receives each DagNodeDone)
        self.on_node = on_node
        #: liveness window, re-armed on every node completion
        self.interval = interval
        self.address = address


class NetSolveClient(DispatchComponent):
    """One client application's NetSolve endpoint."""

    def __init__(
        self,
        *,
        client_id: str,
        agent_address: str | Sequence[str],
        cfg: ClientConfig = ClientConfig(),
        trace: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanLog] = None,
    ):
        self.client_id = client_id
        #: ordered agent rotation (head = current); a single string is
        #: accepted everywhere for the common one-agent deployment
        self.agent_address = agent_address
        #: times an agent silence was answered by rotating the list
        self.agent_failovers = 0
        self.cfg = cfg
        self.trace = trace
        self._metrics = _ClientMetrics(metrics) if metrics is not None else None
        self.spans = spans
        self._rids = itertools.count(1)
        self._specs: dict[str, ProblemSpec] = {}
        self._describing: dict[str, list[_Active]] = {}
        self._spec_waiters: dict[str, list[Promise]] = {}
        self._listing: dict[str, list[Promise]] = {}
        self._storing: dict[tuple[str, str], list[tuple[Promise, bool]]] = {}
        self._fetching: dict[tuple[str, int], list[Promise]] = {}
        #: (server address, key) -> promises awaiting an ObjectPayload
        self._object_fetches: dict[tuple[str, str], list[Promise]] = {}
        #: dag_id -> in-flight DAG state
        self._dags: dict[str, _DagState] = {}
        self._dag_ids = itertools.count(1)
        self._queries: dict[int, Promise] = {}
        self._active: dict[int, _Active] = {}
        #: every timeout this client arms, keyed and generation-safe;
        #: tuple keys name control-plane batches, bare request-id ints
        #: name the per-request timer (ints and tuples cannot collide)
        self._deadlines = DeadlineTable(self)
        #: every record ever created, terminal or not (experiment data)
        self.records: list[RequestRecord] = []

    # ------------------------------------------------------------------
    # agent rotation
    # ------------------------------------------------------------------
    @property
    def agent_address(self) -> str:
        """The agent all control traffic currently goes to (rotation head)."""
        return self._agents[0]

    @agent_address.setter
    def agent_address(self, value: str | Sequence[str]) -> None:
        agents = [value] if isinstance(value, str) else list(value)
        if not agents:
            raise NetSolveError("client needs at least one agent address")
        self._agents = agents

    @property
    def agent_addresses(self) -> tuple[str, ...]:
        """The full rotation, current agent first."""
        return tuple(self._agents)

    def _rotate_agent(self, context: str) -> None:
        """A silence timed out: move the head agent to the back.

        With one agent this is a no-op and the timeout paths behave
        exactly as before the fleet existed; with several, every retry
        lands on a different agent, so one dead broker costs at most one
        timeout per in-flight conversation.
        """
        if len(self._agents) <= 1:
            return
        failed = self._agents.pop(0)
        self._agents.append(failed)
        self.agent_failovers += 1
        if self._metrics is not None:
            self._metrics.agent_failovers.inc()
        self._trace(
            "agent_failover",
            context=context,
            from_agent=failed,
            to_agent=self._agents[0],
        )

    def _agent_attempts(self) -> int:
        """Retry budget for one-shot catalogue messages (list/candidates).

        A single-agent deployment keeps the original one-timeout
        semantics; a fleet spends up to ``agent_retries`` attempts so
        the rotation actually gets to try the other agents.
        """
        return max(1, min(self.cfg.agent_retries, len(self._agents)))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: str,
        args: Sequence[Any],
        *,
        keep_result: bool = False,
        payloads: Optional[dict] = None,
        qos: str = "",
    ) -> RequestHandle:
        """Non-blocking submit; returns a handle with a promise.

        ``args`` may contain :class:`DataHandle` references to
        server-resident operands — those ship as constant-size stubs and
        the agent's ranking charges transfer only for what a candidate
        does not already hold.  ``keep_result=True`` asks the winning
        server to leave the outputs resident and answer with handles
        (pull bytes later with :meth:`fetch`).  ``payloads`` maps handle
        keys to their values: if the server answers that a referenced
        key is no longer resident, the request re-submits once with
        those operands inlined instead of failing.  ``qos`` names the
        request class ("interactive" / "batch" / "background"; "" takes
        ``cfg.default_qos``) — servers order admission and shed per
        class (see :mod:`repro.core.qos`).
        """
        qos = normalize_qos(qos or self.cfg.default_qos)
        if qos == QOS_DEFAULT:
            qos = ""  # the default class rides the wire as "" (cheaper)
        rid = next(self._rids)
        record = RequestRecord(
            request_id=rid,
            problem=problem,
            sizes={},
            t_submit=self.node.now(),
        )
        handle = RequestHandle(record, self.node.promise())
        self.records.append(record)
        req = _Active(handle, problem, list(args))
        req.keep_result = keep_result
        req.payloads = dict(payloads or {})
        req.qos = qos
        self._active[rid] = req
        self._trace("submit", request_id=rid, problem=problem)
        if self._metrics is not None:
            self._metrics.submits.inc()
            self._metrics.active.inc()
        if self.spans is not None:
            req.span = self.spans.begin(
                rid, problem, self.client_id, record.t_submit
            )
        spec = self._specs.get(problem)
        if spec is not None:
            self._validate_and_query(req, spec)
        else:
            if req.span is not None:
                req.span.begin_phase("describe", record.t_submit)
            # exactly one DescribeProblem retry chain per problem: a
            # `describe()` call may already have inserted the (empty)
            # waiter-list marker and sent the message — appending to an
            # existing list must never re-send
            waiting = self._describing.get(problem)
            if waiting is None:
                self._describing[problem] = [req]
                self._start_describe(problem)
            else:
                waiting.append(req)
        return handle

    def known_problems(self) -> list[str]:
        return sorted(self._specs)

    def install_spec(self, spec: ProblemSpec) -> None:
        """Pre-seed the description cache (skips the DescribeProblem RTT)."""
        self._specs[spec.name] = spec

    # ------------------------------------------------------------------
    # request sequencing: object store + pinned submits
    # ------------------------------------------------------------------
    def store(self, server_address: str, key: str, value: Any) -> Promise:
        """Cache ``value`` under ``key`` on a specific server.

        The promise resolves with the stored byte count, or rejects if
        the server refuses (cache full) or never answers.
        """
        return self._store_op(
            server_address, key, StoreObject(key=key, value=value),
            want_handle=False,
        )

    def store_handle(
        self, server_address: str, key: str, value: Any,
    ) -> Promise:
        """Like :meth:`store`, but resolve with the :class:`DataHandle`
        the ack carries — digest, size and shape metadata included — so
        the stored operand can be referenced or fetched with no further
        round trip."""
        return self._store_op(
            server_address, key, StoreObject(key=key, value=value),
            want_handle=True,
        )

    def delete_stored(self, server_address: str, key: str) -> Promise:
        """Drop a cached object; resolves True if it existed."""
        return self._store_op(
            server_address, key, DeleteObject(key=key), want_handle=False,
        )

    def _store_op(
        self, server_address: str, key: str, msg: Any, *, want_handle: bool,
    ) -> Promise:
        promise = self.node.promise()
        waiting = self._storing.setdefault((server_address, key), [])
        waiting.append((promise, want_handle))
        if len(waiting) == 1:
            if self._metrics is not None:
                self._metrics.store_ops.inc()
            self.node.send(server_address, msg)
            self._arm_store_timeout(server_address, key)
        return promise

    def _arm_store_timeout(self, server_address: str, key: str) -> None:
        # an ack cancels the deadline as it pops the batch; a later
        # operation on the same key arms a fresh generation — the
        # deadline table makes a stale fire against a successor batch
        # structurally impossible
        def fire() -> None:
            batch = self._storing.pop((server_address, key), [])
            if self._metrics is not None:
                self._metrics.store_timeouts.inc()
            for p, _ in batch:
                if not p.done:
                    p.reject(
                        RequestFailed(
                            0, f"server {server_address!r} did not ack "
                            f"object {key!r}"
                        )
                    )

        self._deadlines.arm(
            ("store", server_address, key), self.cfg.server_timeout, fire
        )

    def fetch(
        self, handle: "DataHandle | ObjectRef | str", *, address: str = ""
    ) -> Promise:
        """Pull a server-resident object's bytes on demand.

        The read half of the reference path: a ``keep_result`` solve (or
        a DAG with keep nodes) answers with :class:`DataHandle` stubs;
        this turns one back into the value.  ``address`` overrides the
        handle's home (required when ``handle`` is a bare key or an
        :class:`ObjectRef`, which carry none).  The promise resolves
        with the object's value; it rejects with
        :class:`MissingObjectError` when the key is no longer resident
        (TTL lapse, eviction, server restarted the hard way) and
        :class:`RequestFailed` when the server never answers.
        """
        if isinstance(handle, (DataHandle, ObjectRef)):
            key = handle.key
        else:
            key = str(handle)
        target = address or (
            handle.address if isinstance(handle, DataHandle) else ""
        )
        promise = self.node.promise()
        if not target:
            promise.reject(
                NetSolveError(
                    f"fetch of {key!r} needs a server address "
                    f"(the reference carries none)"
                )
            )
            return promise
        waiting = self._object_fetches.setdefault((target, key), [])
        waiting.append(promise)
        if len(waiting) == 1:
            if self._metrics is not None:
                self._metrics.object_fetches.inc()

            def send_fetch(attempt: int) -> None:
                self._trace("object_fetch_sent", key=key, server=target)
                self.node.send(
                    target,
                    FetchObject(key=key, reply_to=self.node.address),
                )

            def exhausted() -> None:
                batch = self._object_fetches.pop((target, key), [])
                for p in batch:
                    if not p.done:
                        p.reject(
                            RequestFailed(
                                0,
                                f"server {target!r} did not answer "
                                f"FetchObject for {key!r}",
                            )
                        )

            RetryChain(
                self._deadlines,
                ("objfetch", target, key),
                interval=self.cfg.server_timeout,
                attempts=self.cfg.agent_retries,
                send=send_fetch,
                on_exhausted=exhausted,
            ).start()
        return promise

    @handles(ObjectPayload)
    def _on_object_payload(self, src: str, msg: ObjectPayload) -> None:
        self._deadlines.cancel(("objfetch", src, msg.key))
        for promise in self._object_fetches.pop((src, msg.key), []):
            if promise.done:
                continue
            if msg.ok:
                promise.resolve(msg.value)
            elif msg.error_kind == "missing_object":
                promise.reject(MissingObjectError(msg.key))
            else:
                promise.reject(
                    RequestFailed(0, msg.detail or "object fetch refused")
                )

    # ------------------------------------------------------------------
    # request DAGs
    # ------------------------------------------------------------------
    def submit_dag(
        self,
        nodes: Sequence[dict],
        *,
        address: str = "",
        dag_id: str = "",
        timeout: Optional[float] = None,
        on_node=None,
    ) -> Promise:
        """Submit a dependency graph of solves in one message.

        ``nodes`` is a sequence of dicts — ``{"id", "problem",
        "inputs", "keep", "emit"}`` — where inputs may be values,
        :class:`DataHandle` stubs, or :class:`NodeOutput` references to
        a predecessor's output (see :mod:`repro.dag` for a builder that
        validates the graph before anything hits the wire).  The server
        resolves node inputs from its resident results and executes in
        dependency order through its normal admission machinery.

        Routing: ``address`` wins; otherwise the graph is sent to the
        home of the first :class:`DataHandle` found in a node's inputs
        (an iterative workload's DAG belongs where its data lives).
        The promise resolves with the outputs tuple of the graph's
        ``emit`` nodes (terminal nodes when none is marked); it rejects
        with :class:`RequestFailed` naming the failed node, after
        streaming each :class:`DagNodeDone` to ``on_node``.  ``timeout``
        bounds the silence *between* node completions, not the whole
        graph (default: ``cfg.server_timeout``).
        """
        promise = self.node.promise()
        target = address
        if not target:
            for node in nodes:
                for value in node.get("inputs", ()):
                    if isinstance(value, DataHandle) and value.address:
                        target = value.address
                        break
                if target:
                    break
        if not target:
            promise.reject(
                NetSolveError(
                    "submit_dag needs a server address (none given, and "
                    "no input handle carries one)"
                )
            )
            return promise
        dag_id = dag_id or f"{self.client_id}/dag{next(self._dag_ids)}"
        if dag_id in self._dags:
            promise.reject(NetSolveError(f"dag id {dag_id!r} already in flight"))
            return promise
        interval = timeout if timeout is not None else self.cfg.server_timeout
        self._dags[dag_id] = _DagState(promise, on_node, interval, target)
        self._trace("dag_submitted", dag_id=dag_id, server=target,
                    nodes=len(nodes))
        if self._metrics is not None:
            self._metrics.dag_submits.inc()
        self.node.send(
            target,
            SubmitDag(
                dag_id=dag_id,
                nodes=tuple(dict(node) for node in nodes),
                reply_to=self.node.address,
            ),
        )
        self._arm_dag_timeout(dag_id)
        return promise

    def _arm_dag_timeout(self, dag_id: str) -> None:
        def fire() -> None:
            state = self._dags.pop(dag_id, None)
            if state is None or state.promise.done:
                return
            self._trace("dag_timeout", dag_id=dag_id, server=state.address)
            state.promise.reject(
                RequestFailed(
                    0, f"server {state.address!r} went silent on dag "
                    f"{dag_id!r}"
                )
            )

        state = self._dags[dag_id]
        self._deadlines.arm(("dag", dag_id), state.interval, fire)

    @handles(DagNodeDone)
    def _on_dag_node_done(self, src: str, msg: DagNodeDone) -> None:
        state = self._dags.get(msg.dag_id)
        if state is None:
            return  # late progress for a dag we already gave up on
        # progress resets the liveness window: a deep graph is allowed
        # interval seconds per node, not per graph
        self._arm_dag_timeout(msg.dag_id)
        self._trace(
            "dag_node_done", dag_id=msg.dag_id, node=msg.node, ok=msg.ok,
            remaining=msg.remaining,
        )
        if state.on_node is not None:
            state.on_node(msg)

    @handles(DagReply)
    def _on_dag_reply(self, src: str, msg: DagReply) -> None:
        state = self._dags.pop(msg.dag_id, None)
        if state is None:
            return
        self._deadlines.cancel(("dag", msg.dag_id))
        if state.promise.done:
            return
        if msg.ok:
            self._trace("dag_done", dag_id=msg.dag_id)
            state.promise.resolve(tuple(msg.outputs))
        else:
            self._trace(
                "dag_failed", dag_id=msg.dag_id,
                failed_node=msg.failed_node, detail=msg.detail,
            )
            error = RequestFailed(
                0,
                f"dag {msg.dag_id!r} failed"
                + (f" at node {msg.failed_node!r}" if msg.failed_node else "")
                + f": {msg.detail}",
            )
            # typed context for callers that recover (re-store + retry)
            error.error_kind = msg.error_kind
            error.missing = tuple(msg.missing)
            error.failed_node = msg.failed_node
            state.promise.reject(error)

    def fetch_result(
        self, server_address: str, request_id: int, *, client: str = ""
    ) -> Promise:
        """Recover a finished result from a server's persistent job store.

        The crash-recovery half of the non-blocking API: a client that
        submitted work, died, and reconnected asks the server for the
        outcome it never received.  ``client`` names the original
        requester's address when this endpoint is a different node (the
        store is keyed by who the reply was owed to); empty means "me".

        The promise resolves with the :class:`ResultStatus` message —
        ``status`` is ``"done"`` (outputs present), ``"failed"`` (the
        compute errored; ``detail`` says why), ``"unknown"`` (no such
        row), or ``"unsupported"`` (server runs without a store) — and
        rejects only when the server never answers.
        """
        promise = self.node.promise()
        waiting = self._fetching.setdefault((server_address, request_id), [])
        waiting.append(promise)
        if len(waiting) == 1:
            if self._metrics is not None:
                self._metrics.fetches.inc()

            def send_fetch(attempt: int) -> None:
                self._trace(
                    "fetch_sent", request_id=request_id, server=server_address
                )
                self.node.send(
                    server_address,
                    FetchResult(request_id=request_id, client=client),
                )

            def exhausted() -> None:
                batch = self._fetching.pop((server_address, request_id), [])
                for p in batch:
                    if not p.done:
                        p.reject(
                            RequestFailed(
                                request_id,
                                f"server {server_address!r} did not answer "
                                f"FetchResult",
                            )
                        )

            # server-directed: there is no agent list to rotate through,
            # but the wire has no retransmission either, so a dropped
            # FetchResult is re-sent instead of failing on one silence
            RetryChain(
                self._deadlines,
                ("fetch", server_address, request_id),
                interval=self.cfg.server_timeout,
                attempts=self.cfg.agent_retries,
                send=send_fetch,
                on_exhausted=exhausted,
            ).start()
        return promise

    @handles(ResultStatus)
    def _on_result_status(self, src: str, msg: ResultStatus) -> None:
        self._deadlines.cancel(("fetch", src, msg.request_id))
        for promise in self._fetching.pop((src, msg.request_id), []):
            if not promise.done:
                promise.resolve(msg)

    @handles(StoreAck)
    def _on_store_ack(self, src: str, msg: StoreAck) -> None:
        self._deadlines.cancel(("store", src, msg.key))
        for promise, want_handle in self._storing.pop((src, msg.key), []):
            if promise.done:
                continue
            if msg.ok:
                promise.resolve(msg.handle if want_handle else msg.nbytes)
            else:
                promise.reject(RequestFailed(0, msg.detail or "store refused"))

    def submit_pinned(
        self, problem: str, args: Sequence[Any], server_address: str,
        *, server_id: str = "", keep_result: bool = False,
        payloads: Optional[dict] = None,
    ) -> RequestHandle:
        """Submit directly to one server, bypassing the agent.

        This is the execution half of request sequencing: arguments may
        contain :class:`ObjectRef` placeholders (or :class:`DataHandle`
        stubs) for operands previously :meth:`store`\\ d there.  No
        fail-over — a pinned request lives and dies with its server (the
        sequence's data is there).  ``keep_result`` and ``payloads``
        behave as in :meth:`submit`: the one recovery a pinned request
        does get is re-sending *to the same server* with ``payloads``
        inlined when it answers that a referenced key is gone.
        """
        rid = next(self._rids)
        record = RequestRecord(
            request_id=rid, problem=problem, sizes={},
            t_submit=self.node.now(),
        )
        handle = RequestHandle(record, self.node.promise())
        self.records.append(record)
        req = _Active(handle, problem, list(args))
        req.pinned = True
        req.keep_result = keep_result
        req.payloads = dict(payloads or {})
        self._active[rid] = req
        self._trace(
            "submit_pinned", request_id=rid, problem=problem,
            server=server_address,
        )
        if self._metrics is not None:
            self._metrics.pinned_submits.inc()
            self._metrics.active.inc()
        if self.spans is not None:
            req.span = self.spans.begin(
                rid, problem, self.client_id, record.t_submit
            )
        spec = self._specs.get(problem)
        refs = any(isinstance(a, (ObjectRef, DataHandle)) for a in args)
        if spec is not None and not refs:
            try:
                coerced, env = validate_inputs(spec, list(args))
            except BadArgumentsError as exc:
                self._finish(req, exc)
                return handle
            req.inputs = tuple(coerced)
            req.env = env
            record.sizes = dict(env)
        else:
            # refs resolve server-side; validation happens there
            req.inputs = tuple(args)
        req.candidates = deque(
            [Candidate(
                server_id=server_id or server_address,
                address=server_address,
                host="",
                predicted_seconds=0.0,
            )]
        )
        self._try_next(req)
        return handle

    def query_candidates(
        self, problem: str, sizes: dict, *, exclude: tuple = ()
    ) -> Promise:
        """Ask the agent for its ranked candidate list without submitting.

        Resolves with ``list[Candidate]`` (possibly after the agent notes
        an assignment to the head — exactly as a real query would);
        rejects with :class:`RequestFailed` on unknown problems, empty
        pools, or agent silence.  Used by sequencing to pick a pin.
        """
        promise = self.node.promise()
        # negative tags cannot collide with request ids (always >= 1)
        tag = -next(self._rids)
        self._queries[tag] = promise

        def exhausted() -> None:
            pending = self._queries.pop(tag, None)
            if pending is not None and not pending.done:
                pending.reject(RequestFailed(0, "agent did not answer query"))

        RetryChain(
            self._deadlines,
            ("qtag", tag),
            interval=self.cfg.agent_timeout,
            attempts=self._agent_attempts(),
            send=lambda attempt: self.node.send(
                self.agent_address,
                QueryRequest(
                    problem=problem,
                    sizes={k: int(v) for k, v in sizes.items()},
                    client_host=self.node.host_name,
                    exclude=tuple(exclude),
                    tag=tag,
                ),
            ),
            on_retry=lambda attempt: self._rotate_agent("query_candidates"),
            on_exhausted=exhausted,
        ).start()
        return promise

    def _on_candidate_query_reply(self, msg: QueryReply) -> bool:
        promise = self._queries.pop(msg.tag, None)
        if promise is None:
            return False
        self._deadlines.cancel(("qtag", msg.tag))
        if not promise.done:
            if msg.ok:
                promise.resolve(msg.candidate_list())
            else:
                promise.reject(RequestFailed(0, msg.detail))
        return True

    def describe(self, problem: str) -> Promise:
        """Fetch a problem's spec from the agent (cached after first use).

        Resolves with the :class:`ProblemSpec`; rejects with
        :class:`ProblemNotFoundError` when the agent does not know it.
        """
        promise = self.node.promise()
        spec = self._specs.get(problem)
        if spec is not None:
            promise.resolve(spec)
            return promise
        waiting = self._spec_waiters.setdefault(problem, [])
        waiting.append(promise)
        if problem not in self._describing:
            self._describing.setdefault(problem, [])
            self._start_describe(problem)
        return promise

    def list_problems(self, prefix: str = "") -> Promise:
        """Browse the agent's catalogue; promise resolves with a name tuple."""
        promise = self.node.promise()
        waiting = self._listing.setdefault(prefix, [])
        waiting.append(promise)
        if len(waiting) == 1:
            def exhausted() -> None:
                # a ProblemList reply cancels the chain's deadline as it
                # pops the batch, and a later list on the same prefix
                # arms a fresh generation, so only the batch that armed
                # the timer can die here
                batch = self._listing.pop(prefix, [])
                for p in batch:
                    if not p.done:
                        p.reject(
                            RequestFailed(0, "agent did not answer ListProblems")
                        )

            RetryChain(
                self._deadlines,
                ("list", prefix),
                interval=self.cfg.agent_timeout,
                attempts=self._agent_attempts(),
                send=lambda attempt: self.node.send(
                    self.agent_address, ListProblems(prefix=prefix)
                ),
                on_retry=lambda attempt: self._rotate_agent("list"),
                on_exhausted=exhausted,
            ).start()
        return promise

    @handles(ProblemList)
    def _on_problem_list(self, src: str, msg: ProblemList) -> None:
        self._deadlines.cancel(("list", msg.prefix))
        for promise in self._listing.pop(msg.prefix, []):
            if not promise.done:
                promise.resolve(tuple(msg.names))

    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    def _finish(self, req: _Active, error: Optional[NetSolveError], value=None):
        rid = req.record.request_id
        self._deadlines.cancel(rid)
        self._active.pop(rid, None)
        now = self.node.now()
        req.record.t_done = now
        if error is None:
            req.record.status = RequestStatus.DONE
            self._trace("request_done", request_id=rid)
            if self._metrics is not None:
                self._metrics.active.dec()
                self._metrics.requests_done.inc()
                self._metrics.request_seconds.observe(now - req.record.t_submit)
            if req.span is not None:
                req.span.finish(now, RequestStatus.DONE.value)
            req.handle.promise.resolve(value)
        else:
            req.record.status = RequestStatus.FAILED
            req.record.error = str(error)
            self._trace("request_failed", request_id=rid, error=str(error))
            if self._metrics is not None:
                self._metrics.active.dec()
                self._metrics.requests_failed.inc()
            if req.span is not None:
                req.span.finish(
                    now, RequestStatus.FAILED.value, error=str(error)
                )
            req.handle.promise.reject(error)

    # ------------------------------------------------------------------
    # phase 1: problem description
    # ------------------------------------------------------------------
    def _start_describe(self, problem: str) -> None:
        """Start the one DescribeProblem retry chain for ``problem``: the
        wire has no retransmission, so control messages carry their own
        retry.  A ProblemDescription reply cancels the chain's deadline,
        so a late fire after the answer is structurally impossible."""
        RetryChain(
            self._deadlines,
            ("describe", problem),
            interval=self.cfg.agent_timeout,
            attempts=self.cfg.agent_retries,
            send=lambda attempt: self._send_describe(problem),
            on_retry=lambda attempt: self._describe_retry(problem, attempt),
            on_exhausted=lambda: self._describe_exhausted(problem),
        ).start()

    def _send_describe(self, problem: str) -> None:
        if self._metrics is not None:
            self._metrics.describe_sends.inc()
        self.node.send(self.agent_address, DescribeProblem(problem=problem))

    def _describe_retry(self, problem: str, attempt: int) -> None:
        self._rotate_agent("describe")
        self._trace("describe_retry", problem=problem, attempt=attempt)
        if self._metrics is not None:
            self._metrics.describe_retries.inc()

    def _describe_exhausted(self, problem: str) -> None:
        waiting = self._describing.pop(problem, [])
        for req in waiting:
            if req.record.status.terminal:
                continue
            self._finish(
                req,
                RequestFailed(
                    req.record.request_id,
                    "agent did not answer DescribeProblem",
                ),
            )
        for promise in self._spec_waiters.pop(problem, []):
            if not promise.done:
                promise.reject(
                    RequestFailed(0, "agent did not answer DescribeProblem")
                )

    @handles(ProblemDescription)
    def _on_description(self, src: str, msg: ProblemDescription) -> None:
        self._deadlines.cancel(("describe", msg.problem))
        waiting = self._describing.pop(msg.problem, [])
        watchers = self._spec_waiters.pop(msg.problem, [])
        if not msg.ok:
            for req in waiting:
                self._finish(req, ProblemNotFoundError(msg.problem))
            for promise in watchers:
                if not promise.done:
                    promise.reject(ProblemNotFoundError(msg.problem))
            return
        try:
            specs = parse_pdl(msg.pdl, source=f"<agent:{msg.problem}>")
        except NetSolveError:
            specs = []  # unparseable text counts as malformed below
        if len(specs) != 1 or specs[0].name != msg.problem:
            for req in waiting:
                self._finish(
                    req,
                    RequestFailed(
                        req.record.request_id,
                        "agent returned a malformed problem description",
                    ),
                )
            for promise in watchers:
                if not promise.done:
                    promise.reject(
                        RequestFailed(0, "malformed problem description")
                    )
            return
        spec = specs[0]
        self._specs[spec.name] = spec
        for req in waiting:
            if not req.record.status.terminal:
                self._validate_and_query(req, spec)
        for promise in watchers:
            if not promise.done:
                promise.resolve(spec)

    # ------------------------------------------------------------------
    # phase 2: agent negotiation
    # ------------------------------------------------------------------
    def _validate_and_query(self, req: _Active, spec: ProblemSpec) -> None:
        try:
            coerced, env = validate_inputs(spec, req.raw_args)
        except BadArgumentsError as exc:
            self._finish(req, exc)
            return
        req.inputs = tuple(coerced)
        req.env = env
        req.record.sizes = dict(env)
        if self.cfg.cache_digest:
            # digested over the coerced inputs + env — exactly what the
            # server digests after its own validation, so client, agent
            # and server all key the same request identically
            req.digest = solve_digest(req.problem, coerced, env) or ""
        self._query(req)

    def _query(self, req: _Active) -> None:
        rid = req.record.request_id
        req.record.queries += 1
        now = self.node.now()
        req.record.t_query_sent = now
        req.record.status = RequestStatus.QUERYING
        self._trace(
            "query_sent", request_id=rid, exclude=list(req.tried)
        )
        if self._metrics is not None:
            self._metrics.queries.inc()
        if req.span is not None:
            req.span.begin_phase(
                "query", now, number=req.record.queries,
                excluded=len(req.tried),
            )
        # locality hint: per-server bytes the request references that are
        # already resident there (handle stubs carry home + size).  A
        # handle-free request sends the empty map — the frame and the
        # agent's ranking arithmetic are exactly the pre-handle ones
        resident: dict[str, int] = {}
        for value in req.inputs or ():
            if (
                isinstance(value, DataHandle)
                and value.server_id
                and value.nbytes > 0
            ):
                resident[value.server_id] = (
                    resident.get(value.server_id, 0) + int(value.nbytes)
                )
        self.node.send(
            self.agent_address,
            QueryRequest(
                problem=req.problem,
                sizes={k: int(v) for k, v in req.env.items()},
                client_host=self.node.host_name,
                exclude=tuple(req.tried),
                tag=rid,
                digest=req.digest,
                resident=resident,
                qos=req.qos,
            ),
        )
        self._deadlines.arm(
            rid, self.cfg.agent_timeout, lambda: self._agent_timed_out(rid)
        )

    def _agent_timed_out(self, rid: int) -> None:
        req = self._active.get(rid)
        if req is None or req.record.status is not RequestStatus.QUERYING:
            return
        if req.query_silences < self.cfg.agent_retries:
            req.query_silences += 1
            self._rotate_agent("query")
            self._trace(
                "query_retry", request_id=rid, attempt=req.query_silences
            )
            if self._metrics is not None:
                self._metrics.query_retries.inc()
            self._query(req)
            return
        self._finish(req, RequestFailed(rid, "agent did not answer query"))

    @handles(QueryReply)
    def _on_query_reply(self, src: str, msg: QueryReply) -> None:
        if msg.tag < 0 and self._on_candidate_query_reply(msg):
            return
        req = self._active.get(msg.tag)
        if req is None or req.record.status is not RequestStatus.QUERYING:
            return  # late or duplicate reply
        self._deadlines.cancel(msg.tag)
        now = self.node.now()
        req.record.t_candidates = now
        if self._metrics is not None and req.record.t_query_sent is not None:
            self._metrics.negotiation_seconds.observe(
                now - req.record.t_query_sent
            )
        if msg.ok and msg.cached:
            # the agent answered the solve itself from its hot cache:
            # one RTT, no server ever touched — the request is done
            self._trace(
                "cached_answer", request_id=req.record.request_id
            )
            if self._metrics is not None:
                self._metrics.cached_replies.inc()
            if req.span is not None:
                req.span.end_phase(now, outcome="cached")
            self._finish(req, None, tuple(msg.outputs))
            return
        if not msg.ok:
            if msg.retryable and req.query_silences < self.cfg.agent_retries:
                # the pool may recover (suspected servers report back in,
                # or the agent's probe revives a falsely-blamed one):
                # back off one timeout floor and ask again with a clean
                # slate — permanent exclusions would wedge small pools
                req.query_silences += 1
                req.tried.clear()
                self._trace(
                    "query_backoff",
                    request_id=req.record.request_id,
                    attempt=req.query_silences,
                )
                if self._metrics is not None:
                    self._metrics.query_backoffs.inc()
                if req.span is not None:
                    req.span.begin_phase(
                        "backoff", now, attempt=req.query_silences
                    )
                self._deadlines.arm(
                    msg.tag, self.cfg.timeout_floor, lambda: self._query(req)
                )
                return
            self._finish(
                req, RequestFailed(req.record.request_id, msg.detail)
            )
            return
        candidates = msg.candidate_list()
        if not candidates:
            # ok=True with an empty list is a degenerate agent reply;
            # treat it like a retryable empty pool (bounded backoff)
            # rather than looping the query forever
            if req.query_silences < self.cfg.agent_retries:
                req.query_silences += 1
                req.tried.clear()
                self._trace(
                    "query_backoff",
                    request_id=req.record.request_id,
                    attempt=req.query_silences,
                )
                if self._metrics is not None:
                    self._metrics.query_backoffs.inc()
                if req.span is not None:
                    req.span.begin_phase(
                        "backoff", now, attempt=req.query_silences
                    )
                self._deadlines.arm(
                    msg.tag, self.cfg.timeout_floor, lambda: self._query(req)
                )
            else:
                self._finish(
                    req,
                    RequestFailed(
                        req.record.request_id, "agent returned no candidates"
                    ),
                )
            return
        req.candidates = deque(candidates)
        self._trace(
            "candidates",
            request_id=req.record.request_id,
            servers=[c.server_id for c in req.candidates],
        )
        if req.span is not None:
            req.span.end_phase(now, candidates=len(candidates))
        self._try_next(req)

    # ------------------------------------------------------------------
    # phase 3: attempts & the fault-tolerance loop
    # ------------------------------------------------------------------
    def _try_next(self, req: _Active) -> None:
        rid = req.record.request_id
        if len(req.record.attempts) >= self.cfg.max_retries:
            self._finish(
                req,
                RequestFailed(
                    rid,
                    f"retry budget exhausted after "
                    f"{len(req.record.attempts)} attempt(s)",
                ),
            )
            return
        if not req.candidates:
            if req.pinned:
                self._finish(
                    req,
                    RequestFailed(rid, "pinned request failed on its server"),
                )
            elif self.cfg.requery_agent:
                self._query(req)
            else:
                self._finish(req, RequestFailed(rid, "candidate list exhausted"))
            return
        cand = req.candidates.popleft()
        if cand.endpoint:
            self.node.learn_endpoint(cand.address, cand.endpoint)
        req.current = cand
        attempt = AttemptRecord(
            server_id=cand.server_id,
            address=cand.address,
            predicted_seconds=cand.predicted_seconds,
            t_sent=self.node.now(),
        )
        req.attempt = attempt
        req.record.attempts.append(attempt)
        req.record.status = RequestStatus.EXECUTING
        self._trace(
            "attempt",
            request_id=rid,
            server_id=cand.server_id,
            predicted=cand.predicted_seconds,
        )
        if self._metrics is not None:
            self._metrics.attempts.inc()
        if req.span is not None:
            req.span.begin_phase(
                "attempt", attempt.t_sent, server=cand.server_id,
                number=len(req.record.attempts),
                predicted=round(cand.predicted_seconds, 6),
            )
        assert req.inputs is not None
        self.node.send(
            cand.address,
            SolveRequest(
                request_id=rid,
                problem=req.problem,
                inputs=req.inputs,
                reply_to=self.node.address,
                keep_result=req.keep_result,
                qos=req.qos,
            ),
        )
        if cand.predicted_seconds > 0:
            timeout = min(
                self.cfg.server_timeout,
                max(
                    self.cfg.timeout_floor,
                    self.cfg.timeout_factor * cand.predicted_seconds,
                ),
            )
        else:  # pinned submit: no prediction to scale from
            timeout = self.cfg.server_timeout
        self._deadlines.arm(
            rid, timeout, lambda: self._attempt_timed_out(rid, cand.server_id)
        )

    def _attempt_timed_out(self, rid: int, server_id: str) -> None:
        req = self._active.get(rid)
        if (
            req is None
            or req.record.status is not RequestStatus.EXECUTING
            or req.current is None
            or req.current.server_id != server_id
        ):
            return
        assert req.attempt is not None
        now = self.node.now()
        req.attempt.t_end = now
        req.attempt.outcome = "timeout"
        self._trace("attempt_timeout", request_id=rid, server_id=server_id)
        if self._metrics is not None:
            self._metrics.attempt_timeouts.inc()
        if req.span is not None:
            req.span.end_phase(now, outcome="timeout")
        self._report_failure(req, "timeout")
        self._try_next(req)

    def _report_failure(
        self, req: _Active, detail: str, *, kind: str = "", suspect: bool = True
    ) -> None:
        assert req.current is not None
        req.tried.append(req.current.server_id)
        if not req.pinned and suspect:
            # pinned requests bypassed the agent on the way in, so their
            # failures must bypass it on the way out: reporting one would
            # penalise the server's suspicion state for a request the
            # agent never scheduled (the attempt record still stands)
            if self._metrics is not None:
                self._metrics.failovers.inc()
            self.node.send(
                self.agent_address,
                FailureReport(
                    server_id=req.current.server_id,
                    problem=req.problem,
                    detail=detail,
                    kind=kind,
                ),
            )
        req.current = None
        req.attempt = None

    def _report_transfer(self, req: _Active) -> None:
        """Tell the agent what the path actually delivered (NWS loop)."""
        attempt = req.attempt
        assert attempt is not None and req.current is not None
        spec = self._specs.get(req.problem)
        if spec is None or attempt.elapsed is None or not req.current.host:
            return  # pinned submits carry no host; nothing to learn on
        transfer_seconds = attempt.elapsed - attempt.compute_seconds
        nbytes = spec.input_bytes(req.env) + spec.output_bytes(req.env)
        for value in req.inputs or ():
            # handle operands homed on the server never crossed the wire;
            # counting them would inflate the learned bandwidth belief
            if (
                isinstance(value, DataHandle)
                and value.server_id == req.current.server_id
            ):
                nbytes -= value.nbytes
        if transfer_seconds <= 0 or nbytes <= 0:
            return
        self.node.send(
            self.agent_address,
            TransferReport(
                client_host=self.node.host_name,
                server_host=req.current.host,
                nbytes=int(nbytes),
                seconds=float(transfer_seconds),
            ),
        )

    @handles(SolveReply)
    def _on_solve_reply(self, src: str, msg: SolveReply) -> None:
        req = self._active.get(msg.request_id)
        if (
            req is None
            or req.record.status is not RequestStatus.EXECUTING
            or req.current is None
            or src != req.current.address
        ):
            return  # reply from an attempt we already gave up on
        self._deadlines.cancel(msg.request_id)
        assert req.attempt is not None
        now = self.node.now()
        req.attempt.t_end = now
        req.attempt.compute_seconds = msg.compute_seconds
        if self._metrics is not None:
            elapsed = now - req.attempt.t_sent
            self._metrics.attempt_seconds.observe(elapsed)
            if req.attempt.predicted_seconds > 0:
                self._metrics.prediction_error_seconds.observe(
                    elapsed - req.attempt.predicted_seconds
                )
        if msg.ok:
            req.attempt.outcome = "ok"
            req.attempt.cached = msg.cached
            if self._metrics is not None:
                self._metrics.attempt_ok.inc()
                if msg.cached:
                    self._metrics.cached_replies.inc()
            if req.span is not None:
                req.span.end_phase(now, outcome="ok")
            if self.cfg.report_transfers:
                self._report_transfer(req)
            self._finish(req, None, tuple(msg.outputs))
        elif msg.error_kind == "missing_object":
            # a referenced operand is no longer resident (TTL lapse,
            # eviction, server death between store and solve).  This is
            # retryable data-placement drift, not a server fault
            req.attempt.outcome = "missing"
            req.attempt.detail = msg.detail
            if req.span is not None:
                req.span.end_phase(now, outcome="missing")
            if (
                not req.resubmitted
                and req.payloads
                and all(key in req.payloads for key in msg.missing)
            ):
                # re-submit once to the same server with the lost
                # operands inlined — no FailureReport, no fail-over
                req.resubmitted = True
                gone = set(msg.missing)
                assert req.inputs is not None
                req.inputs = tuple(
                    req.payloads[value.key]
                    if isinstance(value, (ObjectRef, DataHandle))
                    and value.key in gone
                    else value
                    for value in req.inputs
                )
                self._trace(
                    "resubmit_with_payload",
                    request_id=msg.request_id,
                    server_id=req.current.server_id,
                    missing=list(msg.missing),
                )
                if self._metrics is not None:
                    self._metrics.payload_resubmits.inc()
                req.candidates.appendleft(req.current)
                req.current = None
                req.attempt = None
                self._try_next(req)
                return
            self._trace(
                "attempt_missing_object",
                request_id=msg.request_id,
                server_id=req.current.server_id,
                missing=list(msg.missing),
            )
            if self._metrics is not None:
                self._metrics.attempt_errors.inc()
            # without payloads in hand the best move is the next
            # candidate; the server is healthy, so it is not suspected
            self._report_failure(req, msg.detail, suspect=False)
            self._try_next(req)
        else:
            req.attempt.outcome = "error"
            req.attempt.detail = msg.detail
            self._trace(
                "attempt_error",
                request_id=msg.request_id,
                server_id=req.current.server_id,
                detail=msg.detail,
            )
            if self._metrics is not None:
                self._metrics.attempt_errors.inc()
            if req.span is not None:
                req.span.end_phase(now, outcome="error")
            self._report_failure(req, msg.detail)
            self._try_next(req)

    @handles(Busy)
    def _on_busy(self, src: str, msg: Busy) -> None:
        """Admission refused: the request was never queued there.

        Shaped like a fast server-side error, but classified "busy" on
        the way to the agent so the server is penalised in the ranking
        instead of marked dead, then the normal fault-tolerance loop
        falls through to the next candidate (re-querying with bounded
        backoff once the list runs dry)."""
        req = self._active.get(msg.request_id)
        if (
            req is None
            or req.record.status is not RequestStatus.EXECUTING
            or req.current is None
            or src != req.current.address
        ):
            return  # refusal from an attempt we already gave up on
        self._deadlines.cancel(msg.request_id)
        assert req.attempt is not None
        now = self.node.now()
        req.attempt.t_end = now
        req.attempt.outcome = "busy"
        req.attempt.detail = msg.detail
        self._trace(
            "attempt_busy",
            request_id=msg.request_id,
            server_id=req.current.server_id,
            queue_depth=msg.queue_depth,
        )
        if self._metrics is not None:
            self._metrics.busy_failovers.inc()
        if req.span is not None:
            req.span.end_phase(now, outcome="busy")
        self._report_failure(req, msg.detail or "busy", kind="busy")
        self._try_next(req)
