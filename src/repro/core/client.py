"""The NetSolve client library.

Mirrors the original calling model: a blocking call (``netsl``) and a
non-blocking submit/probe/wait triple (``netslnb``/``netslpr``/
``netslwt``), both built on one asynchronous engine:

1. fetch & cache the problem description from the agent (PDL over the
   wire), validating arguments locally before anything large moves;
2. ask the agent for a ranked candidate list (sizes only — never data);
3. ship inputs to the best server; on error, timeout or crash, report
   the failure to the agent and fall through to the next candidate,
   re-querying the agent (excluding known-bad servers) when the list
   runs dry — the paper's transparent fault-tolerance loop;
4. resolve the request's promise with the outputs.

Every request keeps a full :class:`~repro.core.request.RequestRecord`
timeline, which is where the breakdown/fault experiments read from.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Optional, Sequence

from ..config import ClientConfig
from ..errors import (
    BadArgumentsError,
    NetSolveError,
    ProblemNotFoundError,
    RequestFailed,
)
from ..problems.pdl import parse_pdl
from ..problems.spec import ProblemSpec, validate_inputs
from ..protocol.messages import (
    Candidate,
    DescribeProblem,
    FailureReport,
    Message,
    ListProblems,
    ProblemDescription,
    ProblemList,
    QueryReply,
    QueryRequest,
    DeleteObject,
    ObjectRef,
    SolveReply,
    SolveRequest,
    StoreAck,
    StoreObject,
    TransferReport,
)
from ..protocol.transport import Component, Promise
from ..trace.events import EventLog
from .request import AttemptRecord, RequestRecord, RequestStatus

__all__ = ["NetSolveClient", "RequestHandle"]


class RequestHandle:
    """Public handle for one submitted request."""

    def __init__(self, record: RequestRecord, promise: Promise):
        self.record = record
        self.promise = promise

    @property
    def request_id(self) -> int:
        return self.record.request_id

    @property
    def status(self) -> RequestStatus:
        return self.record.status

    @property
    def done(self) -> bool:
        return self.promise.done

    def result(self) -> tuple:
        """Outputs tuple; raises the request's error if it failed."""
        return self.promise.result()


class _Active:
    """Internal per-request state."""

    __slots__ = (
        "handle",
        "record",
        "problem",
        "raw_args",
        "inputs",
        "env",
        "candidates",
        "tried",
        "current",
        "attempt",
        "timer",
        "pinned",
        "query_silences",
    )

    def __init__(self, handle: RequestHandle, problem: str, raw_args: list):
        self.handle = handle
        self.record = handle.record
        self.problem = problem
        self.raw_args = raw_args
        self.inputs: Optional[tuple] = None
        self.env: dict[str, int] = {}
        self.candidates: deque[Candidate] = deque()
        self.tried: list[str] = []
        self.current: Optional[Candidate] = None
        self.attempt: Optional[AttemptRecord] = None
        self.timer = None
        #: pinned requests bypass the agent and never fail over
        self.pinned = False
        #: unanswered agent queries so far (control-message retry budget)
        self.query_silences = 0


class NetSolveClient(Component):
    """One client application's NetSolve endpoint."""

    def __init__(
        self,
        *,
        client_id: str,
        agent_address: str,
        cfg: ClientConfig = ClientConfig(),
        trace: Optional[EventLog] = None,
    ):
        self.client_id = client_id
        self.agent_address = agent_address
        self.cfg = cfg
        self.trace = trace
        self._rids = itertools.count(1)
        self._specs: dict[str, ProblemSpec] = {}
        self._describing: dict[str, list[_Active]] = {}
        self._spec_waiters: dict[str, list[Promise]] = {}
        self._listing: dict[str, list[Promise]] = {}
        self._storing: dict[tuple[str, str], list[Promise]] = {}
        self._queries: dict[int, Promise] = {}
        self._active: dict[int, _Active] = {}
        #: every record ever created, terminal or not (experiment data)
        self.records: list[RequestRecord] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, problem: str, args: Sequence[Any]) -> RequestHandle:
        """Non-blocking submit; returns a handle with a promise."""
        rid = next(self._rids)
        record = RequestRecord(
            request_id=rid,
            problem=problem,
            sizes={},
            t_submit=self.node.now(),
        )
        handle = RequestHandle(record, self.node.promise())
        self.records.append(record)
        req = _Active(handle, problem, list(args))
        self._active[rid] = req
        self._trace("submit", request_id=rid, problem=problem)
        spec = self._specs.get(problem)
        if spec is not None:
            self._validate_and_query(req, spec)
        else:
            waiting = self._describing.setdefault(problem, [])
            waiting.append(req)
            if len(waiting) == 1:
                self._send_describe(problem, attempt=1)
        return handle

    def known_problems(self) -> list[str]:
        return sorted(self._specs)

    def install_spec(self, spec: ProblemSpec) -> None:
        """Pre-seed the description cache (skips the DescribeProblem RTT)."""
        self._specs[spec.name] = spec

    # ------------------------------------------------------------------
    # request sequencing: object store + pinned submits
    # ------------------------------------------------------------------
    def store(self, server_address: str, key: str, value: Any) -> Promise:
        """Cache ``value`` under ``key`` on a specific server.

        The promise resolves with the stored byte count, or rejects if
        the server refuses (cache full) or never answers.
        """
        promise = self.node.promise()
        waiting = self._storing.setdefault((server_address, key), [])
        waiting.append(promise)
        if len(waiting) == 1:
            self.node.send(server_address, StoreObject(key=key, value=value))
            self._arm_store_timeout(server_address, key)
        return promise

    def delete_stored(self, server_address: str, key: str) -> Promise:
        """Drop a cached object; resolves True if it existed."""
        promise = self.node.promise()
        waiting = self._storing.setdefault((server_address, key), [])
        waiting.append(promise)
        if len(waiting) == 1:
            self.node.send(server_address, DeleteObject(key=key))
            self._arm_store_timeout(server_address, key)
        return promise

    def _arm_store_timeout(self, server_address: str, key: str) -> None:
        def fire() -> None:
            for p in self._storing.pop((server_address, key), []):
                if not p.done:
                    p.reject(
                        RequestFailed(
                            0, f"server {server_address!r} did not ack "
                            f"object {key!r}"
                        )
                    )

        self.node.call_after(self.cfg.server_timeout, fire)

    def _on_store_ack(self, src: str, msg: StoreAck) -> None:
        for promise in self._storing.pop((src, msg.key), []):
            if promise.done:
                continue
            if msg.ok:
                promise.resolve(msg.nbytes)
            else:
                promise.reject(RequestFailed(0, msg.detail or "store refused"))

    def submit_pinned(
        self, problem: str, args: Sequence[Any], server_address: str,
        *, server_id: str = "",
    ) -> RequestHandle:
        """Submit directly to one server, bypassing the agent.

        This is the execution half of request sequencing: arguments may
        contain :class:`ObjectRef` placeholders for operands previously
        :meth:`store`\\ d there.  No fail-over — a pinned request lives
        and dies with its server (the sequence's data is there).
        """
        rid = next(self._rids)
        record = RequestRecord(
            request_id=rid, problem=problem, sizes={},
            t_submit=self.node.now(),
        )
        handle = RequestHandle(record, self.node.promise())
        self.records.append(record)
        req = _Active(handle, problem, list(args))
        req.pinned = True
        self._active[rid] = req
        self._trace(
            "submit_pinned", request_id=rid, problem=problem,
            server=server_address,
        )
        spec = self._specs.get(problem)
        refs = any(isinstance(a, ObjectRef) for a in args)
        if spec is not None and not refs:
            try:
                coerced, env = validate_inputs(spec, list(args))
            except BadArgumentsError as exc:
                self._finish(req, exc)
                return handle
            req.inputs = tuple(coerced)
            req.env = env
            record.sizes = dict(env)
        else:
            # refs resolve server-side; validation happens there
            req.inputs = tuple(args)
        req.candidates = deque(
            [Candidate(
                server_id=server_id or server_address,
                address=server_address,
                host="",
                predicted_seconds=0.0,
            )]
        )
        self._try_next(req)
        return handle

    def query_candidates(
        self, problem: str, sizes: dict, *, exclude: tuple = ()
    ) -> Promise:
        """Ask the agent for its ranked candidate list without submitting.

        Resolves with ``list[Candidate]`` (possibly after the agent notes
        an assignment to the head — exactly as a real query would);
        rejects with :class:`RequestFailed` on unknown problems, empty
        pools, or agent silence.  Used by sequencing to pick a pin.
        """
        promise = self.node.promise()
        # negative tags cannot collide with request ids (always >= 1)
        tag = -next(self._rids)
        self._queries[tag] = promise
        self.node.send(
            self.agent_address,
            QueryRequest(
                problem=problem,
                sizes={k: int(v) for k, v in sizes.items()},
                client_host=self.node.host_name,
                exclude=tuple(exclude),
                tag=tag,
            ),
        )

        def timed_out() -> None:
            pending = self._queries.pop(tag, None)
            if pending is not None and not pending.done:
                pending.reject(RequestFailed(0, "agent did not answer query"))

        self.node.call_after(self.cfg.agent_timeout, timed_out)
        return promise

    def _on_candidate_query_reply(self, msg: QueryReply) -> bool:
        promise = self._queries.pop(msg.tag, None)
        if promise is None:
            return False
        if not promise.done:
            if msg.ok:
                promise.resolve(msg.candidate_list())
            else:
                promise.reject(RequestFailed(0, msg.detail))
        return True

    def describe(self, problem: str) -> Promise:
        """Fetch a problem's spec from the agent (cached after first use).

        Resolves with the :class:`ProblemSpec`; rejects with
        :class:`ProblemNotFoundError` when the agent does not know it.
        """
        promise = self.node.promise()
        spec = self._specs.get(problem)
        if spec is not None:
            promise.resolve(spec)
            return promise
        waiting = self._spec_waiters.setdefault(problem, [])
        waiting.append(promise)
        if problem not in self._describing:
            self._describing.setdefault(problem, [])
            self._send_describe(problem, attempt=1)
        return promise

    def list_problems(self, prefix: str = "") -> Promise:
        """Browse the agent's catalogue; promise resolves with a name tuple."""
        promise = self.node.promise()
        waiting = self._listing.setdefault(prefix, [])
        waiting.append(promise)
        if len(waiting) == 1:
            self.node.send(self.agent_address, ListProblems(prefix=prefix))

            def timed_out() -> None:
                stale = self._listing.pop(prefix, [])
                for p in stale:
                    if not p.done:
                        p.reject(
                            RequestFailed(0, "agent did not answer ListProblems")
                        )

            self.node.call_after(self.cfg.agent_timeout, timed_out)
        return promise

    def _on_problem_list(self, msg: ProblemList) -> None:
        for promise in self._listing.pop(msg.prefix, []):
            if not promise.done:
                promise.resolve(tuple(msg.names))

    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    def _finish(self, req: _Active, error: Optional[NetSolveError], value=None):
        rid = req.record.request_id
        self._cancel_timer(req)
        self._active.pop(rid, None)
        req.record.t_done = self.node.now()
        if error is None:
            req.record.status = RequestStatus.DONE
            self._trace("request_done", request_id=rid)
            req.handle.promise.resolve(value)
        else:
            req.record.status = RequestStatus.FAILED
            req.record.error = str(error)
            self._trace("request_failed", request_id=rid, error=str(error))
            req.handle.promise.reject(error)

    def _cancel_timer(self, req: _Active) -> None:
        if req.timer is not None:
            req.timer.cancel()
            req.timer = None

    # ------------------------------------------------------------------
    # phase 1: problem description
    # ------------------------------------------------------------------
    def _send_describe(self, problem: str, attempt: int) -> None:
        """Fire a DescribeProblem, re-sending on silence: the wire has no
        retransmission, so control messages carry their own retry."""
        self.node.send(self.agent_address, DescribeProblem(problem=problem))

        def fire() -> None:
            if problem not in self._describing:
                return  # answered in the meantime
            if attempt < self.cfg.agent_retries:
                self._trace(
                    "describe_retry", problem=problem, attempt=attempt + 1
                )
                self._send_describe(problem, attempt + 1)
                return
            waiting = self._describing.pop(problem, [])
            for req in waiting:
                if req.record.status.terminal:
                    continue
                self._finish(
                    req,
                    RequestFailed(
                        req.record.request_id,
                        "agent did not answer DescribeProblem",
                    ),
                )
            for promise in self._spec_waiters.pop(problem, []):
                if not promise.done:
                    promise.reject(
                        RequestFailed(0, "agent did not answer DescribeProblem")
                    )

        self.node.call_after(self.cfg.agent_timeout, fire)

    def _on_description(self, msg: ProblemDescription) -> None:
        waiting = self._describing.pop(msg.problem, [])
        watchers = self._spec_waiters.pop(msg.problem, [])
        if not msg.ok:
            for req in waiting:
                self._finish(req, ProblemNotFoundError(msg.problem))
            for promise in watchers:
                if not promise.done:
                    promise.reject(ProblemNotFoundError(msg.problem))
            return
        try:
            specs = parse_pdl(msg.pdl, source=f"<agent:{msg.problem}>")
        except NetSolveError:
            specs = []  # unparseable text counts as malformed below
        if len(specs) != 1 or specs[0].name != msg.problem:
            for req in waiting:
                self._finish(
                    req,
                    RequestFailed(
                        req.record.request_id,
                        "agent returned a malformed problem description",
                    ),
                )
            for promise in watchers:
                if not promise.done:
                    promise.reject(
                        RequestFailed(0, "malformed problem description")
                    )
            return
        spec = specs[0]
        self._specs[spec.name] = spec
        for req in waiting:
            if not req.record.status.terminal:
                self._validate_and_query(req, spec)
        for promise in watchers:
            if not promise.done:
                promise.resolve(spec)

    # ------------------------------------------------------------------
    # phase 2: agent negotiation
    # ------------------------------------------------------------------
    def _validate_and_query(self, req: _Active, spec: ProblemSpec) -> None:
        try:
            coerced, env = validate_inputs(spec, req.raw_args)
        except BadArgumentsError as exc:
            self._finish(req, exc)
            return
        req.inputs = tuple(coerced)
        req.env = env
        req.record.sizes = dict(env)
        self._query(req)

    def _query(self, req: _Active) -> None:
        rid = req.record.request_id
        req.record.queries += 1
        req.record.t_query_sent = self.node.now()
        req.record.status = RequestStatus.QUERYING
        self._trace(
            "query_sent", request_id=rid, exclude=list(req.tried)
        )
        self.node.send(
            self.agent_address,
            QueryRequest(
                problem=req.problem,
                sizes={k: int(v) for k, v in req.env.items()},
                client_host=self.node.host_name,
                exclude=tuple(req.tried),
                tag=rid,
            ),
        )
        self._cancel_timer(req)
        req.timer = self.node.call_after(
            self.cfg.agent_timeout, lambda: self._agent_timed_out(rid)
        )

    def _agent_timed_out(self, rid: int) -> None:
        req = self._active.get(rid)
        if req is None or req.record.status is not RequestStatus.QUERYING:
            return
        if req.query_silences < self.cfg.agent_retries:
            req.query_silences += 1
            self._trace(
                "query_retry", request_id=rid, attempt=req.query_silences
            )
            self._query(req)
            return
        self._finish(req, RequestFailed(rid, "agent did not answer query"))

    def _on_query_reply(self, msg: QueryReply) -> None:
        if msg.tag < 0 and self._on_candidate_query_reply(msg):
            return
        req = self._active.get(msg.tag)
        if req is None or req.record.status is not RequestStatus.QUERYING:
            return  # late or duplicate reply
        self._cancel_timer(req)
        req.record.t_candidates = self.node.now()
        if not msg.ok:
            if msg.retryable and req.query_silences < self.cfg.agent_retries:
                # the pool may recover (suspected servers report back in,
                # or the agent's probe revives a falsely-blamed one):
                # back off one timeout floor and ask again with a clean
                # slate — permanent exclusions would wedge small pools
                req.query_silences += 1
                req.tried.clear()
                self._trace(
                    "query_backoff",
                    request_id=req.record.request_id,
                    attempt=req.query_silences,
                )
                req.timer = self.node.call_after(
                    self.cfg.timeout_floor, lambda: self._query(req)
                )
                return
            self._finish(
                req, RequestFailed(req.record.request_id, msg.detail)
            )
            return
        candidates = msg.candidate_list()
        if not candidates:
            # ok=True with an empty list is a degenerate agent reply;
            # treat it like a retryable empty pool (bounded backoff)
            # rather than looping the query forever
            if req.query_silences < self.cfg.agent_retries:
                req.query_silences += 1
                req.tried.clear()
                self._trace(
                    "query_backoff",
                    request_id=req.record.request_id,
                    attempt=req.query_silences,
                )
                req.timer = self.node.call_after(
                    self.cfg.timeout_floor, lambda: self._query(req)
                )
            else:
                self._finish(
                    req,
                    RequestFailed(
                        req.record.request_id, "agent returned no candidates"
                    ),
                )
            return
        req.candidates = deque(candidates)
        self._trace(
            "candidates",
            request_id=req.record.request_id,
            servers=[c.server_id for c in req.candidates],
        )
        self._try_next(req)

    # ------------------------------------------------------------------
    # phase 3: attempts & the fault-tolerance loop
    # ------------------------------------------------------------------
    def _try_next(self, req: _Active) -> None:
        rid = req.record.request_id
        if len(req.record.attempts) >= self.cfg.max_retries:
            self._finish(
                req,
                RequestFailed(
                    rid,
                    f"retry budget exhausted after "
                    f"{len(req.record.attempts)} attempt(s)",
                ),
            )
            return
        if not req.candidates:
            if req.pinned:
                self._finish(
                    req,
                    RequestFailed(rid, "pinned request failed on its server"),
                )
            elif self.cfg.requery_agent:
                self._query(req)
            else:
                self._finish(req, RequestFailed(rid, "candidate list exhausted"))
            return
        cand = req.candidates.popleft()
        if cand.endpoint:
            self.node.learn_endpoint(cand.address, cand.endpoint)
        req.current = cand
        attempt = AttemptRecord(
            server_id=cand.server_id,
            address=cand.address,
            predicted_seconds=cand.predicted_seconds,
            t_sent=self.node.now(),
        )
        req.attempt = attempt
        req.record.attempts.append(attempt)
        req.record.status = RequestStatus.EXECUTING
        self._trace(
            "attempt",
            request_id=rid,
            server_id=cand.server_id,
            predicted=cand.predicted_seconds,
        )
        assert req.inputs is not None
        self.node.send(
            cand.address,
            SolveRequest(
                request_id=rid,
                problem=req.problem,
                inputs=req.inputs,
                reply_to=self.node.address,
            ),
        )
        if cand.predicted_seconds > 0:
            timeout = min(
                self.cfg.server_timeout,
                max(
                    self.cfg.timeout_floor,
                    self.cfg.timeout_factor * cand.predicted_seconds,
                ),
            )
        else:  # pinned submit: no prediction to scale from
            timeout = self.cfg.server_timeout
        self._cancel_timer(req)
        req.timer = self.node.call_after(
            timeout, lambda: self._attempt_timed_out(rid, cand.server_id)
        )

    def _attempt_timed_out(self, rid: int, server_id: str) -> None:
        req = self._active.get(rid)
        if (
            req is None
            or req.record.status is not RequestStatus.EXECUTING
            or req.current is None
            or req.current.server_id != server_id
        ):
            return
        assert req.attempt is not None
        req.attempt.t_end = self.node.now()
        req.attempt.outcome = "timeout"
        self._trace("attempt_timeout", request_id=rid, server_id=server_id)
        self._report_failure(req, "timeout")
        self._try_next(req)

    def _report_failure(self, req: _Active, detail: str) -> None:
        assert req.current is not None
        req.tried.append(req.current.server_id)
        self.node.send(
            self.agent_address,
            FailureReport(
                server_id=req.current.server_id,
                problem=req.problem,
                detail=detail,
            ),
        )
        req.current = None
        req.attempt = None

    def _report_transfer(self, req: _Active) -> None:
        """Tell the agent what the path actually delivered (NWS loop)."""
        attempt = req.attempt
        assert attempt is not None and req.current is not None
        spec = self._specs.get(req.problem)
        if spec is None or attempt.elapsed is None or not req.current.host:
            return  # pinned submits carry no host; nothing to learn on
        transfer_seconds = attempt.elapsed - attempt.compute_seconds
        nbytes = spec.input_bytes(req.env) + spec.output_bytes(req.env)
        if transfer_seconds <= 0 or nbytes <= 0:
            return
        self.node.send(
            self.agent_address,
            TransferReport(
                client_host=self.node.host_name,
                server_host=req.current.host,
                nbytes=int(nbytes),
                seconds=float(transfer_seconds),
            ),
        )

    def _on_solve_reply(self, src: str, msg: SolveReply) -> None:
        req = self._active.get(msg.request_id)
        if (
            req is None
            or req.record.status is not RequestStatus.EXECUTING
            or req.current is None
            or src != req.current.address
        ):
            return  # reply from an attempt we already gave up on
        self._cancel_timer(req)
        assert req.attempt is not None
        req.attempt.t_end = self.node.now()
        req.attempt.compute_seconds = msg.compute_seconds
        if msg.ok:
            req.attempt.outcome = "ok"
            if self.cfg.report_transfers:
                self._report_transfer(req)
            self._finish(req, None, tuple(msg.outputs))
        else:
            req.attempt.outcome = "error"
            req.attempt.detail = msg.detail
            self._trace(
                "attempt_error",
                request_id=msg.request_id,
                server_id=req.current.server_id,
                detail=msg.detail,
            )
            self._report_failure(req, msg.detail)
            self._try_next(req)

    # ------------------------------------------------------------------
    def on_message(self, src: str, msg: Message) -> None:
        if isinstance(msg, SolveReply):
            self._on_solve_reply(src, msg)
        elif isinstance(msg, QueryReply):
            self._on_query_reply(msg)
        elif isinstance(msg, ProblemDescription):
            self._on_description(msg)
        elif isinstance(msg, ProblemList):
            self._on_problem_list(msg)
        elif isinstance(msg, StoreAck):
            self._on_store_ack(src, msg)
        # anything else: drop
