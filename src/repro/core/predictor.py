"""The agent's completion-time model.

For a request of problem ``p`` with size bindings ``env`` on candidate
server ``s`` reachable from client host ``c``, NetSolve predicts::

    T(s) = T_send + T_compute + T_recv

    T_send    = latency(c, s) + input_bytes(p, env)  / bandwidth(c, s)
    T_recv    = latency(c, s) + output_bytes(p, env) / bandwidth(c, s)
    T_compute = flops(p, env) / (1e6 * effective_mflops(s))

    effective_mflops(s) = peak_mflops(s) * min(1, 100 * slots(s)
                                                  / (100 + workload(s)))

where ``workload`` is the server's last-reported UNIX load average times
100 and ``slots`` is its advertised executor-worker count.  At
``slots=1`` the min() never binds below the classic NetSolve hypothesis
``P * 100 / (100 + w)`` — the formula *is* that hypothesis, computed
with the identical expression, so single-slot decisions are
bit-identical to the pre-slot model.  A multi-slot server divides its
runnable load across workers: a 4-worker box at load 3 still delivers
peak to a new job, which is exactly why the scheduler must know slot
counts to stop preferring idle slow machines over busy fast ones.
The model is deliberately the *same* two-parameter network model
the simulator's links implement, so experiment T1 measures exactly the
error sources the paper's agent lived with: stale workload reports, link
contention, protocol overhead and competing requests — not model-form
mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Protocol

import numpy as np

from ..errors import ConfigError
from ..problems.spec import ProblemSpec

__all__ = [
    "LinkEstimate",
    "NetworkInfo",
    "StaticNetworkInfo",
    "LearnedNetworkInfo",
    "Prediction",
    "effective_mflops",
    "predict",
    "predict_for",
    "predict_batch",
]


@dataclass(frozen=True)
class LinkEstimate:
    """Agent's belief about one host pair: seconds and bytes/second."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError("latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive")

    def transfer_seconds(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


class NetworkInfo(Protocol):
    """Provider of link estimates between named hosts."""

    def link(self, a: str, b: str) -> LinkEstimate: ...


class StaticNetworkInfo:
    """A symmetric table of measured link characteristics.

    Stands in for the original's network measurements: the deployment
    loads it from known topology (or from probes), and the agent never
    touches live network state.  Unknown pairs fall back to ``default``
    if given, else raise.
    """

    def __init__(
        self,
        table: Mapping[tuple[str, str], LinkEstimate] | None = None,
        *,
        default: LinkEstimate | None = None,
        loopback: LinkEstimate | None = None,
    ):
        self._table: dict[tuple[str, str], LinkEstimate] = {}
        self.default = default
        self.loopback = loopback or LinkEstimate(latency=20e-6, bandwidth=400e6)
        if table:
            for (a, b), est in table.items():
                self.set(a, b, est)

    def set(self, a: str, b: str, est: LinkEstimate) -> None:
        self._table[(a, b)] = est
        self._table[(b, a)] = est

    def link(self, a: str, b: str) -> LinkEstimate:
        if a == b:
            return self.loopback
        est = self._table.get((a, b))
        if est is None:
            est = self.default
        if est is None:
            raise ConfigError(f"no link estimate for {a!r} <-> {b!r}")
        return est


class LearnedNetworkInfo:
    """Network table that learns effective bandwidth from observed
    transfers (the measurement loop NetSolve later delegated to NWS).

    Starts from a ``prior`` provider; every client
    :class:`~repro.protocol.messages.TransferReport` updates an
    exponentially weighted moving average of the path's effective
    bytes/second.  Latency stays the prior's (small-message probes would
    refine it; transfers barely constrain it), so the learned estimate
    corrects exactly the term that dominates large-argument prediction.
    """

    def __init__(self, prior: "NetworkInfo", *, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        self.prior = prior
        self.alpha = float(alpha)
        self._learned: dict[tuple[str, str], float] = {}
        self.observations = 0

    @staticmethod
    def _key(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def observe(self, a: str, b: str, nbytes: float, seconds: float) -> None:
        """Fold one realized transfer into the path's bandwidth belief."""
        if nbytes <= 0 or seconds <= 0:
            return  # nothing to learn from degenerate reports
        observed = nbytes / seconds
        key = self._key(a, b)
        current = self._learned.get(key)
        if current is None:
            self._learned[key] = observed
        else:
            self._learned[key] = (
                (1.0 - self.alpha) * current + self.alpha * observed
            )
        self.observations += 1

    def learned_bandwidth(self, a: str, b: str) -> Optional[float]:
        return self._learned.get(self._key(a, b))

    def link(self, a: str, b: str) -> LinkEstimate:
        base = self.prior.link(a, b)
        learned = self._learned.get(self._key(a, b))
        if learned is None:
            return base
        return LinkEstimate(latency=base.latency, bandwidth=learned)


@dataclass(frozen=True)
class Prediction:
    """Decomposed completion-time prediction (seconds)."""

    send_seconds: float
    compute_seconds: float
    recv_seconds: float

    @property
    def total(self) -> float:
        return self.send_seconds + self.compute_seconds + self.recv_seconds

    @property
    def network_seconds(self) -> float:
        return self.send_seconds + self.recv_seconds


def effective_mflops(
    peak_mflops: float, workload: float, slots: int = 1
) -> float:
    """NetSolve's workload hypothesis, generalized to ``slots`` workers:
    ``p = P * min(1, 100 * slots / (100 + w))``.

    ``slots=1`` evaluates the exact classic expression
    ``P * 100 / (100 + w)`` (same operations, same order), so existing
    single-slot predictions do not move by so much as an ulp.  With
    more slots the load divides across workers, capped at peak: a
    server whose capacity (``100 * slots``) covers its runnable load
    delivers full speed to one more job.
    """
    if peak_mflops <= 0:
        raise ConfigError("peak_mflops must be positive")
    if workload < 0:
        raise ConfigError("workload must be >= 0")
    if slots < 1:
        raise ConfigError("slots must be >= 1")
    if slots == 1:
        return peak_mflops * 100.0 / (100.0 + workload)
    capacity = 100.0 * slots
    if capacity >= 100.0 + workload:
        return peak_mflops
    return peak_mflops * capacity / (100.0 + workload)


def predict(
    *,
    flops: float,
    input_bytes: float,
    output_bytes: float,
    link: LinkEstimate,
    peak_mflops: float,
    workload: float,
    slots: int = 1,
    use_workload: bool = True,
) -> Prediction:
    """Core prediction formula from raw quantities.

    ``use_workload=False`` is the A1 ablation: the agent pretends every
    server is idle.
    """
    if flops < 0 or input_bytes < 0 or output_bytes < 0:
        raise ConfigError("flops and byte counts must be >= 0")
    mflops = effective_mflops(
        peak_mflops, workload if use_workload else 0.0, slots
    )
    return Prediction(
        send_seconds=link.transfer_seconds(input_bytes),
        compute_seconds=flops / (mflops * 1e6),
        recv_seconds=link.transfer_seconds(output_bytes),
    )


def predict_for(
    spec: ProblemSpec,
    env: Mapping[str, int],
    *,
    link: LinkEstimate,
    peak_mflops: float,
    workload: float,
    slots: int = 1,
    use_workload: bool = True,
) -> Prediction:
    """Prediction for a problem spec at concrete sizes."""
    return predict(
        flops=spec.flops(env),
        input_bytes=spec.input_bytes(env),
        output_bytes=spec.output_bytes(env),
        link=link,
        peak_mflops=peak_mflops,
        workload=workload,
        slots=slots,
        use_workload=use_workload,
    )


def predict_batch(
    *,
    flops: float,
    input_bytes: "float | np.ndarray",
    output_bytes: float,
    latency: np.ndarray,
    bandwidth: np.ndarray,
    peak_mflops: np.ndarray,
    workload: np.ndarray,
    pending: np.ndarray,
    slots: "np.ndarray | None" = None,
    use_workload: bool = True,
) -> np.ndarray:
    """Vectorized :func:`predict` over a candidate set.

    ``flops``/``input_bytes``/``output_bytes`` are the per-query
    invariants (they depend only on the problem spec and the size
    bindings, so the caller evaluates them once); the array arguments
    carry one element per candidate.  ``input_bytes`` may also be an
    array (one element per candidate) when the bytes each server must
    actually receive differ — the locality-aware path charges only for
    inputs not already resident on a candidate; passing the plain scalar
    keeps the arithmetic (and hence the ranking) bit-identical to the
    pre-locality model.  ``pending`` is the agent's
    pending-assignment count per candidate — each live hint inflates the
    compute term by one service time, exactly as
    :meth:`~repro.core.agent.Agent.predict_entry` does.

    ``slots`` (int per candidate; ``None`` means all-ones) divides both
    the reported workload and the pending hints across a server's
    executor workers.

    Returns total predicted seconds as a float64 array.  Every
    arithmetic step mirrors the scalar path operation for operation —
    the multi-slot branch replays :func:`effective_mflops`'s exact
    branch structure via ``np.where`` rather than a ``minimum()``
    (which could round differently at the capacity boundary) — so each
    element is bit-identical to ``predict_for(...)`` plus the pending
    inflation.  The property tests pin this; the scalar path remains
    the reference implementation.
    """
    input_bytes = np.asarray(input_bytes, dtype=np.float64)
    if flops < 0 or (input_bytes.size and input_bytes.min() < 0) \
            or output_bytes < 0:
        raise ConfigError("flops and byte counts must be >= 0")
    peak_mflops = np.asarray(peak_mflops, dtype=np.float64)
    workload = np.asarray(workload, dtype=np.float64)
    latency = np.asarray(latency, dtype=np.float64)
    bandwidth = np.asarray(bandwidth, dtype=np.float64)
    pending = np.asarray(pending)
    if peak_mflops.size and peak_mflops.min() <= 0:
        raise ConfigError("peak_mflops must be positive")
    if workload.size and workload.min() < 0:
        raise ConfigError("workload must be >= 0")
    if not use_workload:
        workload = np.zeros_like(workload)
    mflops = peak_mflops * 100.0 / (100.0 + workload)
    if slots is None:
        inflation = 1 + pending
    else:
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size and slots.min() < 1:
            raise ConfigError("slots must be >= 1")
        if np.any(slots > 1):
            capacity = 100.0 * slots
            multi = np.where(
                capacity >= 100.0 + workload,
                peak_mflops,
                peak_mflops * capacity / (100.0 + workload),
            )
            mflops = np.where(slots > 1, multi, mflops)
        inflation = 1 + pending // slots
    send = latency + input_bytes / bandwidth
    compute = (flops / (mflops * 1e6)) * inflation
    recv = latency + output_bytes / bandwidth
    return send + compute + recv


PredictFn = Callable[..., Prediction]
