"""The NetSolve agent: resource broker and scheduler.

The agent never touches problem data.  It keeps the server table, the
problem-description catalogue uploaded by registering servers, and the
network-characteristics table; for every client query it evaluates the
completion-time predictor over the live candidates and returns a ranked
list.  Failure reports from clients mark servers suspect; a liveness
sweep retires servers whose workload reports stop arriving.

One deliberate exception to the "never touches problem data" rule: with
``cache_entries > 0`` the agent keeps a *hot* result cache of small
outputs that servers publish after fresh computes (``CacheInsert``).  A
query whose content digest hits answers the solve in one round trip —
``QueryReply(cached=True, outputs=...)`` — without touching any server;
the per-entry byte cap keeps the broker cheap.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..config import AgentConfig
from ..errors import PdlSyntaxError
from ..problems.pdl import parse_pdl, render_pdl
from ..problems.spec import ProblemSpec
from ..protocol.messages import (
    CacheInsert,
    Candidate,
    DescribeProblem,
    FailureReport,
    ListProblems,
    Ping,
    Pong,
    ProblemDescription,
    ProblemList,
    QueryReply,
    QueryRequest,
    RegisterAck,
    RegisterServer,
    SyncDigest,
    SyncPull,
    SyncState,
    TransferReport,
    WorkloadReport,
)
from ..runtime import (
    DeadlineTable,
    DispatchComponent,
    Periodic,
    RetryChain,
    handles,
)
from ..store import ResultCache
from ..trace.events import EventLog
from ..trace.instruments import MetricsRegistry
from .fleet import HashRing, entry_fingerprint
from .qos import QOS_CLASSES, qos_index
from .predictor import (
    NetworkInfo,
    Prediction,
    predict,
    predict_batch,
    predict_for,
)
from .registry import ServerEntry, ServerTable
from .scheduler import (
    MinimumCompletionTime,
    SchedulingPolicy,
    make_policy,
    mct_top_k,
)

__all__ = ["Agent"]


class _AgentMetrics:
    """Pre-resolved instrument bundle — hooks stay a None check + inc,
    so the PR-2 query fast path pays nothing measurable."""

    __slots__ = (
        "queries", "query_rejects", "registrations", "register_rejects",
        "workload_reports", "failure_reports", "busy_reports",
        "transfer_reports", "describes", "lists", "mirror_forwards",
        "mirror_drops", "mirror_register_rejects", "query_forwards",
        "sync_digests", "sync_repairs",
        "servers_alive", "servers_total", "predicted_head_seconds",
        "cache_hits", "cache_misses", "cache_inserts", "cache_insert_rejects",
        "cache_evictions",
    )

    def __init__(self, m: MetricsRegistry):
        c, g, h = m.counter, m.gauge, m.histogram
        self.queries = c("agent.queries", "QueryRequests handled")
        self.query_rejects = c("agent.query_rejects",
                               "queries answered with no candidates")
        self.registrations = c("agent.registrations",
                               "server registrations accepted")
        self.register_rejects = c("agent.register_rejects",
                                  "server registrations refused")
        self.workload_reports = c("agent.workload_reports",
                                  "workload reports folded in")
        self.failure_reports = c("agent.failure_reports",
                                 "client failure reports received")
        self.busy_reports = c("agent.busy_reports",
                              "busy reports turned into workload penalties")
        self.transfer_reports = c("agent.transfer_reports",
                                  "transfer observations received")
        self.describes = c("agent.describes", "DescribeProblems answered")
        self.lists = c("agent.lists", "ListProblems answered")
        self.mirror_forwards = c("agent.mirror_forwards",
                                 "ground-truth messages mirrored to peers")
        self.mirror_drops = c("agent.mirror_drops",
                              "reports dropped for servers this agent "
                              "does not know (federation divergence)")
        self.mirror_register_rejects = c(
            "agent.mirror_register_rejects",
            "forwarded registrations rejected (registry divergence)")
        self.query_forwards = c("agent.query_forwards",
                                "queries hopped to their shard owner")
        self.sync_digests = c("agent.sync_digests",
                              "anti-entropy digests sent to peers")
        self.sync_repairs = c("agent.sync_repairs",
                              "registry entries healed by anti-entropy")
        self.servers_alive = g("agent.servers_alive",
                               "registered servers not under suspicion")
        self.servers_total = g("agent.servers_total", "registered servers")
        self.predicted_head_seconds = h(
            "agent.predicted_head_seconds",
            help="MCT prediction shipped for each query's head candidate",
        )
        self.cache_hits = c("agent.cache_hits",
                            "queries answered from the hot result cache")
        self.cache_misses = c("agent.cache_misses",
                              "digested queries not found in the hot cache")
        self.cache_inserts = c("agent.cache_inserts",
                               "server result publications accepted")
        self.cache_insert_rejects = c("agent.cache_insert_rejects",
                                      "publications refused (size/disabled)")
        self.cache_evictions = c("agent.cache_evictions",
                                 "hot-cache LRU evictions")


class Agent(DispatchComponent):
    """The broker component.

    Parameters
    ----------
    network:
        Link-estimate provider (the agent's "network measurements").
    cfg:
        Behaviour knobs; ``cfg.policy`` picks the scheduling policy.
    rng:
        Required only for stochastic policies (``random``).
    use_workload:
        A1 ablation switch — False makes the predictor ignore workload.
    assignment_feedback:
        Herd-damping switch — False disables the pending-assignment
        correction (A1b ablation).
    peers:
        Addresses of sibling agents in a federated deployment: ground
        truth (registrations, workload reports, failure reports) mirrors
        to them, so clients may query any agent.  Pending-assignment
        hints stay local — the deliberate consistency gap of a
        federation.
    """

    def __init__(
        self,
        *,
        network: NetworkInfo,
        cfg: AgentConfig = AgentConfig(),
        rng: Optional[np.random.Generator] = None,
        trace: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        use_workload: bool = True,
        assignment_feedback: bool = True,
        peers: tuple[str, ...] = (),
    ):
        self.cfg = cfg
        self.network = network
        self._metrics = _AgentMetrics(metrics) if metrics is not None else None
        #: sibling agents; registrations, workload and failure reports
        #: mirror to them so any agent can broker any request
        self.peers = tuple(peers)
        self.table = ServerTable()
        self.specs: dict[str, ProblemSpec] = {}
        self.policy: SchedulingPolicy = make_policy(cfg.policy, rng)
        self.trace = trace
        self.use_workload = use_workload
        self.assignment_feedback = assignment_feedback
        self.queries_served = 0
        #: per-QoS-class query audit (class name -> count); the agent
        #: brokers all classes alike, but the mix is operational signal
        self.queries_by_class = {name: 0 for name in QOS_CLASSES}
        self.registrations = 0
        self.reports_received = 0
        self.failures_reported = 0
        self.busy_reports_received = 0
        self.forwards_sent = 0
        #: mirrored/stray reports dropped for servers this agent does not
        #: know — the observable face of federation divergence
        self.mirror_drops = 0
        #: forwarded registrations this agent refused (PDL conflict etc.)
        #: — the *silent* divergence case: no NACK can reach the server
        self.forwarded_register_rejects = 0
        #: queries hopped to their shard owner (sharded fleets only)
        self.queries_forwarded = 0
        self.sync_digests_sent = 0
        #: registry entries healed by an anti-entropy pull (kept separate
        #: from ``registrations``: a repair is not a registration event)
        self.sync_repairs = 0
        #: registration-shaped record per known server, fingerprinted for
        #: anti-entropy comparison (direct + mirrored + sync-applied)
        self._records: dict[str, dict] = {}
        #: ids of servers registered *directly* with this agent — its
        #: ground truth, the only entries it vouches for in sync digests
        self._home: set[str] = set()
        #: problem -> owner ring; built at bind (needs the node address),
        #: None unless ``cfg.shard`` and peers exist
        self._ring: Optional[HashRing] = None
        #: last time each peer was heard from (any message); a shard
        #: owner that has gone silent is answered around, not forwarded to
        self._peer_seen: dict[str, float] = {}
        self._deadlines = DeadlineTable(self)
        self._sync = Periodic(
            self, cfg.sync_interval or 1.0, self._sync_tick,
            name="anti_entropy",
        )
        #: hot result cache fed by server CacheInsert publications; the
        #: clock lambda is only called once the component is bound
        self.result_cache = ResultCache(
            cfg.cache_entries,
            ttl=cfg.cache_ttl,
            clock=lambda: self.node.now(),
        )
        self._sweep = Periodic(
            self, cfg.liveness_timeout / 4.0, self._sweep_liveness,
            name="liveness_sweep",
        )
        #: ping suspect servers: a lost reply gets innocent servers
        #: blamed, and the hysteretic policy will not clear them (an
        #: unchanged idle load is never re-broadcast), so the agent
        #: checks on them itself
        self._probe = Periodic(
            self, cfg.suspect_probe_interval, self._probe_suspects,
            name="suspect_probe",
        )

    # ------------------------------------------------------------------
    def on_bind(self) -> None:
        self._sweep.start()
        if self.cfg.suspect_probe_interval > 0:
            self._probe.start()
        if self.peers and self.cfg.sync_interval > 0:
            self._sync.start()
        self._ring = (
            HashRing((self.node.address, *self.peers))
            if self.cfg.shard and self.peers
            else None
        )
        now = self.node.now()
        for peer in self.peers:
            self._peer_seen[peer] = now

    def on_restart(self) -> None:
        # Periodic.start() supersedes the previous chain, so delegating
        # here cannot double-arm even on the live TCP restart path; the
        # deadline table drops any in-flight sync pulls with it
        self._deadlines.clear()
        self.on_bind()

    def _note_peer(self, src: str) -> None:
        """Any traffic from a peer (digest, mirror, forwarded query) is
        proof of life — the shard forwarder consults this before hopping
        a query to an owner that may be down."""
        if src in self._peer_seen:
            self._peer_seen[src] = self.node.now()

    def _sweep_liveness(self) -> None:
        died = self.table.sweep_liveness(
            self.node.now(), self.cfg.liveness_timeout
        )
        for server_id in died:
            self._trace("server_presumed_dead", server_id=server_id)
        if died:
            self._update_server_gauges()

    def _probe_suspects(self) -> None:
        for entry in self.table.entries():
            if not entry.alive:
                self.node.send(entry.address, Ping())

    @handles(Pong)
    def _handle_pong(self, src: str, msg: Pong) -> None:
        revived = self.table.revive_address(src, self.node.now())
        for server_id in revived:
            self._trace("server_revived_by_probe", server_id=server_id)
        if revived:
            self._update_server_gauges()

    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    def _update_server_gauges(self) -> None:
        """Recount alive/total servers; called only on rare table-shape
        events (register, failure, sweep, probe revival) — never per
        query."""
        m = self._metrics
        if m is None:
            return
        entries = self.table.entries()
        m.servers_total.set(len(entries))
        m.servers_alive.set(sum(1 for e in entries if e.alive))

    # ------------------------------------------------------------------
    @handles(ListProblems)
    def _handle_list(self, src: str, msg: ListProblems) -> None:
        if self._metrics is not None:
            self._metrics.lists.inc()
        self.node.send(
            src,
            ProblemList(
                names=tuple(sorted(
                    n for n in self.table.known_problems()
                    if n.startswith(msg.prefix)
                )),
                prefix=msg.prefix,
            ),
        )

    @handles(Ping)
    def _handle_ping(self, src: str, msg: Ping) -> None:
        self.node.send(src, Pong(nonce=msg.nonce))

    # ------------------------------------------------------------------
    def _mirror(self, msg) -> None:
        """Fan ground truth out to sibling agents (never re-forwarded)."""
        for peer in self.peers:
            self.node.send(peer, msg)
            self.forwards_sent += 1
            if self._metrics is not None:
                self._metrics.mirror_forwards.inc()

    def _register_rejected(
        self, src: str, msg: RegisterServer, detail: str
    ) -> None:
        """One reject path for direct and mirrored registrations.

        A direct source gets the NACK it can act on.  A mirror copy has
        nobody to NACK — the server only ever hears from its own agent —
        so the refusal is counted and traced distinctly: this is exactly
        the registry-divergence event anti-entropy exists to repair.
        """
        if self._metrics is not None:
            self._metrics.register_rejects.inc()
        if msg.forwarded:
            self.forwarded_register_rejects += 1
            if self._metrics is not None:
                self._metrics.mirror_register_rejects.inc()
            self._trace(
                "mirror_register_rejected",
                server_id=msg.server_id,
                detail=detail,
            )
        else:
            self.node.send(src, RegisterAck(ok=False, detail=detail))

    @handles(RegisterServer)
    def _handle_register(self, src: str, msg: RegisterServer) -> None:
        if msg.forwarded:
            self._note_peer(src)
        try:
            specs = parse_pdl(msg.problems_pdl, source=f"<{msg.server_id}>")
        except PdlSyntaxError as exc:
            self._register_rejected(src, msg, str(exc))
            return
        if not specs:
            self._register_rejected(src, msg, "no problems in registration")
            return
        for spec in specs:
            known = self.specs.get(spec.name)
            if known is not None and known != spec:
                self._register_rejected(
                    src,
                    msg,
                    f"problem {spec.name!r} conflicts with an "
                    "existing description",
                )
                return
        for spec in specs:
            self.specs[spec.name] = spec
        # a mirror copy carries the server's real address; a direct
        # registration's address is the transport-level source
        server_address = msg.server_address if msg.forwarded else src
        if msg.forwarded and msg.server_endpoint:
            self.node.learn_endpoint(server_address, msg.server_endpoint)
        self.table.register(
            server_id=msg.server_id,
            address=server_address,
            host=msg.host,
            mflops=msg.mflops,
            problems={s.name for s in specs},
            now=self.node.now(),
            slots=max(1, int(msg.slots)),
        )
        # the sync record mirrors what a peer would need to rebuild this
        # registration; the fields are normalised identically on the
        # direct, mirrored and sync-applied paths so fingerprints agree
        record = {
            "server_id": msg.server_id,
            "address": server_address,
            "endpoint": (
                msg.server_endpoint if msg.forwarded
                else self.node.endpoint_of(src)
            ) or "",
            "host": msg.host,
            "mflops": float(msg.mflops),
            "slots": max(1, int(msg.slots)),
            "problems_pdl": msg.problems_pdl,
        }
        record["fp"] = entry_fingerprint(record)
        self._records[msg.server_id] = record
        if msg.forwarded:
            # the latest *direct* registration wins home-ness: if this
            # server re-registered with a peer, it is no longer ours
            self._home.discard(msg.server_id)
        else:
            self._home.add(msg.server_id)
        self.registrations += 1
        if self._metrics is not None:
            self._metrics.registrations.inc()
            self._update_server_gauges()
        self._trace(
            "server_registered",
            server_id=msg.server_id,
            host=msg.host,
            problems=len(specs),
            forwarded=msg.forwarded,
        )
        if not msg.forwarded:
            self.node.send(src, RegisterAck(ok=True))
            if self.peers:
                self._mirror(replace(
                    msg,
                    forwarded=True,
                    server_address=src,
                    server_endpoint=self.node.endpoint_of(src),
                ))

    @handles(WorkloadReport)
    def _handle_report(self, src: str, msg: WorkloadReport) -> None:
        if msg.forwarded:
            self._note_peer(src)
        if msg.server_id not in self.table:
            # a report for a server this agent never saw: for a mirror
            # copy this means the fleet diverged (the registration was
            # lost or rejected), so count and trace it instead of
            # vanishing — anti-entropy pulls the registration itself
            self.mirror_drops += 1
            if self._metrics is not None:
                self._metrics.mirror_drops.inc()
            self._trace(
                "mirror_drop",
                server_id=msg.server_id,
                forwarded=msg.forwarded,
            )
            return
        self.table.report_workload(
            msg.server_id, msg.workload, self.node.now(),
            inflight=msg.inflight,
        )
        self.reports_received += 1
        if self._metrics is not None:
            self._metrics.workload_reports.inc()
        self._trace(
            "workload_report", server_id=msg.server_id, workload=msg.workload
        )
        if not msg.forwarded and self.peers:
            self._mirror(replace(msg, forwarded=True))

    @handles(FailureReport)
    def _handle_failure(self, src: str, msg: FailureReport) -> None:
        if msg.forwarded:
            self._note_peer(src)
        self.failures_reported += 1
        if msg.kind == "busy":
            # the server answered — with an admission refusal — so it is
            # saturated, not dead: penalise its ranking for a while and
            # let the pool re-balance without losing capacity
            self.busy_reports_received += 1
            self.table.penalize(
                msg.server_id,
                self.node.now(),
                workload=self.cfg.busy_penalty_workload,
                hold_for=self.cfg.busy_penalty_seconds,
            )
            if self._metrics is not None:
                self._metrics.busy_reports.inc()
            self._trace(
                "busy_report",
                server_id=msg.server_id,
                problem=msg.problem,
                detail=msg.detail,
            )
        else:
            self.table.mark_failed(msg.server_id)
            if self._metrics is not None:
                self._metrics.failure_reports.inc()
                self._update_server_gauges()
            self._trace(
                "failure_report",
                server_id=msg.server_id,
                problem=msg.problem,
                detail=msg.detail,
            )
        if not msg.forwarded and self.peers:
            self._mirror(replace(msg, forwarded=True))

    @handles(TransferReport)
    def _handle_transfer_report(self, src: str, msg: TransferReport) -> None:
        if msg.forwarded:
            self._note_peer(src)
        if self._metrics is not None:
            self._metrics.transfer_reports.inc()
        observe = getattr(self.network, "observe", None)
        if observe is None:
            return  # static table: measurements are not folded in
        # measurements are ground truth like registrations and reports —
        # but unlike those, they arrive per completed request, so only a
        # learning fleet pays the mirror cost: with a static table every
        # agent would discard the copy and federation traffic would
        # scale with query volume instead of ground-truth events
        if not msg.forwarded and self.peers:
            self._mirror(replace(msg, forwarded=True))
        observe(msg.client_host, msg.server_host, msg.nbytes, msg.seconds)
        self._trace(
            "transfer_observed",
            pair=(msg.client_host, msg.server_host),
            bandwidth=msg.nbytes / msg.seconds if msg.seconds > 0 else 0.0,
        )

    # ------------------------------------------------------------------
    # anti-entropy: digest -> pull -> state.  Each agent vouches only
    # for its *home* servers (the ones registered directly with it);
    # every sync_interval it sends their fingerprints to all peers, and
    # a peer whose copy is missing or different pulls the entries.  A
    # mirror lost on the wire or rejected on arrival therefore heals
    # within one round instead of diverging forever.
    def _peer_reachable(self, peer: str) -> bool:
        """Heard from ``peer`` within two digest rounds?

        With anti-entropy on, every peer emits a digest each
        ``sync_interval`` even when its registry is empty, so the digest
        stream doubles as a heartbeat: two missed rounds of silence mark
        the peer down and the shard forwarder answers its queries
        locally.  With sync off there is no stream to judge silence
        against, so every peer counts as reachable.
        """
        if self.cfg.sync_interval <= 0:
            return True
        seen = self._peer_seen.get(peer)
        if seen is None:
            return False
        return self.node.now() - seen <= 2.0 * self.cfg.sync_interval

    def _sync_tick(self) -> None:
        digest = {
            sid: self._records[sid]["fp"]
            for sid in sorted(self._home)
            if sid in self._records
        }
        msg = SyncDigest(entries=digest)
        for peer in self.peers:
            # an empty digest still goes out: it is the liveness
            # heartbeat _peer_reachable judges silence against.  Sync
            # traffic never counts as a mirror forward — forwards_sent
            # stays a pure ground-truth-fan-out counter
            self.node.send(peer, msg)
            self.sync_digests_sent += 1
            if self._metrics is not None:
                self._metrics.sync_digests.inc()

    @handles(SyncDigest)
    def _handle_sync_digest(self, src: str, msg: SyncDigest) -> None:
        self._note_peer(src)
        stale = tuple(sorted(
            sid for sid, fp in msg.entries.items()
            if sid not in self._records or self._records[sid]["fp"] != fp
        ))
        if not stale:
            return
        self._trace("sync_pull", peer=src, servers=list(stale))
        RetryChain(
            self._deadlines,
            ("sync", src),
            interval=self.cfg.sync_pull_timeout,
            attempts=self.cfg.sync_pull_retries,
            send=lambda attempt: self.node.send(
                src, SyncPull(server_ids=stale)
            ),
            # exhaustion is harmless: the peer's next digest round
            # starts a fresh pull if the gap is still there
            on_exhausted=lambda: None,
        ).start()

    @handles(SyncPull)
    def _handle_sync_pull(self, src: str, msg: SyncPull) -> None:
        self._note_peer(src)
        now = self.node.now()
        entries = []
        for sid in msg.server_ids:
            record = self._records.get(sid)
            if record is None or sid not in self._home or sid not in self.table:
                continue  # only vouch for home servers still registered
            entry = self.table.get(sid)
            entries.append((
                record["server_id"],
                record["address"],
                record["endpoint"],
                record["host"],
                record["mflops"],
                record["slots"],
                record["problems_pdl"],
                entry.current_workload(now),
                entry.inflight,
                entry.alive,
            ))
        if entries:
            self.node.send(src, SyncState(entries=tuple(entries)))

    @handles(SyncState)
    def _handle_sync_state(self, src: str, msg: SyncState) -> None:
        self._note_peer(src)
        self._deadlines.cancel(("sync", src))
        for entry in msg.entries:
            self._apply_sync_entry(entry)

    def _apply_sync_entry(self, entry) -> None:
        (sid, address, endpoint, host, mflops, slots,
         problems_pdl, workload, inflight, alive) = entry
        record = {
            "server_id": sid,
            "address": address,
            "endpoint": endpoint or "",
            "host": host,
            "mflops": float(mflops),
            "slots": max(1, int(slots)),
            "problems_pdl": problems_pdl,
        }
        record["fp"] = entry_fingerprint(record)
        if sid in self._records and self._records[sid]["fp"] == record["fp"]:
            return  # healed already (a racing mirror or an earlier pull)
        try:
            specs = parse_pdl(problems_pdl, source=f"<sync:{sid}>")
        except PdlSyntaxError as exc:
            self._trace("sync_rejected", server_id=sid, detail=str(exc))
            return
        if not specs:
            return
        for spec in specs:
            known = self.specs.get(spec.name)
            if known is not None and known != spec:
                # the home agent holds a conflicting description: the
                # same divergence class as a rejected forwarded
                # registration, counted under the same metric
                self.forwarded_register_rejects += 1
                if self._metrics is not None:
                    self._metrics.mirror_register_rejects.inc()
                self._trace(
                    "mirror_register_rejected",
                    server_id=sid,
                    detail=f"sync conflict on problem {spec.name!r}",
                )
                return
        for spec in specs:
            self.specs[spec.name] = spec
        if endpoint:
            self.node.learn_endpoint(address, endpoint)
        known_before = sid in self.table
        self.table.register(
            server_id=sid,
            address=address,
            host=host,
            mflops=float(mflops),
            problems={s.name for s in specs},
            now=self.node.now(),
            slots=max(1, int(slots)),
        )
        if not known_before:
            # seed the home agent's workload view; a server already in
            # the table keeps its own (possibly fresher) report stream
            self.table.report_workload(
                sid, float(workload), self.node.now(),
                inflight=max(0, int(inflight)),
            )
        if not alive:
            self.table.mark_failed(sid)
        self._records[sid] = record
        self._home.discard(sid)
        # a repair is not a registration event: ``registrations`` stays
        # a direct+mirror arrival counter, repairs get their own ledger
        self.sync_repairs += 1
        if self._metrics is not None:
            self._metrics.sync_repairs.inc()
            self._update_server_gauges()
        self._trace("sync_repair", server_id=sid, alive=bool(alive))

    # ------------------------------------------------------------------
    def predict_entry(
        self,
        entry: ServerEntry,
        spec: ProblemSpec,
        env: dict,
        client_host: str,
        *,
        resident_bytes: float = 0.0,
    ) -> Prediction:
        """The prediction the agent makes for one candidate server.

        The reported workload degrades the server's effective speed
        (processor sharing against other users), divided across the
        server's advertised executor slots.  Requests the agent has
        recently steered there but that no report reflects yet are
        modelled as FIFO *queue wait* — each inflates the compute term by
        one service time — because a server runs at most ``slots``
        requests at a time: on a multi-slot server only every
        ``slots``-th pending request adds a queueing round, so the hint
        count divides by the slot count.

        ``resident_bytes`` is how many of the request's input bytes are
        already resident on this candidate (handle-referenced operands
        homed there): those never cross the wire, so the send term
        charges only the difference.  The default 0.0 takes the exact
        pre-locality code path — handle-free queries rank bit-identically.
        """
        now = self.node.now()
        if resident_bytes > 0.0:
            base = predict(
                flops=spec.flops(env),
                input_bytes=max(0.0, spec.input_bytes(env) - resident_bytes),
                output_bytes=spec.output_bytes(env),
                link=self.network.link(client_host, entry.host),
                peak_mflops=entry.mflops,
                workload=entry.current_workload(now),
                slots=entry.slots,
                use_workload=self.use_workload,
            )
        else:
            base = predict_for(
                spec,
                env,
                link=self.network.link(client_host, entry.host),
                peak_mflops=entry.mflops,
                workload=entry.current_workload(now),
                slots=entry.slots,
                use_workload=self.use_workload,
            )
        return self._inflate_pending(base, entry, now)

    def _inflate_pending(
        self, base: Prediction, entry: ServerEntry, now: float
    ) -> Prediction:
        if not self.assignment_feedback:
            return base
        pending = entry.live_pending(now)
        if pending == 0:
            return base
        # every full cohort of `slots` pending requests costs one more
        # service time; slots=1 keeps the exact pre-slot inflation
        rounds = pending // entry.slots if entry.slots > 1 else pending
        if rounds == 0:
            return base
        return Prediction(
            send_seconds=base.send_seconds,
            compute_seconds=base.compute_seconds * (1 + rounds),
            recv_seconds=base.recv_seconds,
        )

    def _rank_mct_vectorized(
        self,
        entries: list[ServerEntry],
        *,
        flops: float,
        input_bytes: float,
        output_bytes: float,
        client_host: str,
        now: float,
        resident: Optional[dict] = None,
    ) -> tuple[list[ServerEntry], list[float]]:
        """MCT fast path: batch-predict all candidates, select top-k.

        One numpy evaluation replaces len(entries) scalar predictions,
        and partial selection replaces the full sort; the result is
        bit-identical to ranking with :meth:`predict_entry` and slicing.
        ``resident`` (server_id -> bytes already homed there) switches
        the send term to per-candidate effective input bytes; ``None``
        or empty keeps the scalar broadcast — and the exact pre-locality
        arithmetic.
        """
        n = len(entries)
        latency = np.empty(n)
        bandwidth = np.empty(n)
        peak = np.empty(n)
        workload = np.empty(n)
        pending = np.zeros(n, dtype=np.int64)
        slots = np.ones(n, dtype=np.int64)
        feedback = self.assignment_feedback
        link_of = self.network.link
        # many servers share a host; one link lookup per distinct host
        links: dict[str, tuple[float, float]] = {}
        for i, e in enumerate(entries):
            link = links.get(e.host)
            if link is None:
                est = link_of(client_host, e.host)
                link = (est.latency, est.bandwidth)
                links[e.host] = link
            latency[i], bandwidth[i] = link
            peak[i] = e.mflops
            workload[i] = e.current_workload(now)
            slots[i] = e.slots
            if feedback and e.pending_expiries:
                pending[i] = e.live_pending(now)
        in_bytes: "float | np.ndarray" = input_bytes
        if resident:
            in_bytes = np.array(
                [
                    max(0.0, input_bytes - resident.get(e.server_id, 0))
                    for e in entries
                ],
                dtype=np.float64,
            )
        totals = predict_batch(
            flops=flops,
            input_bytes=in_bytes,
            output_bytes=output_bytes,
            latency=latency,
            bandwidth=bandwidth,
            peak_mflops=peak,
            workload=workload,
            pending=pending,
            slots=slots,
            use_workload=self.use_workload,
        )
        order = mct_top_k(entries, totals, self.cfg.candidate_list_length)
        return [entries[i] for i in order], [float(totals[i]) for i in order]

    @handles(CacheInsert)
    def _handle_cache_insert(self, src: str, msg: CacheInsert) -> None:
        """Accept a server's hot-result publication (size-capped)."""
        if msg.forwarded:
            self._note_peer(src)
        # a publication reaches only the server's own agent: without the
        # mirror a repeat query through any *other* agent misses the
        # one-RTT hot-cache answer.  The same per-entry byte cap gates
        # the fan-out, so peers are never sent what this agent would
        # refuse on size — but a cache-disabled agent still relays
        if (
            not msg.forwarded
            and self.peers
            and 0 < msg.nbytes <= self.cfg.cache_entry_bytes
        ):
            self._mirror(replace(msg, forwarded=True))
        if (
            not self.result_cache.enabled
            or msg.nbytes <= 0
            or msg.nbytes > self.cfg.cache_entry_bytes
        ):
            if self._metrics is not None:
                self._metrics.cache_insert_rejects.inc()
            return
        evictions_before = self.result_cache.evictions
        self.result_cache.put(msg.digest, (tuple(msg.outputs), msg.nbytes))
        if self._metrics is not None:
            self._metrics.cache_inserts.inc()
            delta = self.result_cache.evictions - evictions_before
            if delta:
                self._metrics.cache_evictions.inc(delta)
        self._trace(
            "cache_insert",
            digest=msg.digest,
            problem=msg.problem,
            nbytes=msg.nbytes,
        )

    @handles(QueryRequest)
    def _handle_query(self, src: str, msg: QueryRequest) -> None:
        # a forwarded query answers the *original* client directly — the
        # forwarding agent is out of the loop after one hop
        reply_to = msg.reply_to or src
        if msg.forwarded:
            self._note_peer(src)
            if msg.reply_to and msg.reply_endpoint:
                self.node.learn_endpoint(msg.reply_to, msg.reply_endpoint)
        if self._ring is not None and not msg.forwarded:
            owner = self._ring.owner(msg.problem)
            if owner != self.node.address and self._peer_reachable(owner):
                # hop once to the shard owner; ``forwarded`` guards the
                # second hop exactly like the mirror messages.  An
                # unreachable owner is answered around, not forwarded
                # to: the registry is fully replicated, so this agent
                # can broker the query itself
                self.queries_forwarded += 1
                if self._metrics is not None:
                    self._metrics.query_forwards.inc()
                self._trace(
                    "query_forwarded",
                    problem=msg.problem,
                    owner=owner,
                    client=src,
                )
                self.node.send(owner, replace(
                    msg,
                    forwarded=True,
                    reply_to=src,
                    reply_endpoint=self.node.endpoint_of(src) or "",
                ))
                return
        self.queries_served += 1
        self.queries_by_class[QOS_CLASSES[qos_index(msg.qos)]] += 1
        if self._metrics is not None:
            self._metrics.queries.inc()
        if msg.digest and self.result_cache.enabled:
            entry = self.result_cache.get(msg.digest)
            if entry is not None:
                # answer the solve itself, in this one round trip: no
                # candidate ranking, no assignment hint, no server
                outputs, nbytes = entry
                if self._metrics is not None:
                    self._metrics.cache_hits.inc()
                self._trace(
                    "cache_answer",
                    problem=msg.problem,
                    client=reply_to,
                    nbytes=nbytes,
                )
                self.node.send(
                    reply_to,
                    QueryReply(
                        ok=True, tag=msg.tag, cached=True, outputs=outputs
                    ),
                )
                return
            if self._metrics is not None:
                self._metrics.cache_misses.inc()
        spec = self.specs.get(msg.problem)
        if spec is None:
            if self._metrics is not None:
                self._metrics.query_rejects.inc()
            self.node.send(
                reply_to,
                QueryReply(ok=False, detail=f"unknown problem {msg.problem!r}", tag=msg.tag),
            )
            return
        entries = self.table.candidates_for(msg.problem, exclude=msg.exclude)
        if not entries:
            if self._metrics is not None:
                self._metrics.query_rejects.inc()
            self.node.send(
                reply_to,
                QueryReply(
                    ok=False,
                    detail=f"no server available for {msg.problem!r}",
                    tag=msg.tag,
                    retryable=True,  # suspects may report back in
                ),
            )
            return
        env = {k: int(v) for k, v in msg.sizes.items()}
        # the spec-derived quantities depend only on (spec, env): one
        # evaluation per query, not one per candidate
        flops = spec.flops(env)
        input_bytes = spec.input_bytes(env)
        output_bytes = spec.output_bytes(env)
        now = self.node.now()
        # locality: input bytes already resident on a candidate (handle
        # operands homed there) never cross the wire; an empty map takes
        # every pre-locality code path untouched
        resident = (
            {str(k): int(v) for k, v in msg.resident.items()}
            if msg.resident else {}
        )

        if isinstance(self.policy, MinimumCompletionTime):
            top, predicted = self._rank_mct_vectorized(
                entries,
                flops=flops,
                input_bytes=input_bytes,
                output_bytes=output_bytes,
                client_host=msg.client_host,
                now=now,
                resident=resident,
            )
        else:
            predictions: dict[str, Prediction] = {}

            def predict_cached(entry: ServerEntry) -> Prediction:
                cached = predictions.get(entry.server_id)
                if cached is None:
                    in_bytes = input_bytes
                    if resident:
                        in_bytes = max(
                            0.0,
                            input_bytes - resident.get(entry.server_id, 0),
                        )
                    base = predict(
                        flops=flops,
                        input_bytes=in_bytes,
                        output_bytes=output_bytes,
                        link=self.network.link(msg.client_host, entry.host),
                        peak_mflops=entry.mflops,
                        workload=entry.current_workload(now),
                        slots=entry.slots,
                        use_workload=self.use_workload,
                    )
                    cached = self._inflate_pending(base, entry, now)
                    predictions[entry.server_id] = cached
                return cached

            ranked = self.policy.rank(entries, predict_cached)
            top = ranked[: self.cfg.candidate_list_length]
            predicted = [predict_cached(e).total for e in top]
        if top:
            # assume the client sends to the head of the list; hold the
            # hint for roughly that request's predicted lifetime
            hold = min(600.0, max(1.0, predicted[0] * 1.5))
            self.table.note_assignment(top[0].server_id, now, hold_for=hold)
            if self._metrics is not None:
                self._metrics.predicted_head_seconds.observe(predicted[0])
        candidates = [
            Candidate(
                server_id=e.server_id,
                address=e.address,
                host=e.host,
                predicted_seconds=seconds,
                endpoint=self.node.endpoint_of(e.address),
            )
            for e, seconds in zip(top, predicted)
        ]
        self._trace(
            "query",
            problem=msg.problem,
            client=reply_to,
            candidates=[c.server_id for c in candidates],
            predicted=[c.predicted_seconds for c in candidates],
        )
        self.node.send(
            reply_to, QueryReply.from_candidates(candidates, tag=msg.tag)
        )

    @handles(DescribeProblem)
    def _handle_describe(self, src: str, msg: DescribeProblem) -> None:
        if self._metrics is not None:
            self._metrics.describes.inc()
        spec = self.specs.get(msg.problem)
        if spec is None:
            self.node.send(
                src,
                ProblemDescription(
                    ok=False,
                    problem=msg.problem,
                    detail=f"unknown problem {msg.problem!r}",
                ),
            )
        else:
            self.node.send(
                src, ProblemDescription(ok=True, problem=msg.problem, pdl=render_pdl(spec))
            )
