"""The NetSolve agent: resource broker and scheduler.

The agent never touches problem data.  It keeps the server table, the
problem-description catalogue uploaded by registering servers, and the
network-characteristics table; for every client query it evaluates the
completion-time predictor over the live candidates and returns a ranked
list.  Failure reports from clients mark servers suspect; a liveness
sweep retires servers whose workload reports stop arriving.

One deliberate exception to the "never touches problem data" rule: with
``cache_entries > 0`` the agent keeps a *hot* result cache of small
outputs that servers publish after fresh computes (``CacheInsert``).  A
query whose content digest hits answers the solve in one round trip —
``QueryReply(cached=True, outputs=...)`` — without touching any server;
the per-entry byte cap keeps the broker cheap.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import AgentConfig
from ..errors import PdlSyntaxError
from ..problems.pdl import parse_pdl, render_pdl
from ..problems.spec import ProblemSpec
from ..protocol.messages import (
    CacheInsert,
    Candidate,
    DescribeProblem,
    FailureReport,
    ListProblems,
    Ping,
    Pong,
    ProblemDescription,
    ProblemList,
    QueryReply,
    QueryRequest,
    RegisterAck,
    RegisterServer,
    TransferReport,
    WorkloadReport,
)
from ..runtime import DispatchComponent, Periodic, handles
from ..store import ResultCache
from ..trace.events import EventLog
from ..trace.instruments import MetricsRegistry
from .predictor import (
    NetworkInfo,
    Prediction,
    predict,
    predict_batch,
    predict_for,
)
from .registry import ServerEntry, ServerTable
from .scheduler import (
    MinimumCompletionTime,
    SchedulingPolicy,
    make_policy,
    mct_top_k,
)

__all__ = ["Agent"]


class _AgentMetrics:
    """Pre-resolved instrument bundle — hooks stay a None check + inc,
    so the PR-2 query fast path pays nothing measurable."""

    __slots__ = (
        "queries", "query_rejects", "registrations", "register_rejects",
        "workload_reports", "failure_reports", "busy_reports",
        "transfer_reports", "describes", "lists", "mirror_forwards",
        "servers_alive", "servers_total", "predicted_head_seconds",
        "cache_hits", "cache_misses", "cache_inserts", "cache_insert_rejects",
        "cache_evictions",
    )

    def __init__(self, m: MetricsRegistry):
        c, g, h = m.counter, m.gauge, m.histogram
        self.queries = c("agent.queries", "QueryRequests handled")
        self.query_rejects = c("agent.query_rejects",
                               "queries answered with no candidates")
        self.registrations = c("agent.registrations",
                               "server registrations accepted")
        self.register_rejects = c("agent.register_rejects",
                                  "server registrations refused")
        self.workload_reports = c("agent.workload_reports",
                                  "workload reports folded in")
        self.failure_reports = c("agent.failure_reports",
                                 "client failure reports received")
        self.busy_reports = c("agent.busy_reports",
                              "busy reports turned into workload penalties")
        self.transfer_reports = c("agent.transfer_reports",
                                  "transfer observations received")
        self.describes = c("agent.describes", "DescribeProblems answered")
        self.lists = c("agent.lists", "ListProblems answered")
        self.mirror_forwards = c("agent.mirror_forwards",
                                 "ground-truth messages mirrored to peers")
        self.servers_alive = g("agent.servers_alive",
                               "registered servers not under suspicion")
        self.servers_total = g("agent.servers_total", "registered servers")
        self.predicted_head_seconds = h(
            "agent.predicted_head_seconds",
            help="MCT prediction shipped for each query's head candidate",
        )
        self.cache_hits = c("agent.cache_hits",
                            "queries answered from the hot result cache")
        self.cache_misses = c("agent.cache_misses",
                              "digested queries not found in the hot cache")
        self.cache_inserts = c("agent.cache_inserts",
                               "server result publications accepted")
        self.cache_insert_rejects = c("agent.cache_insert_rejects",
                                      "publications refused (size/disabled)")
        self.cache_evictions = c("agent.cache_evictions",
                                 "hot-cache LRU evictions")


class Agent(DispatchComponent):
    """The broker component.

    Parameters
    ----------
    network:
        Link-estimate provider (the agent's "network measurements").
    cfg:
        Behaviour knobs; ``cfg.policy`` picks the scheduling policy.
    rng:
        Required only for stochastic policies (``random``).
    use_workload:
        A1 ablation switch — False makes the predictor ignore workload.
    assignment_feedback:
        Herd-damping switch — False disables the pending-assignment
        correction (A1b ablation).
    peers:
        Addresses of sibling agents in a federated deployment: ground
        truth (registrations, workload reports, failure reports) mirrors
        to them, so clients may query any agent.  Pending-assignment
        hints stay local — the deliberate consistency gap of a
        federation.
    """

    def __init__(
        self,
        *,
        network: NetworkInfo,
        cfg: AgentConfig = AgentConfig(),
        rng: Optional[np.random.Generator] = None,
        trace: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        use_workload: bool = True,
        assignment_feedback: bool = True,
        peers: tuple[str, ...] = (),
    ):
        self.cfg = cfg
        self.network = network
        self._metrics = _AgentMetrics(metrics) if metrics is not None else None
        #: sibling agents; registrations, workload and failure reports
        #: mirror to them so any agent can broker any request
        self.peers = tuple(peers)
        self.table = ServerTable()
        self.specs: dict[str, ProblemSpec] = {}
        self.policy: SchedulingPolicy = make_policy(cfg.policy, rng)
        self.trace = trace
        self.use_workload = use_workload
        self.assignment_feedback = assignment_feedback
        self.queries_served = 0
        self.registrations = 0
        self.reports_received = 0
        self.failures_reported = 0
        self.busy_reports_received = 0
        self.forwards_sent = 0
        #: hot result cache fed by server CacheInsert publications; the
        #: clock lambda is only called once the component is bound
        self.result_cache = ResultCache(
            cfg.cache_entries,
            ttl=cfg.cache_ttl,
            clock=lambda: self.node.now(),
        )
        self._sweep = Periodic(
            self, cfg.liveness_timeout / 4.0, self._sweep_liveness,
            name="liveness_sweep",
        )
        #: ping suspect servers: a lost reply gets innocent servers
        #: blamed, and the hysteretic policy will not clear them (an
        #: unchanged idle load is never re-broadcast), so the agent
        #: checks on them itself
        self._probe = Periodic(
            self, cfg.suspect_probe_interval, self._probe_suspects,
            name="suspect_probe",
        )

    # ------------------------------------------------------------------
    def on_bind(self) -> None:
        self._sweep.start()
        if self.cfg.suspect_probe_interval > 0:
            self._probe.start()

    def on_restart(self) -> None:
        # Periodic.start() supersedes the previous chain, so delegating
        # here cannot double-arm even on the live TCP restart path
        self.on_bind()

    def _sweep_liveness(self) -> None:
        died = self.table.sweep_liveness(
            self.node.now(), self.cfg.liveness_timeout
        )
        for server_id in died:
            self._trace("server_presumed_dead", server_id=server_id)
        if died:
            self._update_server_gauges()

    def _probe_suspects(self) -> None:
        for entry in self.table.entries():
            if not entry.alive:
                self.node.send(entry.address, Ping())

    @handles(Pong)
    def _handle_pong(self, src: str, msg: Pong) -> None:
        revived = self.table.revive_address(src, self.node.now())
        for server_id in revived:
            self._trace("server_revived_by_probe", server_id=server_id)
        if revived:
            self._update_server_gauges()

    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    def _update_server_gauges(self) -> None:
        """Recount alive/total servers; called only on rare table-shape
        events (register, failure, sweep, probe revival) — never per
        query."""
        m = self._metrics
        if m is None:
            return
        entries = self.table.entries()
        m.servers_total.set(len(entries))
        m.servers_alive.set(sum(1 for e in entries if e.alive))

    # ------------------------------------------------------------------
    @handles(ListProblems)
    def _handle_list(self, src: str, msg: ListProblems) -> None:
        if self._metrics is not None:
            self._metrics.lists.inc()
        self.node.send(
            src,
            ProblemList(
                names=tuple(sorted(
                    n for n in self.table.known_problems()
                    if n.startswith(msg.prefix)
                )),
                prefix=msg.prefix,
            ),
        )

    @handles(Ping)
    def _handle_ping(self, src: str, msg: Ping) -> None:
        self.node.send(src, Pong(nonce=msg.nonce))

    # ------------------------------------------------------------------
    def _mirror(self, msg) -> None:
        """Fan ground truth out to sibling agents (never re-forwarded)."""
        for peer in self.peers:
            self.node.send(peer, msg)
            self.forwards_sent += 1
            if self._metrics is not None:
                self._metrics.mirror_forwards.inc()

    @handles(RegisterServer)
    def _handle_register(self, src: str, msg: RegisterServer) -> None:
        try:
            specs = parse_pdl(msg.problems_pdl, source=f"<{msg.server_id}>")
        except PdlSyntaxError as exc:
            if self._metrics is not None:
                self._metrics.register_rejects.inc()
            if not msg.forwarded:
                self.node.send(src, RegisterAck(ok=False, detail=str(exc)))
            return
        if not specs:
            if self._metrics is not None:
                self._metrics.register_rejects.inc()
            if not msg.forwarded:
                self.node.send(
                    src,
                    RegisterAck(ok=False, detail="no problems in registration"),
                )
            return
        for spec in specs:
            known = self.specs.get(spec.name)
            if known is not None and known != spec:
                if self._metrics is not None:
                    self._metrics.register_rejects.inc()
                if not msg.forwarded:
                    self.node.send(
                        src,
                        RegisterAck(
                            ok=False,
                            detail=f"problem {spec.name!r} conflicts with an "
                            "existing description",
                        ),
                    )
                return
        for spec in specs:
            self.specs[spec.name] = spec
        # a mirror copy carries the server's real address; a direct
        # registration's address is the transport-level source
        server_address = msg.server_address if msg.forwarded else src
        if msg.forwarded and msg.server_endpoint:
            self.node.learn_endpoint(server_address, msg.server_endpoint)
        self.table.register(
            server_id=msg.server_id,
            address=server_address,
            host=msg.host,
            mflops=msg.mflops,
            problems={s.name for s in specs},
            now=self.node.now(),
            slots=max(1, int(msg.slots)),
        )
        self.registrations += 1
        if self._metrics is not None:
            self._metrics.registrations.inc()
            self._update_server_gauges()
        self._trace(
            "server_registered",
            server_id=msg.server_id,
            host=msg.host,
            problems=len(specs),
            forwarded=msg.forwarded,
        )
        if not msg.forwarded:
            self.node.send(src, RegisterAck(ok=True))
            if self.peers:
                from dataclasses import replace

                self._mirror(replace(
                    msg,
                    forwarded=True,
                    server_address=src,
                    server_endpoint=self.node.endpoint_of(src),
                ))

    @handles(WorkloadReport)
    def _handle_report(self, src: str, msg: WorkloadReport) -> None:
        if msg.server_id not in self.table:
            return  # report from a server that never registered: ignore
        self.table.report_workload(
            msg.server_id, msg.workload, self.node.now(),
            inflight=msg.inflight,
        )
        self.reports_received += 1
        if self._metrics is not None:
            self._metrics.workload_reports.inc()
        self._trace(
            "workload_report", server_id=msg.server_id, workload=msg.workload
        )
        if not msg.forwarded and self.peers:
            from dataclasses import replace

            self._mirror(replace(msg, forwarded=True))

    @handles(FailureReport)
    def _handle_failure(self, src: str, msg: FailureReport) -> None:
        self.failures_reported += 1
        if msg.kind == "busy":
            # the server answered — with an admission refusal — so it is
            # saturated, not dead: penalise its ranking for a while and
            # let the pool re-balance without losing capacity
            self.busy_reports_received += 1
            self.table.penalize(
                msg.server_id,
                self.node.now(),
                workload=self.cfg.busy_penalty_workload,
                hold_for=self.cfg.busy_penalty_seconds,
            )
            if self._metrics is not None:
                self._metrics.busy_reports.inc()
            self._trace(
                "busy_report",
                server_id=msg.server_id,
                problem=msg.problem,
                detail=msg.detail,
            )
        else:
            self.table.mark_failed(msg.server_id)
            if self._metrics is not None:
                self._metrics.failure_reports.inc()
                self._update_server_gauges()
            self._trace(
                "failure_report",
                server_id=msg.server_id,
                problem=msg.problem,
                detail=msg.detail,
            )
        if not msg.forwarded and self.peers:
            from dataclasses import replace

            self._mirror(replace(msg, forwarded=True))

    @handles(TransferReport)
    def _handle_transfer_report(self, src: str, msg: TransferReport) -> None:
        if self._metrics is not None:
            self._metrics.transfer_reports.inc()
        observe = getattr(self.network, "observe", None)
        if observe is None:
            return  # static table: measurements are not folded in
        observe(msg.client_host, msg.server_host, msg.nbytes, msg.seconds)
        self._trace(
            "transfer_observed",
            pair=(msg.client_host, msg.server_host),
            bandwidth=msg.nbytes / msg.seconds if msg.seconds > 0 else 0.0,
        )

    # ------------------------------------------------------------------
    def predict_entry(
        self, entry: ServerEntry, spec: ProblemSpec, env: dict, client_host: str
    ) -> Prediction:
        """The prediction the agent makes for one candidate server.

        The reported workload degrades the server's effective speed
        (processor sharing against other users), divided across the
        server's advertised executor slots.  Requests the agent has
        recently steered there but that no report reflects yet are
        modelled as FIFO *queue wait* — each inflates the compute term by
        one service time — because a server runs at most ``slots``
        requests at a time: on a multi-slot server only every
        ``slots``-th pending request adds a queueing round, so the hint
        count divides by the slot count.
        """
        now = self.node.now()
        base = predict_for(
            spec,
            env,
            link=self.network.link(client_host, entry.host),
            peak_mflops=entry.mflops,
            workload=entry.current_workload(now),
            slots=entry.slots,
            use_workload=self.use_workload,
        )
        return self._inflate_pending(base, entry, now)

    def _inflate_pending(
        self, base: Prediction, entry: ServerEntry, now: float
    ) -> Prediction:
        if not self.assignment_feedback:
            return base
        pending = entry.live_pending(now)
        if pending == 0:
            return base
        # every full cohort of `slots` pending requests costs one more
        # service time; slots=1 keeps the exact pre-slot inflation
        rounds = pending // entry.slots if entry.slots > 1 else pending
        if rounds == 0:
            return base
        return Prediction(
            send_seconds=base.send_seconds,
            compute_seconds=base.compute_seconds * (1 + rounds),
            recv_seconds=base.recv_seconds,
        )

    def _rank_mct_vectorized(
        self,
        entries: list[ServerEntry],
        *,
        flops: float,
        input_bytes: float,
        output_bytes: float,
        client_host: str,
        now: float,
    ) -> tuple[list[ServerEntry], list[float]]:
        """MCT fast path: batch-predict all candidates, select top-k.

        One numpy evaluation replaces len(entries) scalar predictions,
        and partial selection replaces the full sort; the result is
        bit-identical to ranking with :meth:`predict_entry` and slicing.
        """
        n = len(entries)
        latency = np.empty(n)
        bandwidth = np.empty(n)
        peak = np.empty(n)
        workload = np.empty(n)
        pending = np.zeros(n, dtype=np.int64)
        slots = np.ones(n, dtype=np.int64)
        feedback = self.assignment_feedback
        link_of = self.network.link
        # many servers share a host; one link lookup per distinct host
        links: dict[str, tuple[float, float]] = {}
        for i, e in enumerate(entries):
            link = links.get(e.host)
            if link is None:
                est = link_of(client_host, e.host)
                link = (est.latency, est.bandwidth)
                links[e.host] = link
            latency[i], bandwidth[i] = link
            peak[i] = e.mflops
            workload[i] = e.current_workload(now)
            slots[i] = e.slots
            if feedback and e.pending_expiries:
                pending[i] = e.live_pending(now)
        totals = predict_batch(
            flops=flops,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            latency=latency,
            bandwidth=bandwidth,
            peak_mflops=peak,
            workload=workload,
            pending=pending,
            slots=slots,
            use_workload=self.use_workload,
        )
        order = mct_top_k(entries, totals, self.cfg.candidate_list_length)
        return [entries[i] for i in order], [float(totals[i]) for i in order]

    @handles(CacheInsert)
    def _handle_cache_insert(self, src: str, msg: CacheInsert) -> None:
        """Accept a server's hot-result publication (size-capped)."""
        if (
            not self.result_cache.enabled
            or msg.nbytes <= 0
            or msg.nbytes > self.cfg.cache_entry_bytes
        ):
            if self._metrics is not None:
                self._metrics.cache_insert_rejects.inc()
            return
        evictions_before = self.result_cache.evictions
        self.result_cache.put(msg.digest, (tuple(msg.outputs), msg.nbytes))
        if self._metrics is not None:
            self._metrics.cache_inserts.inc()
            delta = self.result_cache.evictions - evictions_before
            if delta:
                self._metrics.cache_evictions.inc(delta)
        self._trace(
            "cache_insert",
            digest=msg.digest,
            problem=msg.problem,
            nbytes=msg.nbytes,
        )

    @handles(QueryRequest)
    def _handle_query(self, src: str, msg: QueryRequest) -> None:
        self.queries_served += 1
        if self._metrics is not None:
            self._metrics.queries.inc()
        if msg.digest and self.result_cache.enabled:
            entry = self.result_cache.get(msg.digest)
            if entry is not None:
                # answer the solve itself, in this one round trip: no
                # candidate ranking, no assignment hint, no server
                outputs, nbytes = entry
                if self._metrics is not None:
                    self._metrics.cache_hits.inc()
                self._trace(
                    "cache_answer",
                    problem=msg.problem,
                    client=src,
                    nbytes=nbytes,
                )
                self.node.send(
                    src,
                    QueryReply(
                        ok=True, tag=msg.tag, cached=True, outputs=outputs
                    ),
                )
                return
            if self._metrics is not None:
                self._metrics.cache_misses.inc()
        spec = self.specs.get(msg.problem)
        if spec is None:
            if self._metrics is not None:
                self._metrics.query_rejects.inc()
            self.node.send(
                src,
                QueryReply(ok=False, detail=f"unknown problem {msg.problem!r}", tag=msg.tag),
            )
            return
        entries = self.table.candidates_for(msg.problem, exclude=msg.exclude)
        if not entries:
            if self._metrics is not None:
                self._metrics.query_rejects.inc()
            self.node.send(
                src,
                QueryReply(
                    ok=False,
                    detail=f"no server available for {msg.problem!r}",
                    tag=msg.tag,
                    retryable=True,  # suspects may report back in
                ),
            )
            return
        env = {k: int(v) for k, v in msg.sizes.items()}
        # the spec-derived quantities depend only on (spec, env): one
        # evaluation per query, not one per candidate
        flops = spec.flops(env)
        input_bytes = spec.input_bytes(env)
        output_bytes = spec.output_bytes(env)
        now = self.node.now()

        if isinstance(self.policy, MinimumCompletionTime):
            top, predicted = self._rank_mct_vectorized(
                entries,
                flops=flops,
                input_bytes=input_bytes,
                output_bytes=output_bytes,
                client_host=msg.client_host,
                now=now,
            )
        else:
            predictions: dict[str, Prediction] = {}

            def predict_cached(entry: ServerEntry) -> Prediction:
                cached = predictions.get(entry.server_id)
                if cached is None:
                    base = predict(
                        flops=flops,
                        input_bytes=input_bytes,
                        output_bytes=output_bytes,
                        link=self.network.link(msg.client_host, entry.host),
                        peak_mflops=entry.mflops,
                        workload=entry.current_workload(now),
                        slots=entry.slots,
                        use_workload=self.use_workload,
                    )
                    cached = self._inflate_pending(base, entry, now)
                    predictions[entry.server_id] = cached
                return cached

            ranked = self.policy.rank(entries, predict_cached)
            top = ranked[: self.cfg.candidate_list_length]
            predicted = [predict_cached(e).total for e in top]
        if top:
            # assume the client sends to the head of the list; hold the
            # hint for roughly that request's predicted lifetime
            hold = min(600.0, max(1.0, predicted[0] * 1.5))
            self.table.note_assignment(top[0].server_id, now, hold_for=hold)
            if self._metrics is not None:
                self._metrics.predicted_head_seconds.observe(predicted[0])
        candidates = [
            Candidate(
                server_id=e.server_id,
                address=e.address,
                host=e.host,
                predicted_seconds=seconds,
                endpoint=self.node.endpoint_of(e.address),
            )
            for e, seconds in zip(top, predicted)
        ]
        self._trace(
            "query",
            problem=msg.problem,
            client=src,
            candidates=[c.server_id for c in candidates],
            predicted=[c.predicted_seconds for c in candidates],
        )
        self.node.send(src, QueryReply.from_candidates(candidates, tag=msg.tag))

    @handles(DescribeProblem)
    def _handle_describe(self, src: str, msg: DescribeProblem) -> None:
        if self._metrics is not None:
            self._metrics.describes.inc()
        spec = self.specs.get(msg.problem)
        if spec is None:
            self.node.send(
                src,
                ProblemDescription(
                    ok=False,
                    problem=msg.problem,
                    detail=f"unknown problem {msg.problem!r}",
                ),
            )
        else:
            self.node.send(
                src, ProblemDescription(ok=True, problem=msg.problem, pdl=render_pdl(spec))
            )
