"""The computational server.

Registers its problem catalogue with the agent (as PDL text on the
wire), reports workload under the hysteretic policy, and serves
``SolveRequest``\\ s: validate, execute through the problem registry as a
CPU job of the spec's advertised flop count, reply with outputs or a
structured error.  ``max_concurrent`` bounds simultaneous executions;
excess requests queue FIFO, mirroring the original's fork-per-request
server with a small process cap.

Overload protection: ``max_queue`` bounds the FIFO queue — a request
arriving past the cap is *shed* with a retryable :class:`Busy` reply
instead of queueing forever, which is what lets clients spread a
saturating workload across the pool.  Every in-flight compute is stamped
with the server's *incarnation generation*; a restart bumps the
generation, so completion callbacks armed by a previous incarnation are
dropped instead of corrupting ``_executing`` or emitting stale replies.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..config import ServerConfig
from ..errors import NetSolveError
from ..problems.pdl import render_pdl
from ..problems.registry import ProblemRegistry
from ..problems.spec import validate_inputs
from ..protocol.codec import encode_value
from ..protocol.messages import (
    Busy,
    DeleteObject,
    ObjectRef,
    Ping,
    Pong,
    RegisterAck,
    RegisterServer,
    SolveReply,
    SolveRequest,
    StoreAck,
    StoreObject,
    WorkloadReport,
)
from ..runtime import DispatchComponent, Periodic, handles
from ..trace.events import EventLog
from ..trace.instruments import MetricsRegistry
from .workload import WorkloadReporter

__all__ = ["ComputationalServer"]


class _ServerMetrics:
    """Pre-resolved instrument bundle; one ``is not None`` check per hook.

    Instruments are shared registry-wide, so a farm of servers reporting
    into one registry aggregates (queue-depth gauges sum via inc/dec).
    """

    __slots__ = (
        "requests", "ok", "errors", "queued", "sheds", "stale_drops",
        "stores", "store_rejects", "deletes", "queue_depth", "executing",
        "compute_seconds", "queue_wait_seconds",
    )

    def __init__(self, registry: MetricsRegistry):
        self.requests = registry.counter(
            "server.requests", "solve requests accepted")
        self.ok = registry.counter("server.ok", "successful solve replies")
        self.errors = registry.counter("server.errors", "failed solve replies")
        self.queued = registry.counter(
            "server.queued", "requests held in the FIFO queue")
        self.sheds = registry.counter(
            "server.sheds", "requests refused with Busy (queue at max_queue)")
        self.stale_drops = registry.counter(
            "server.stale_drops",
            "compute completions from a previous incarnation dropped")
        self.stores = registry.counter(
            "server.stores", "objects stored in the sequencing cache")
        self.store_rejects = registry.counter(
            "server.store_rejects", "stores rejected (cache full / codec)")
        self.deletes = registry.counter(
            "server.deletes", "stored-object deletions")
        self.queue_depth = registry.gauge(
            "server.queue_depth", "requests waiting, all servers")
        self.executing = registry.gauge(
            "server.executing", "requests executing, all servers")
        self.compute_seconds = registry.histogram(
            "server.compute_seconds", help="per-request execution time")
        self.queue_wait_seconds = registry.histogram(
            "server.queue_wait_seconds", help="time spent queued before start")


class ComputationalServer(DispatchComponent):
    """One NetSolve computational resource."""

    def __init__(
        self,
        *,
        server_id: str,
        agent_address: str,
        registry: ProblemRegistry,
        mflops: float,
        host: str,
        cfg: ServerConfig = ServerConfig(),
        trace: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if mflops <= 0:
            raise NetSolveError(f"server {server_id!r}: bad mflops {mflops}")
        if len(registry) == 0:
            raise NetSolveError(f"server {server_id!r}: empty problem registry")
        self.server_id = server_id
        self.agent_address = agent_address
        self.registry = registry
        self.mflops = float(mflops)
        self.host = host
        self.cfg = cfg
        self.trace = trace
        self._metrics = _ServerMetrics(metrics) if metrics is not None else None
        self.reporter: Optional[WorkloadReporter] = None
        self.registered = False
        self._executing = 0
        #: incarnation generation: bumped on every restart so completion
        #: callbacks of forgotten in-flight work identify themselves as
        #: stale instead of corrupting the new incarnation's state
        self._generation = 0
        #: queued as (src, msg, t_enqueued) so starts can observe the wait
        self._queue: deque[tuple[str, SolveRequest, float]] = deque()
        self.requests_served = 0
        self.requests_failed = 0
        #: requests refused with Busy because the queue was at max_queue
        self.requests_shed = 0
        #: stale completions (previous incarnation) dropped by the guard
        self.stale_completions = 0
        #: deepest the FIFO queue ever got (admission-cap audit)
        self.peak_queue = 0
        #: request-sequencing object cache: key -> (value, nbytes)
        self._objects: dict[str, tuple[object, int]] = {}
        self._objects_bytes = 0
        self._ticker = Periodic(
            self, cfg.workload.time_step, self._workload_tick,
            name="workload_tick",
        )
        self._reregister = Periodic(
            self, cfg.reregister_interval, self._register,
            name="reregister",
        )

    # ------------------------------------------------------------------
    def on_bind(self) -> None:
        self._register()
        # a fresh reporter per (re)bind: restart is a cold start for the
        # hysteresis state, exactly like the original daemon
        self.reporter = WorkloadReporter(
            self.cfg.workload,
            sample=self.node.sample_workload,
            broadcast=self._broadcast_workload,
        )
        self._ticker.start()
        if self.cfg.reregister_interval > 0:
            self._reregister.start()

    def on_restart(self) -> None:
        """Restart path: a revived daemon forgets in-flight work, then
        re-registers and re-arms its reporting exactly like a cold start.
        Periodic.start() supersedes the previous chains, so this cannot
        double-arm even when old TCP timers are still in flight.  The
        generation bump makes completions of the forgotten work stale:
        on the live-restart path their ``done`` closures may still fire,
        and without the stamp they would drive ``_executing`` negative
        and emit replies for requests this incarnation never accepted."""
        if self._metrics is not None:
            self._metrics.queue_depth.dec(len(self._queue))
            self._metrics.executing.dec(self._executing)
        self._queue.clear()
        self._executing = 0
        self._generation += 1
        self.registered = False
        self.on_bind()

    def _register(self) -> None:
        self.node.send(
            self.agent_address,
            RegisterServer(
                server_id=self.server_id,
                host=self.host,
                mflops=self.mflops,
                problems_pdl=render_pdl(self.registry.specs()),
            ),
        )

    def _workload_tick(self) -> None:
        assert self.reporter is not None
        self.reporter.tick(self.node.now())

    def _broadcast_workload(self, value: float) -> None:
        self.node.send(
            self.agent_address,
            WorkloadReport(server_id=self.server_id, workload=value),
        )

    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    # ------------------------------------------------------------------
    @handles(RegisterAck)
    def _handle_register_ack(self, src: str, msg: RegisterAck) -> None:
        self.registered = msg.ok
        if not msg.ok:
            self._trace("register_rejected", detail=msg.detail)

    @handles(Ping)
    def _handle_ping(self, src: str, msg: Ping) -> None:
        self.node.send(src, Pong(nonce=msg.nonce))

    # ------------------------------------------------------------------
    # request-sequencing object cache
    # ------------------------------------------------------------------
    @property
    def cached_objects(self) -> int:
        return len(self._objects)

    @property
    def cached_bytes(self) -> int:
        return self._objects_bytes

    @handles(StoreObject)
    def _store_object(self, src: str, msg: StoreObject) -> None:
        buf = bytearray()
        try:
            encode_value(msg.value, buf)
        except NetSolveError as exc:  # pragma: no cover - codec rejected it
            if self._metrics is not None:
                self._metrics.store_rejects.inc()
            self.node.send(src, StoreAck(key=msg.key, ok=False, detail=str(exc)))
            return
        nbytes = len(buf)
        old = self._objects.get(msg.key)
        projected = self._objects_bytes - (old[1] if old else 0) + nbytes
        if projected > self.cfg.object_cache_bytes:
            if self._metrics is not None:
                self._metrics.store_rejects.inc()
            self._trace("store_rejected", key=msg.key, nbytes=nbytes)
            self.node.send(
                src,
                StoreAck(
                    key=msg.key,
                    ok=False,
                    detail=f"object cache full ({projected} > "
                    f"{self.cfg.object_cache_bytes} bytes)",
                ),
            )
            return
        self._objects[msg.key] = (msg.value, nbytes)
        self._objects_bytes = projected
        if self._metrics is not None:
            self._metrics.stores.inc()
        self._trace("object_stored", key=msg.key, nbytes=nbytes)
        self.node.send(src, StoreAck(key=msg.key, ok=True, nbytes=nbytes))

    @handles(DeleteObject)
    def _delete_object(self, src: str, msg: DeleteObject) -> None:
        # idempotent: deleting an absent key still acks ok (nbytes=0)
        if self._metrics is not None:
            self._metrics.deletes.inc()
        entry = self._objects.pop(msg.key, None)
        freed = entry[1] if entry is not None else 0
        self._objects_bytes -= freed
        self.node.send(
            src,
            StoreAck(
                key=msg.key,
                ok=True,
                nbytes=freed,
                detail="" if entry is not None else "absent",
            ),
        )

    def _resolve_refs(self, inputs: tuple) -> list:
        resolved = []
        for value in inputs:
            if isinstance(value, ObjectRef):
                entry = self._objects.get(value.key)
                if entry is None:
                    raise NetSolveError(
                        f"unknown stored object {value.key!r}"
                    )
                resolved.append(entry[0])
            else:
                resolved.append(value)
        return resolved

    # ------------------------------------------------------------------
    @handles(SolveRequest)
    def _enqueue(self, src: str, msg: SolveRequest) -> None:
        if self._executing >= self.cfg.max_concurrent:
            depth = len(self._queue)
            if 0 < self.cfg.max_queue <= depth:
                # bounded admission: refuse instead of queueing forever;
                # the client falls through to its next candidate
                self.requests_shed += 1
                if self._metrics is not None:
                    self._metrics.sheds.inc()
                self._trace(
                    "request_shed", request_id=msg.request_id, depth=depth
                )
                self.node.send(
                    msg.reply_to or src,
                    Busy(
                        request_id=msg.request_id,
                        queue_depth=depth,
                        detail=f"queue full ({depth}/{self.cfg.max_queue})",
                    ),
                )
                return
            self._queue.append((src, msg, self.node.now()))
            if len(self._queue) > self.peak_queue:
                self.peak_queue = len(self._queue)
            if self._metrics is not None:
                self._metrics.queued.inc()
                self._metrics.queue_depth.inc()
            self._trace(
                "request_queued", request_id=msg.request_id, depth=len(self._queue)
            )
            return
        self._start(src, msg)

    def _start(self, src: str, msg: SolveRequest) -> None:
        reply_to = msg.reply_to or src
        if self._metrics is not None:
            self._metrics.requests.inc()
        if msg.problem not in self.registry:
            self.requests_failed += 1
            if self._metrics is not None:
                self._metrics.errors.inc()
            self.node.send(
                reply_to,
                SolveReply(
                    request_id=msg.request_id,
                    ok=False,
                    detail=f"problem {msg.problem!r} not installed here",
                ),
            )
            self._drain()
            return
        spec = self.registry.spec(msg.problem)
        try:
            inputs = self._resolve_refs(msg.inputs)
            _coerced, env = validate_inputs(spec, inputs)
            flops = spec.flops(env)
        except NetSolveError as exc:
            self.requests_failed += 1
            if self._metrics is not None:
                self._metrics.errors.inc()
            self.node.send(
                reply_to,
                SolveReply(request_id=msg.request_id, ok=False, detail=str(exc)),
            )
            self._drain()
            return

        self._executing += 1
        generation = self._generation
        if self._metrics is not None:
            self._metrics.executing.inc()
        self._trace(
            "request_started",
            request_id=msg.request_id,
            problem=msg.problem,
            flops=flops,
        )

        def run() -> tuple:
            return self.registry.execute(msg.problem, inputs)

        def done(result, elapsed: float) -> None:
            if generation != self._generation:
                # completion of work a restart already forgot: the new
                # incarnation zeroed _executing and owes no reply
                self.stale_completions += 1
                if self._metrics is not None:
                    self._metrics.stale_drops.inc()
                self._trace(
                    "stale_completion_dropped", request_id=msg.request_id
                )
                return
            self._executing -= 1
            if self._metrics is not None:
                self._metrics.executing.dec()
                self._metrics.compute_seconds.observe(elapsed)
            if isinstance(result, BaseException):
                self.requests_failed += 1
                if self._metrics is not None:
                    self._metrics.errors.inc()
                self._trace(
                    "request_error",
                    request_id=msg.request_id,
                    detail=str(result),
                )
                self.node.send(
                    reply_to,
                    SolveReply(
                        request_id=msg.request_id,
                        ok=False,
                        detail=f"{type(result).__name__}: {result}",
                        compute_seconds=elapsed,
                    ),
                )
            else:
                self.requests_served += 1
                if self._metrics is not None:
                    self._metrics.ok.inc()
                self._trace(
                    "request_done",
                    request_id=msg.request_id,
                    compute_seconds=elapsed,
                )
                self.node.send(
                    reply_to,
                    SolveReply(
                        request_id=msg.request_id,
                        ok=True,
                        outputs=tuple(result),
                        compute_seconds=elapsed,
                    ),
                )
            self._drain()

        self.node.compute(flops, run, done)

    def _drain(self) -> None:
        while self._queue and self._executing < self.cfg.max_concurrent:
            src, msg, t_queued = self._queue.popleft()
            if self._metrics is not None:
                self._metrics.queue_depth.dec()
                self._metrics.queue_wait_seconds.observe(
                    self.node.now() - t_queued
                )
            self._start(src, msg)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def executing(self) -> int:
        return self._executing
