"""The computational server.

Registers its problem catalogue with the agent (as PDL text on the
wire), reports workload under the hysteretic policy, and serves
``SolveRequest``\\ s: validate, execute through the problem registry as a
CPU job of the spec's advertised flop count, reply with outputs or a
structured error.  ``max_concurrent`` bounds simultaneous executions;
excess requests queue FIFO, mirroring the original's fork-per-request
server with a small process cap.

Overload protection and QoS: waiting requests sit in an earliest-
deadline-first heap, where each request's deadline is its arrival time
plus the per-class offset from ``qos_deadlines`` — ``interactive``
requests overtake ``batch`` and ``background`` ones, and single-class
traffic degenerates to plain FIFO.  ``max_queue`` bounds the queue — a
request arriving past the cap (or past its class's ``qos_shed`` share
of the cap) is *shed* with a retryable :class:`Busy` reply instead of
queueing forever, which is what lets clients spread a saturating
workload across the pool.  Every in-flight compute is stamped
with the server's *incarnation generation*; a restart bumps the
generation, so completion callbacks armed by a previous incarnation are
dropped instead of corrupting ``_executing`` or emitting stale replies.

Executors and batching: ``max_concurrent`` is also the server's *slot*
count, advertised in ``RegisterServer`` so the agent's MCT predictor can
charge workload per slot; every ``WorkloadReport`` carries the current
in-flight count for the same reason.  With ``batch_max > 1``, a drain
that finds shape-compatible same-problem requests waiting coalesces up
to ``batch_max`` of them into one stacked kernel call (occupying a
single slot) and fans the per-item results back as individual replies —
amortizing dispatch overhead exactly when the queue says the server is
saturated.  ``executor="process"`` opts GIL-bound single requests into a
child-process pool on transports whose nodes run real threads; batches
always ride the thread lane.

Result caching and persistence: with ``cache_entries > 0`` every
request is content-digested before admission — a hit answers straight
from the :class:`~repro.store.ResultCache` (``SolveReply.cached=True``),
skipping the queue, the worker pool and the kernel; a request whose
digest matches an *in-flight* compute joins it as a waiter instead of
burning a slot (stampede coalescing).  With ``store_path`` set,
completed outcomes are persisted to a SQLite :class:`~repro.store.JobStore`
keyed ``(reply_to, request_id)`` so they survive restarts and can be
recovered with ``FetchResult``; a memory-cache miss falls through to
the store by digest, warming the cache after a reboot.
"""

from __future__ import annotations

import heapq
import itertools
from math import ceil
from typing import Optional, Sequence

from ..config import ServerConfig
from ..errors import ConfigError, MissingObjectError, NetSolveError
from ..problems.pdl import render_pdl
from ..problems.registry import ProblemRegistry
from ..problems.spec import validate_inputs
from ..protocol.codec import decode_value, encode_value, encoded_size
from ..protocol.messages import (
    Busy,
    CacheInsert,
    DagNodeDone,
    DagReply,
    DataHandle,
    DeleteObject,
    FetchObject,
    FetchResult,
    NodeOutput,
    ObjectPayload,
    ObjectRef,
    Ping,
    Pong,
    RegisterAck,
    RegisterServer,
    ResultStatus,
    SolveReply,
    SolveRequest,
    StoreAck,
    StoreObject,
    SubmitDag,
    WorkloadReport,
)
from ..runtime import DeadlineTable, DispatchComponent, Periodic, handles
from ..store import HandleStore, JobStore, ResultCache, solve_digest
from ..trace.events import EventLog
from ..trace.instruments import MetricsRegistry
from .executors import ProcessPool
from .qos import QOS_CLASSES, qos_index
from .workload import WorkloadReporter

__all__ = ["ComputationalServer"]


class _ServerMetrics:
    """Pre-resolved instrument bundle; one ``is not None`` check per hook.

    Instruments are shared registry-wide, so a farm of servers reporting
    into one registry aggregates (queue-depth gauges sum via inc/dec).
    """

    __slots__ = (
        "requests", "ok", "errors", "queued", "sheds", "stale_drops",
        "stores", "store_rejects", "deletes", "queue_depth", "executing",
        "compute_seconds", "queue_wait_seconds", "batches",
        "batched_requests", "peak_queue", "cache_hits", "cache_misses",
        "cache_evictions", "cache_bytes_saved", "coalesced",
        "store_records", "store_hits", "fetches", "agent_failovers",
        "kept_results", "object_fetches", "missing_objects",
        "dags", "dag_nodes",
    )

    def __init__(self, registry: MetricsRegistry):
        self.requests = registry.counter(
            "server.requests", "solve requests accepted")
        self.ok = registry.counter("server.ok", "successful solve replies")
        self.errors = registry.counter("server.errors", "failed solve replies")
        self.queued = registry.counter(
            "server.queued", "requests held in the FIFO queue")
        self.sheds = registry.counter(
            "server.sheds", "requests refused with Busy (queue at max_queue)")
        self.stale_drops = registry.counter(
            "server.stale_drops",
            "compute completions from a previous incarnation dropped")
        self.stores = registry.counter(
            "server.stores", "objects stored in the sequencing cache")
        self.store_rejects = registry.counter(
            "server.store_rejects", "stores rejected (cache full / codec)")
        self.deletes = registry.counter(
            "server.deletes", "stored-object deletions")
        self.queue_depth = registry.gauge(
            "server.queue_depth", "requests waiting, all servers")
        self.executing = registry.gauge(
            "server.executing", "requests executing, all servers")
        self.compute_seconds = registry.histogram(
            "server.compute_seconds", help="per-request execution time")
        self.queue_wait_seconds = registry.histogram(
            "server.queue_wait_seconds", help="time spent queued before start")
        self.batches = registry.counter(
            "server.batches", "stacked same-problem kernel calls")
        self.batched_requests = registry.counter(
            "server.batched_requests", "requests served through a batch")
        self.peak_queue = registry.gauge(
            "server.peak_queue", "deepest any server's FIFO queue got")
        self.cache_hits = registry.counter(
            "server.cache_hits", "solves answered from the result cache")
        self.cache_misses = registry.counter(
            "server.cache_misses", "digested requests not found in cache")
        self.cache_evictions = registry.counter(
            "server.cache_evictions", "result-cache LRU evictions")
        self.cache_bytes_saved = registry.counter(
            "server.cache_bytes_saved",
            "encoded output bytes answered without recomputation")
        self.coalesced = registry.counter(
            "server.coalesced",
            "requests joined to an identical in-flight compute")
        self.store_records = registry.counter(
            "server.store_records", "job outcomes persisted to the store")
        self.store_hits = registry.counter(
            "server.store_hits",
            "cache misses answered from the persistent store")
        self.fetches = registry.counter(
            "server.fetches", "FetchResult lookups served")
        self.agent_failovers = registry.counter(
            "server.agent_failovers",
            "registrations rotated to the next agent on ack silence")
        self.kept_results = registry.counter(
            "server.kept_results",
            "outputs left resident and answered with DataHandles")
        self.object_fetches = registry.counter(
            "server.object_fetches", "FetchObject payload pulls served")
        self.missing_objects = registry.counter(
            "server.missing_objects",
            "referenced keys that were not resident (typed retryable error)")
        self.dags = registry.counter(
            "server.dags", "SubmitDag graphs accepted")
        self.dag_nodes = registry.counter(
            "server.dag_nodes", "DAG nodes executed to completion")


def _batch_signature(values) -> tuple:
    """Stacking-compatibility key for a validated input list.

    Two requests may share a batched kernel call only when every ndarray
    operand matches in shape *and* dtype (the batch kernels stack them
    along a new leading axis) and the scalar operands agree.
    """
    sig = []
    for v in values:
        if hasattr(v, "shape"):
            sig.append((v.shape, str(v.dtype)))
        else:
            sig.append(v)
    return tuple(sig)


#: transport-level source of DAG-internal solve requests; replies whose
#: ``reply_to`` starts with the prefix route back into the DAG executor
#: instead of the wire
_DAG_SRC = "@dag"
_DAG_PREFIX = "@dag/"


def _node_refs(value):
    """Every :class:`NodeOutput` reachable inside ``value`` (nested too)."""
    refs = []

    def walk(item):
        if isinstance(item, NodeOutput):
            refs.append(item)
        elif isinstance(item, (list, tuple)):
            for sub in item:
                walk(sub)
        elif isinstance(item, dict):
            for sub in item.values():
                walk(sub)

    walk(value)
    return refs


def _substitute(value, results):
    """``value`` with each :class:`NodeOutput` replaced by the produced
    output (a raw value, or the :class:`DataHandle` of a keep node)."""
    if isinstance(value, NodeOutput):
        outputs = results[value.node]
        if value.index >= len(outputs):
            raise NetSolveError(
                f"node {value.node!r} produced {len(outputs)} output(s); "
                f"index {value.index} requested"
            )
        return outputs[value.index]
    if isinstance(value, (list, tuple)):
        return tuple(_substitute(item, results) for item in value)
    if isinstance(value, dict):
        return {key: _substitute(item, results) for key, item in value.items()}
    return value


class _DagRun:
    """Execution state of one accepted request DAG."""

    __slots__ = (
        "token", "dag_id", "reply_to", "nodes", "order", "deps", "succs",
        "results", "unfinished", "retained", "started",
    )

    def __init__(self, token, dag_id, reply_to, nodes, order, deps, succs):
        self.token = token
        self.dag_id = dag_id
        self.reply_to = reply_to
        #: node id -> normalized node dict
        self.nodes = nodes
        #: submission (and topological tie-break) order of node ids
        self.order = order
        self.deps = deps
        self.succs = succs
        #: node id -> outputs tuple (values, or handles for keep nodes)
        self.results: dict[str, tuple] = {}
        self.unfinished = set(order)
        #: handle keys refcounted on behalf of this run (released at end)
        self.retained: list[str] = []
        #: nodes whose internal SolveRequest has been issued
        self.started: set[str] = set()


class ComputationalServer(DispatchComponent):
    """One NetSolve computational resource."""

    def __init__(
        self,
        *,
        server_id: str,
        agent_address: str | Sequence[str],
        registry: ProblemRegistry,
        mflops: float,
        host: str,
        cfg: ServerConfig = ServerConfig(),
        trace: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if mflops <= 0:
            raise NetSolveError(f"server {server_id!r}: bad mflops {mflops}")
        if len(registry) == 0:
            raise NetSolveError(f"server {server_id!r}: empty problem registry")
        self.server_id = server_id
        #: ordered agent rotation (head = current); a plain string keeps
        #: the common single-agent deployment unchanged
        self.agent_address = agent_address
        #: registrations rotated to the next agent on ack silence
        self.agent_failovers = 0
        self.registry = registry
        self.mflops = float(mflops)
        self.host = host
        self.cfg = cfg
        self.trace = trace
        self._metrics = _ServerMetrics(metrics) if metrics is not None else None
        self.reporter: Optional[WorkloadReporter] = None
        self.registered = False
        self._executing = 0
        #: incarnation generation: bumped on every restart so completion
        #: callbacks of forgotten in-flight work identify themselves as
        #: stale instead of corrupting the new incarnation's state
        self._generation = 0
        #: earliest-deadline-first admission heap of
        #: ``(deadline, seq, src, msg, t_enqueued)``: deadline = arrival
        #: + the request class's ``qos_deadlines`` offset, seq breaks
        #: ties in arrival order — single-class traffic therefore drains
        #: in exact FIFO order, same as the pre-QoS deque
        self._queue: list[tuple[float, int, str, SolveRequest, float]] = []
        self._queue_seq = itertools.count()
        #: waiting entries per QoS class (indexed like QOS_CLASSES),
        #: driving the per-class shed shares
        self._queued_by_class = [0, 0, 0]
        self.requests_served = 0
        self.requests_failed = 0
        #: requests refused with Busy because the queue was at max_queue
        self.requests_shed = 0
        #: shed audit per QoS class (class name -> count)
        self.sheds_by_class = {name: 0 for name in QOS_CLASSES}
        #: stale completions (previous incarnation) dropped by the guard
        self.stale_completions = 0
        #: deepest the FIFO queue ever got (admission-cap audit)
        self.peak_queue = 0
        #: stacked kernel calls and the requests they carried
        self.batches = 0
        self.batched_requests = 0
        #: opt-in process executor, created on first use (thread lanes
        #: belong to the transport node, not the server)
        self._process_pool: Optional[ProcessPool] = None
        #: resident-object store behind ObjectRef/DataHandle references:
        #: pinned client stores plus refcounted, TTL-bounded keep_result
        #: outputs.  Survives on_restart (in-process hiccup), cleared by
        #: on_shutdown (process death).
        self.objects = HandleStore(
            cfg.object_cache_bytes,
            ttl=cfg.handle_ttl,
            clock=lambda: self.node.now(),
        )
        #: accepted request DAGs by run token (cleared on restart: the
        #: client times out and re-submits, like any lost in-flight work)
        self._dag_runs: dict[int, _DagRun] = {}
        self._dag_tokens = itertools.count(1)
        #: request ids for DAG-internal solves (never seen by clients)
        self._dag_rids = itertools.count(1)
        self.dags_accepted = 0
        self.dag_nodes_done = 0
        #: content-addressed result cache: digest -> (outputs, nbytes).
        #: Clocked by the node so TTLs work under virtual time; the
        #: lambda is only called once the component is bound.
        self.result_cache = ResultCache(
            cfg.cache_entries,
            ttl=cfg.cache_ttl,
            clock=lambda: self.node.now(),
        )
        #: digest -> [(reply_to, request_id), ...] of requests joined to
        #: an identical in-flight compute (stampede coalescing); cleared
        #: on restart — dropped waiters retry like any lost reply
        self._inflight: dict[str, list[tuple[str, int]]] = {}
        #: persistent job store, opened lazily so a shut-down incarnation
        #: can reopen it on revival
        self._store: Optional[JobStore] = None
        #: requests answered by joining an in-flight identical compute
        self.coalesced_requests = 0
        self._ticker = Periodic(
            self, cfg.workload.time_step, self._workload_tick,
            name="workload_tick",
        )
        self._reregister = Periodic(
            self, cfg.reregister_interval, self._register,
            name="reregister",
        )
        #: one-shot timers (currently just the RegisterAck deadline)
        self._deadlines = DeadlineTable(self)

    # ------------------------------------------------------------------
    @property
    def agent_address(self) -> str:
        """The agent currently registered with (head of the rotation)."""
        return self._agents[0]

    @agent_address.setter
    def agent_address(self, value: str | Sequence[str]) -> None:
        agents = [value] if isinstance(value, str) else list(value)
        if not agents:
            raise NetSolveError(
                f"server {self.server_id!r} needs at least one agent address"
            )
        self._agents = agents

    @property
    def agent_addresses(self) -> tuple[str, ...]:
        """The full rotation, current agent first."""
        return tuple(self._agents)

    # ------------------------------------------------------------------
    def on_bind(self) -> None:
        self._register()
        # a fresh reporter per (re)bind: restart is a cold start for the
        # hysteresis state, exactly like the original daemon
        self.reporter = WorkloadReporter(
            self.cfg.workload,
            sample=self.node.sample_workload,
            broadcast=self._broadcast_workload,
        )
        self._ticker.start()
        if self.cfg.reregister_interval > 0:
            self._reregister.start()

    def on_restart(self) -> None:
        """Restart path: a revived daemon forgets in-flight work, then
        re-registers and re-arms its reporting exactly like a cold start.
        Periodic.start() supersedes the previous chains, so this cannot
        double-arm even when old TCP timers are still in flight.  The
        generation bump makes completions of the forgotten work stale:
        on the live-restart path their ``done`` closures may still fire,
        and without the stamp they would drive ``_executing`` negative
        and emit replies for requests this incarnation never accepted."""
        if self._metrics is not None:
            self._metrics.queue_depth.dec(len(self._queue))
            self._metrics.executing.dec(self._executing)
        self._queue.clear()
        self._queued_by_class = [0, 0, 0]
        self._executing = 0
        self._generation += 1
        # coalesced waiters were joined to computes this incarnation no
        # longer owns; their clients time out and retry, same as any
        # reply lost to the crash
        self._inflight.clear()
        # in-flight DAGs die with their internal requests; releasing
        # their retained handle keys keeps refcounts generation-safe
        # (the *objects* survive — a restart is an in-process hiccup,
        # not a memory loss)
        self._abandon_dags()
        # the old generation's in-flight process jobs are stale by the
        # bump above; releasing the pool stops a restart storm from
        # accumulating orphaned children (it reopens lazily on use)
        self.shutdown_executors()
        self.registered = False
        self._deadlines.clear()
        self.on_bind()

    def on_shutdown(self) -> None:
        """Teardown path (crash or transport close): release the process
        executor and the job store's file handle.  Both reopen lazily,
        so a revived incarnation keeps working.  The memory result cache
        dies here too — this hook models process death (unlike
        ``on_restart``'s in-process hiccup), and a revived server must
        re-warm from the persistent store, not from ghost memory."""
        self.shutdown_executors()
        self.result_cache.clear()
        # resident objects are process memory: pins, refcounts and all
        # die here.  Clients re-submit with payloads when they next hit
        # the typed missing_object error.
        self._abandon_dags()
        self.objects.clear()
        if self._store is not None:
            self._store.close()
            self._store = None

    def _abandon_dags(self) -> None:
        """Drop every in-flight DAG run, releasing its handle refs."""
        for run in self._dag_runs.values():
            for key in run.retained:
                self.objects.release(key)
        self._dag_runs.clear()

    def _register(self) -> None:
        # with a fleet, an unacked registration rotates to the next agent
        # instead of leaving the server invisible forever; one agent
        # keeps the original fire-and-forget behaviour (the periodic
        # re-register is the recovery path there)
        if len(self._agents) > 1:
            self._deadlines.arm(
                "register", self.cfg.register_timeout,
                self._register_timed_out,
            )
        self.node.send(
            self.agent_address,
            RegisterServer(
                server_id=self.server_id,
                host=self.host,
                mflops=self.mflops,
                problems_pdl=render_pdl(self.registry.specs()),
                slots=self.cfg.max_concurrent,
            ),
        )

    def _workload_tick(self) -> None:
        assert self.reporter is not None
        self.reporter.tick(self.node.now())

    def _broadcast_workload(self, value: float) -> None:
        self.node.send(
            self.agent_address,
            WorkloadReport(
                server_id=self.server_id,
                workload=value,
                inflight=self._executing,
            ),
        )

    def _trace(self, kind: str, **fields) -> None:
        if self.trace is not None:
            self.trace.log(self.node.now(), self.node.address, kind, **fields)

    # ------------------------------------------------------------------
    def _register_timed_out(self) -> None:
        if self.registered:
            return  # a late re-register raced an earlier ack; all is well
        failed = self._agents.pop(0)
        self._agents.append(failed)
        self.agent_failovers += 1
        if self._metrics is not None:
            self._metrics.agent_failovers.inc()
        self._trace(
            "agent_failover", from_agent=failed, to_agent=self._agents[0]
        )
        self._register()

    @handles(RegisterAck)
    def _handle_register_ack(self, src: str, msg: RegisterAck) -> None:
        self._deadlines.cancel("register")
        self.registered = msg.ok
        if not msg.ok:
            self._trace("register_rejected", detail=msg.detail)

    @handles(Ping)
    def _handle_ping(self, src: str, msg: Ping) -> None:
        self.node.send(src, Pong(nonce=msg.nonce))

    # ------------------------------------------------------------------
    # resident-object store (ObjectRef / DataHandle)
    # ------------------------------------------------------------------
    @property
    def cached_objects(self) -> int:
        return len(self.objects)

    @property
    def cached_bytes(self) -> int:
        return self.objects.nbytes

    def _handle_for(self, obj) -> DataHandle:
        return obj.handle(server_id=self.server_id, address=self.node.address)

    @handles(StoreObject)
    def _store_object(self, src: str, msg: StoreObject) -> None:
        try:
            # client-stored operands are *pinned*: immune to TTL and
            # eviction until an explicit delete (the sequencing contract)
            obj = self.objects.put(msg.key, msg.value, pin=True)
        except NetSolveError as exc:
            if self._metrics is not None:
                self._metrics.store_rejects.inc()
            self._trace("store_rejected", key=msg.key, detail=str(exc))
            self.node.send(src, StoreAck(key=msg.key, ok=False, detail=str(exc)))
            return
        if self._metrics is not None:
            self._metrics.stores.inc()
        self._trace("object_stored", key=msg.key, nbytes=obj.nbytes)
        self.node.send(
            src,
            StoreAck(
                key=msg.key, ok=True, nbytes=obj.nbytes,
                handle=self._handle_for(obj),
            ),
        )

    @handles(DeleteObject)
    def _delete_object(self, src: str, msg: DeleteObject) -> None:
        # idempotent: deleting an absent key still acks ok (nbytes=0)
        if self._metrics is not None:
            self._metrics.deletes.inc()
        freed = self.objects.delete(msg.key)
        self.node.send(
            src,
            StoreAck(
                key=msg.key,
                ok=True,
                nbytes=freed,
                detail="" if freed else "absent",
            ),
        )

    @handles(FetchObject)
    def _fetch_object(self, src: str, msg: FetchObject) -> None:
        """Pull a resident object's bytes on demand (the deferred half
        of ``keep_result``)."""
        reply_to = msg.reply_to or src
        obj = self.objects.entry(msg.key)
        if obj is None:
            self.objects.misses += 1
            if self._metrics is not None:
                self._metrics.missing_objects.inc()
            self._trace("object_fetch_missed", key=msg.key)
            self.node.send(
                reply_to,
                ObjectPayload(
                    key=msg.key,
                    ok=False,
                    detail=f"object {msg.key!r} not resident",
                    error_kind="missing_object",
                ),
            )
            return
        if self._metrics is not None:
            self._metrics.object_fetches.inc()
        self._trace("object_fetched", key=msg.key, nbytes=obj.nbytes)
        self.node.send(
            reply_to, ObjectPayload(key=msg.key, ok=True, value=obj.value)
        )

    def _resolve_refs(self, inputs: tuple) -> list:
        """Swap every reference for its resident value.

        Raises the *typed* :class:`MissingObjectError` naming every
        unresolvable key at once — callers turn it into a retryable
        ``error_kind="missing_object"`` reply, never a kernel error.
        """
        resolved = []
        missing = []
        for value in inputs:
            if isinstance(value, (ObjectRef, DataHandle)):
                obj = self.objects.entry(value.key)
                if obj is None:
                    missing.append(value.key)
                else:
                    resolved.append(obj.value)
            else:
                resolved.append(value)
        if missing:
            self.objects.misses += len(missing)
            if self._metrics is not None:
                self._metrics.missing_objects.inc(len(missing))
            raise MissingObjectError(*missing)
        return resolved

    # ------------------------------------------------------------------
    # content-addressed result cache + persistent job store
    # ------------------------------------------------------------------
    def _job_store(self) -> Optional[JobStore]:
        if not self.cfg.store_path:
            return None
        if self._store is None:
            self._store = JobStore(self.cfg.store_path)
        return self._store

    def _solve_digest_folded(
        self, problem: str, raw_inputs: tuple, coerced, env
    ) -> Optional[str]:
        """Request digest with references *folded*, not materialized.

        Reference positions contribute the referenced object's stored
        content digest (O(1) per request, however large the resident
        value); payload positions contribute their canonicalized bytes.
        A handle-bearing request therefore digests to the same key the
        submitting client computed from its ``DataHandle.digest``
        metadata, so repeats hit the result cache and the agent's hot
        cache without re-hashing resident megabytes.  Ref-free requests
        take the historical value-digest path, bit-identical to before.
        """
        if not any(
            isinstance(v, (ObjectRef, DataHandle)) for v in raw_inputs
        ):
            return solve_digest(problem, coerced, env)
        # normalize both ref flavours to ObjectRef so the folded digest
        # depends on the resident *content*, not on which reference type
        # (or possibly-stale carried digest) named it
        folded = [
            ObjectRef(orig.key)
            if isinstance(orig, (ObjectRef, DataHandle)) else value
            for orig, value in zip(raw_inputs, coerced)
        ]
        return solve_digest(
            problem, folded, env, resolve_ref=self.objects.digest_of
        )

    def _request_digest(self, msg: SolveRequest) -> Optional[str]:
        """Content digest of one request, or ``None`` (not addressable).

        Digests cover the *canonicalized* inputs — arrays coerced, refs
        folded to their stored digests — so a strided client-side view
        and the contiguous copy another client sent hash identically.
        """
        if msg.problem not in self.registry:
            return None
        spec = self.registry.spec(msg.problem)
        try:
            inputs = self._resolve_refs(msg.inputs)
            coerced, env = validate_inputs(spec, inputs)
        except NetSolveError:
            return None  # the normal path owns the error reply
        return self._solve_digest_folded(msg.problem, msg.inputs, coerced, env)

    def _dispatch_reply(self, reply_to: str, reply) -> None:
        """Deliver a reply: over the wire, or — for DAG-internal
        requests, whose ``reply_to`` carries the ``@dag/`` prefix —
        straight back into the DAG executor, no transport involved."""
        if reply_to.startswith(_DAG_PREFIX):
            self._on_dag_internal_reply(reply_to, reply)
        else:
            self.node.send(reply_to, reply)

    def _keep_outputs(
        self, reply_to: str, request_id: int, outputs: tuple
    ) -> tuple:
        """Leave ``outputs`` resident, returning one DataHandle each.

        An output the store cannot admit (budget exhausted even after
        evicting idle entries, or unencodable) degrades gracefully to
        the value itself — the client sees a mixed outputs tuple and
        still makes progress.
        """
        kept = []
        for index, value in enumerate(outputs):
            key = f"res/{reply_to}/{request_id}/{index}"
            if len(key) > 128:  # pragma: no cover - absurd address
                key = key[:96] + format(abs(hash(key)), "x")
            try:
                obj = self.objects.put(key, value)
            except NetSolveError:
                kept.append(value)
                continue
            kept.append(self._handle_for(obj))
            if self._metrics is not None:
                self._metrics.kept_results.inc()
        self._trace(
            "result_kept", request_id=request_id, outputs=len(outputs)
        )
        return tuple(kept)

    def _reply_cached(
        self,
        reply_to: str,
        request_id: int,
        outputs: tuple,
        nbytes: int,
        *,
        keep: bool = False,
    ) -> None:
        """Send one cache-served reply, with the bookkeeping a fresh
        compute would have done (minus the compute)."""
        self.requests_served += 1
        if self._metrics is not None:
            self._metrics.ok.inc()
            self._metrics.cache_hits.inc()
            self._metrics.cache_bytes_saved.inc(nbytes)
        self._trace("cache_hit", request_id=request_id, nbytes=nbytes)
        if keep:
            outputs = self._keep_outputs(reply_to, request_id, outputs)
        self._dispatch_reply(
            reply_to,
            SolveReply(
                request_id=request_id,
                ok=True,
                outputs=outputs,
                compute_seconds=0.0,
                cached=True,
            ),
        )

    def _cache_probe(self, src: str, msg: SolveRequest) -> bool:
        """Try to answer a request before admission.

        A hit skips the queue, the worker pool and the kernel entirely:
        the only cost left is the reply transfer.  A memory miss falls
        through to the persistent store (the restart-warming path) and
        promotes any hit back into the memory cache.  Returns True when
        a reply was sent.
        """
        digest = self._request_digest(msg)
        if digest is None:
            return False
        entry = self.result_cache.get(digest)
        if entry is None:
            store = self._job_store()
            if store is not None:
                blob = store.lookup_digest(digest)
                if blob is not None:
                    try:
                        outputs = tuple(decode_value(blob))
                    except NetSolveError:  # pragma: no cover - corrupt row
                        outputs = None
                    if outputs is not None:
                        entry = (outputs, len(blob))
                        self.result_cache.put(digest, entry)
                        if self._metrics is not None:
                            self._metrics.store_hits.inc()
        if entry is None:
            if self._metrics is not None:
                self._metrics.cache_misses.inc()
            return False
        outputs, nbytes = entry
        if self._metrics is not None:
            self._metrics.requests.inc()
        self._reply_cached(
            msg.reply_to or src, msg.request_id, outputs, nbytes,
            keep=msg.keep_result,
        )
        return True

    def _record_result(
        self,
        reply_to: str,
        request_id: int,
        problem: str,
        digest: Optional[str],
        outputs: tuple,
        elapsed: float,
        *,
        publish: bool = True,
    ) -> None:
        """Post-compute bookkeeping for one fresh successful result:
        memory-cache insert, hot publication to the agent, job-store row.
        ``publish=False`` (coalesced waiters) records the job row only —
        the leader already owns the cache entry and the publication.
        Unencodable outputs are skipped wholesale — they could not have
        crossed the wire either."""
        store = self._job_store()
        if digest is None and store is None:
            return
        if store is not None:
            buf = bytearray()
            try:
                encode_value(outputs, buf)
            except NetSolveError:  # pragma: no cover - registry outputs
                return
            blob = bytes(buf)
            nbytes = len(blob)
        else:
            blob = b""
            try:
                nbytes = encoded_size(outputs)
            except NetSolveError:  # pragma: no cover - registry outputs
                return
        if digest is not None and publish:
            if self.result_cache.enabled:
                evictions_before = self.result_cache.evictions
                self.result_cache.put(digest, (outputs, nbytes))
                if self._metrics is not None:
                    delta = self.result_cache.evictions - evictions_before
                    if delta:
                        self._metrics.cache_evictions.inc(delta)
            if 0 < nbytes <= self.cfg.cache_publish_bytes:
                self.node.send(
                    self.agent_address,
                    CacheInsert(
                        digest=digest,
                        problem=problem,
                        outputs=outputs,
                        nbytes=nbytes,
                    ),
                )
        if store is not None:
            store.record(
                reply_to,
                request_id,
                digest=digest or "",
                problem=problem,
                ok=True,
                payload=blob,
                compute_seconds=elapsed,
                created=self.node.now(),
            )
            if self._metrics is not None:
                self._metrics.store_records.inc()

    def _record_failure(
        self,
        reply_to: str,
        request_id: int,
        problem: str,
        digest: Optional[str],
        detail: str,
        elapsed: float,
    ) -> None:
        store = self._job_store()
        if store is None:
            return
        store.record(
            reply_to,
            request_id,
            digest=digest or "",
            problem=problem,
            ok=False,
            detail=detail,
            compute_seconds=elapsed,
            created=self.node.now(),
        )
        if self._metrics is not None:
            self._metrics.store_records.inc()

    @handles(FetchResult)
    def _fetch_result(self, src: str, msg: FetchResult) -> None:
        """Recover a finished result from the job store by request id."""
        if self._metrics is not None:
            self._metrics.fetches.inc()
        store = self._job_store()
        if store is None:
            self.node.send(
                src,
                ResultStatus(
                    request_id=msg.request_id,
                    status="unsupported",
                    detail="server runs without a persistent store",
                ),
            )
            return
        row = store.fetch(msg.client or src, msg.request_id)
        if row is None:
            self.node.send(
                src,
                ResultStatus(request_id=msg.request_id, status="unknown"),
            )
            return
        if not row.ok:
            self.node.send(
                src,
                ResultStatus(
                    request_id=msg.request_id,
                    status="failed",
                    detail=row.detail,
                    compute_seconds=row.compute_seconds,
                ),
            )
            return
        try:
            outputs = tuple(decode_value(row.payload))
        except NetSolveError:  # pragma: no cover - corrupt row
            self.node.send(
                src,
                ResultStatus(
                    request_id=msg.request_id,
                    status="failed",
                    detail="stored payload is unreadable",
                ),
            )
            return
        self._trace("result_fetched", request_id=msg.request_id)
        self.node.send(
            src,
            ResultStatus(
                request_id=msg.request_id,
                status="done",
                outputs=outputs,
                compute_seconds=row.compute_seconds,
            ),
        )

    # ------------------------------------------------------------------
    @handles(SolveRequest)
    def _enqueue(self, src: str, msg: SolveRequest) -> None:
        if (
            self.result_cache.enabled or self.cfg.store_path
        ) and self._cache_probe(src, msg):
            return
        if self._executing >= self.cfg.max_concurrent:
            depth = len(self._queue)
            ci = qos_index(msg.qos)
            # DAG-internal requests bypass the shed: their graph was
            # admitted as a whole, and a Busy would have nowhere to go
            if src != _DAG_SRC and self.cfg.max_queue > 0:
                # bounded admission: refuse instead of queueing forever;
                # the client falls through to its next candidate.  A
                # class may claim at most its configured share of the
                # queue, so background traffic sheds before it crowds
                # out interactive traffic.
                limit = ceil(self.cfg.max_queue * self.cfg.qos_shed[ci])
                if depth >= self.cfg.max_queue:
                    detail = f"queue full ({depth}/{self.cfg.max_queue})"
                elif self._queued_by_class[ci] >= limit:
                    detail = (
                        f"qos {QOS_CLASSES[ci]} share full "
                        f"({self._queued_by_class[ci]}/{limit})"
                    )
                else:
                    detail = None
                if detail is not None:
                    self.requests_shed += 1
                    self.sheds_by_class[QOS_CLASSES[ci]] += 1
                    if self._metrics is not None:
                        self._metrics.sheds.inc()
                    self._trace(
                        "request_shed",
                        request_id=msg.request_id,
                        depth=depth,
                        qos=QOS_CLASSES[ci],
                    )
                    self.node.send(
                        msg.reply_to or src,
                        Busy(
                            request_id=msg.request_id,
                            queue_depth=depth,
                            detail=detail,
                        ),
                    )
                    return
            now = self.node.now()
            deadline = now + self.cfg.qos_deadlines[ci]
            heapq.heappush(
                self._queue,
                (deadline, next(self._queue_seq), src, msg, now),
            )
            self._queued_by_class[ci] += 1
            if len(self._queue) > self.peak_queue:
                self.peak_queue = len(self._queue)
                if self._metrics is not None and (
                    self.peak_queue > self._metrics.peak_queue.value
                ):
                    # registry-wide max: never lowered by a quieter server
                    self._metrics.peak_queue.set(self.peak_queue)
            if self._metrics is not None:
                self._metrics.queued.inc()
                self._metrics.queue_depth.inc()
            self._trace(
                "request_queued", request_id=msg.request_id, depth=len(self._queue)
            )
            return
        self._start(src, msg)

    def _start(self, src: str, msg: SolveRequest) -> None:
        reply_to = msg.reply_to or src
        if self._metrics is not None:
            self._metrics.requests.inc()
        if msg.problem not in self.registry:
            self.requests_failed += 1
            if self._metrics is not None:
                self._metrics.errors.inc()
            self._dispatch_reply(
                reply_to,
                SolveReply(
                    request_id=msg.request_id,
                    ok=False,
                    detail=f"problem {msg.problem!r} not installed here",
                ),
            )
            self._drain()
            return
        spec = self.registry.spec(msg.problem)
        try:
            inputs = self._resolve_refs(msg.inputs)
            coerced, env = validate_inputs(spec, inputs)
            flops = spec.flops(env)
        except MissingObjectError as exc:
            # fail fast, *typed*: a referenced key is gone (crash wiped
            # the store, TTL lapsed, ...).  The client re-submits with
            # the payload instead of treating this as a server fault.
            self.requests_failed += 1
            if self._metrics is not None:
                self._metrics.errors.inc()
            self._trace(
                "missing_object",
                request_id=msg.request_id,
                keys=",".join(exc.keys),
            )
            self._dispatch_reply(
                reply_to,
                SolveReply(
                    request_id=msg.request_id,
                    ok=False,
                    detail=str(exc),
                    error_kind="missing_object",
                    missing=exc.keys,
                ),
            )
            self._drain()
            return
        except NetSolveError as exc:
            self.requests_failed += 1
            if self._metrics is not None:
                self._metrics.errors.inc()
            self._dispatch_reply(
                reply_to,
                SolveReply(request_id=msg.request_id, ok=False, detail=str(exc)),
            )
            self._drain()
            return

        digest = None
        if self.result_cache.enabled or self.cfg.store_path:
            digest = self._solve_digest_folded(
                msg.problem, msg.inputs, coerced, env
            )
        if digest is not None:
            # re-check: an identical result may have landed while this
            # request waited in the queue (peek: the admission-time miss
            # was already counted; stats stay one-to-one with requests)
            entry = self.result_cache.peek(digest)
            if entry is not None:
                outputs, nbytes = entry
                self._reply_cached(
                    reply_to, msg.request_id, outputs, nbytes,
                    keep=msg.keep_result,
                )
                self._drain()
                return
            waiters = self._inflight.get(digest)
            if waiters is not None:
                # an identical compute is already running: join it
                # instead of burning a slot on the same answer
                waiters.append((reply_to, msg.request_id, msg.keep_result))
                self.coalesced_requests += 1
                if self._metrics is not None:
                    self._metrics.coalesced.inc()
                self._trace(
                    "request_coalesced",
                    request_id=msg.request_id,
                    digest=digest,
                )
                return
            if self.result_cache.enabled:
                self._inflight[digest] = []

        self._executing += 1
        generation = self._generation
        if self._metrics is not None:
            self._metrics.executing.inc()
        self._trace(
            "request_started",
            request_id=msg.request_id,
            problem=msg.problem,
            flops=flops,
        )

        def run() -> tuple:
            return self.registry.execute(msg.problem, inputs)

        def done(result, elapsed: float) -> None:
            if generation != self._generation:
                # completion of work a restart already forgot: the new
                # incarnation zeroed _executing and owes no reply
                self.stale_completions += 1
                if self._metrics is not None:
                    self._metrics.stale_drops.inc()
                self._trace(
                    "stale_completion_dropped", request_id=msg.request_id
                )
                return
            self._executing -= 1
            if self._metrics is not None:
                self._metrics.executing.dec()
                self._metrics.compute_seconds.observe(elapsed)
            waiters = (
                self._inflight.pop(digest, []) if digest is not None else []
            )
            if isinstance(result, BaseException):
                detail = f"{type(result).__name__}: {result}"
                self.requests_failed += 1
                if self._metrics is not None:
                    self._metrics.errors.inc()
                self._trace(
                    "request_error",
                    request_id=msg.request_id,
                    detail=str(result),
                )
                self._dispatch_reply(
                    reply_to,
                    SolveReply(
                        request_id=msg.request_id,
                        ok=False,
                        detail=detail,
                        compute_seconds=elapsed,
                    ),
                )
                self._record_failure(
                    reply_to, msg.request_id, msg.problem, digest,
                    detail, elapsed,
                )
                for w_reply, w_rid, _w_keep in waiters:
                    # joined requests share the leader's fate; each
                    # client retries independently
                    self.requests_failed += 1
                    if self._metrics is not None:
                        self._metrics.errors.inc()
                    self._dispatch_reply(
                        w_reply,
                        SolveReply(
                            request_id=w_rid,
                            ok=False,
                            detail=detail,
                            compute_seconds=elapsed,
                        ),
                    )
                    self._record_failure(
                        w_reply, w_rid, msg.problem, digest, detail, elapsed
                    )
            else:
                outputs = tuple(result)
                self.requests_served += 1
                if self._metrics is not None:
                    self._metrics.ok.inc()
                self._trace(
                    "request_done",
                    request_id=msg.request_id,
                    compute_seconds=elapsed,
                )
                sent = outputs
                if msg.keep_result:
                    sent = self._keep_outputs(
                        reply_to, msg.request_id, outputs
                    )
                self._dispatch_reply(
                    reply_to,
                    SolveReply(
                        request_id=msg.request_id,
                        ok=True,
                        outputs=sent,
                        compute_seconds=elapsed,
                    ),
                )
                self._record_result(
                    reply_to, msg.request_id, msg.problem, digest,
                    outputs, elapsed,
                )
                for w_reply, w_rid, w_keep in waiters:
                    # compute_seconds=0: the waiter paid no compute, and
                    # charging it the leader's would poison the client's
                    # transfer accounting (elapsed - compute < 0)
                    self.requests_served += 1
                    if self._metrics is not None:
                        self._metrics.ok.inc()
                    self._trace("request_done", request_id=w_rid)
                    w_sent = (
                        self._keep_outputs(w_reply, w_rid, outputs)
                        if w_keep else outputs
                    )
                    self._dispatch_reply(
                        w_reply,
                        SolveReply(
                            request_id=w_rid,
                            ok=True,
                            outputs=w_sent,
                            compute_seconds=0.0,
                            cached=True,
                        ),
                    )
                    self._record_result(
                        w_reply, w_rid, msg.problem, digest, outputs, 0.0,
                        publish=False,
                    )
            self._drain()

        if self._use_process_lane():
            self._submit_process(msg.problem, inputs, done)
            return
        self.node.compute(flops, run, done)

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _use_process_lane(self) -> bool:
        return (
            self.cfg.executor == "process"
            and getattr(self.node, "supports_process_pool", False)
        )

    def _submit_process(self, problem: str, inputs: list, done) -> None:
        """Run one request on the opt-in child-process pool.

        Its completion fires on an executor-owned thread, so it is
        marshalled back through ``node.post``: ``done`` then runs under
        the node's lock like every other component entry point (or is
        dropped when the node has gone down in the meantime).
        """
        pool = self._process_pool
        if pool is None:
            pool = ProcessPool(self.cfg.workers or self.cfg.max_concurrent)
            self._process_pool = pool

        def marshal(result, elapsed: float) -> None:
            self.node.post(lambda: done(result, elapsed))

        pool.submit(problem, inputs, marshal)

    def shutdown_executors(self) -> None:
        """Release the process pool, if one was ever created.

        Idempotent.  The thread compute pool belongs to the transport
        node and shuts down with it; only the opt-in process executor is
        the server's own to tear down.
        """
        if self._process_pool is not None:
            self._process_pool.shutdown()
            self._process_pool = None

    # ------------------------------------------------------------------
    # same-problem micro-batching
    # ------------------------------------------------------------------
    def _gather_batch(self, src: str, msg: SolveRequest):
        """Collect queued requests that can share a stacked kernel call.

        Returns ``None`` — meaning *run the plain single-request path* —
        unless batching is enabled, the problem has a batch handler, and
        at least one shape-compatible same-problem request is waiting.
        Otherwise removes the compatible mates from the queue (others
        keep their FIFO positions) and returns ``(src, msg, flops,
        digest)`` tuples for the head plus its mates (digest ``None``
        when result caching and the job store are both off).
        """
        if self.cfg.batch_max <= 1 or not self._queue:
            return None
        problem = msg.problem
        if problem not in self.registry or not self.registry.has_batch(problem):
            return None
        if msg.keep_result or any(
            isinstance(v, (ObjectRef, DataHandle)) for v in msg.inputs
        ):
            return None  # referenced/kept requests keep 1-at-a-time semantics
        spec = self.registry.spec(problem)
        try:
            coerced, env = validate_inputs(spec, list(msg.inputs))
            flops = spec.flops(env)
        except NetSolveError:
            return None  # invalid head: the single path owns the error reply
        digesting = self.result_cache.enabled or bool(self.cfg.store_path)

        def member_digest(coerced_inputs, member_env):
            if not digesting:
                return None
            return solve_digest(problem, coerced_inputs, member_env)

        signature = (env, _batch_signature(coerced))
        members = [(src, msg, flops, member_digest(coerced, env))]
        kept: list = []
        now = self.node.now()
        # walk in drain (deadline) order so member selection matches
        # what successive pops would have seen; a sorted list satisfies
        # the heap invariant, so ``kept`` needs no re-heapify
        for entry in sorted(self._queue):
            _deadline, _seq, q_src, q_msg, t_queued = entry
            if (
                len(members) >= self.cfg.batch_max
                or q_msg.problem != problem
                or q_msg.keep_result
                or any(
                    isinstance(v, (ObjectRef, DataHandle))
                    for v in q_msg.inputs
                )
            ):
                kept.append(entry)
                continue
            try:
                q_coerced, q_env = validate_inputs(spec, list(q_msg.inputs))
                q_flops = spec.flops(q_env)
            except NetSolveError:
                kept.append(entry)
                continue
            if (q_env, _batch_signature(q_coerced)) != signature:
                kept.append(entry)
                continue
            members.append(
                (q_src, q_msg, q_flops, member_digest(q_coerced, q_env))
            )
            self._queued_by_class[qos_index(q_msg.qos)] -= 1
            if self._metrics is not None:
                self._metrics.queue_depth.dec()
                self._metrics.queue_wait_seconds.observe(now - t_queued)
        if len(members) == 1:
            return None
        self._queue = kept
        return members

    def _start_batch(self, members: list) -> None:
        """Execute a gathered batch in one compute, fan replies back out.

        The batch occupies a *single* slot and a single generation stamp:
        a restart mid-batch makes the whole completion stale, dropping
        every member (each of which the client retries independently).
        """
        problem = members[0][1].problem
        total_flops = sum(flops for _src, _msg, flops, _digest in members)
        self.batches += 1
        self.batched_requests += len(members)
        if self._metrics is not None:
            self._metrics.requests.inc(len(members))
            self._metrics.batches.inc()
            self._metrics.batched_requests.inc(len(members))
            self._metrics.executing.inc()
        self._executing += 1
        generation = self._generation
        self._trace(
            "batch_started",
            problem=problem,
            size=len(members),
            flops=total_flops,
        )
        inputs_list = [list(m.inputs) for _src, m, _flops, _digest in members]

        def run():
            return self.registry.execute_batch(problem, inputs_list)

        def done(result, elapsed: float) -> None:
            if generation != self._generation:
                # a restart forgot the whole batch: every member is stale
                self.stale_completions += len(members)
                if self._metrics is not None:
                    self._metrics.stale_drops.inc(len(members))
                self._trace(
                    "stale_completion_dropped",
                    problem=problem,
                    batch=len(members),
                )
                return
            self._executing -= 1
            if self._metrics is not None:
                self._metrics.executing.dec()
                self._metrics.compute_seconds.observe(elapsed)
            if isinstance(result, BaseException):
                # execute_batch itself blew up before its per-item
                # fallback could run: every member shares the error
                items = [result] * len(members)
            else:
                items = list(result)
            for (m_src, m_msg, _flops, m_digest), item in zip(members, items):
                reply_to = m_msg.reply_to or m_src
                if isinstance(item, BaseException):
                    detail = f"{type(item).__name__}: {item}"
                    self.requests_failed += 1
                    if self._metrics is not None:
                        self._metrics.errors.inc()
                    self._trace(
                        "request_error",
                        request_id=m_msg.request_id,
                        detail=str(item),
                    )
                    self._dispatch_reply(
                        reply_to,
                        SolveReply(
                            request_id=m_msg.request_id,
                            ok=False,
                            detail=detail,
                            compute_seconds=elapsed,
                        ),
                    )
                    self._record_failure(
                        reply_to, m_msg.request_id, problem, m_digest,
                        detail, elapsed,
                    )
                else:
                    outputs = tuple(item)
                    self.requests_served += 1
                    if self._metrics is not None:
                        self._metrics.ok.inc()
                    self._trace(
                        "request_done",
                        request_id=m_msg.request_id,
                        compute_seconds=elapsed,
                    )
                    self._dispatch_reply(
                        reply_to,
                        SolveReply(
                            request_id=m_msg.request_id,
                            ok=True,
                            outputs=outputs,
                            compute_seconds=elapsed,
                        ),
                    )
                    self._record_result(
                        reply_to, m_msg.request_id, problem, m_digest,
                        outputs, elapsed,
                    )
            self._drain()

        self.node.compute(total_flops, run, done)

    def _drain(self) -> None:
        while self._queue and self._executing < self.cfg.max_concurrent:
            _deadline, _seq, src, msg, t_queued = heapq.heappop(self._queue)
            self._queued_by_class[qos_index(msg.qos)] -= 1
            if self._metrics is not None:
                self._metrics.queue_depth.dec()
                self._metrics.queue_wait_seconds.observe(
                    self.node.now() - t_queued
                )
            batch = self._gather_batch(src, msg)
            if batch is None:
                self._start(src, msg)
            else:
                self._start_batch(batch)

    # ------------------------------------------------------------------
    # request DAGs
    # ------------------------------------------------------------------
    @handles(SubmitDag)
    def _handle_submit_dag(self, src: str, msg: SubmitDag) -> None:
        """Admit a dependency graph of solves.

        Validation is all-or-nothing (bad shape, unknown/self/cyclic
        references, size cap) — a rejected DAG never executes a node.
        Accepted nodes run through the ordinary ``_enqueue`` machinery
        (cache probe, admission, batching, generation stamps) with an
        internal reply route, so every single-request behaviour — result
        caching, coalescing, typed missing-object errors — applies per
        node unchanged.
        """
        reply_to = msg.reply_to or src

        def reject(detail: str) -> None:
            self._trace("dag_rejected", dag_id=msg.dag_id, detail=detail)
            self.node.send(
                reply_to,
                DagReply(dag_id=msg.dag_id, ok=False, detail=detail),
            )

        if not msg.nodes:
            reject("empty dag")
            return
        if len(msg.nodes) > self.cfg.dag_max_nodes:
            reject(
                f"dag too large ({len(msg.nodes)} > "
                f"{self.cfg.dag_max_nodes} nodes)"
            )
            return
        nodes: dict[str, dict] = {}
        order: list[str] = []
        for raw in msg.nodes:
            if not isinstance(raw, dict):
                reject("node is not a mapping")
                return
            node_id = raw.get("id")
            problem = raw.get("problem")
            if not isinstance(node_id, str) or not node_id:
                reject("node without an id")
                return
            if node_id in nodes:
                reject(f"duplicate node id {node_id!r}")
                return
            if not isinstance(problem, str) or not problem:
                reject(f"node {node_id!r} without a problem")
                return
            nodes[node_id] = {
                "id": node_id,
                "problem": problem,
                "inputs": tuple(raw.get("inputs") or ()),
                "keep": bool(raw.get("keep", False)),
                "emit": bool(raw.get("emit", False)),
            }
            order.append(node_id)
        deps = {nid: set() for nid in order}
        for nid in order:
            for ref in _node_refs(nodes[nid]["inputs"]):
                if ref.node not in nodes:
                    reject(
                        f"node {nid!r} references unknown node {ref.node!r}"
                    )
                    return
                if ref.node == nid:
                    reject(f"node {nid!r} references itself")
                    return
                deps[nid].add(ref.node)
        succs = {nid: set() for nid in order}
        for nid, ds in deps.items():
            for dep in ds:
                succs[dep].add(nid)
        # Kahn's algorithm, for the cycle check only (execution order
        # falls out of dependency-readiness at completion time)
        indegree = {nid: len(deps[nid]) for nid in order}
        frontier = [nid for nid in order if indegree[nid] == 0]
        visited = 0
        while frontier:
            nid = frontier.pop()
            visited += 1
            for succ in succs[nid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if visited != len(order):
            reject("dependency cycle")
            return

        token = next(self._dag_tokens)
        run = _DagRun(token, msg.dag_id, reply_to, nodes, order, deps, succs)
        self._dag_runs[token] = run
        self.dags_accepted += 1
        if self._metrics is not None:
            self._metrics.dags.inc()
        self._trace("dag_accepted", dag_id=msg.dag_id, nodes=len(order))
        self._dag_schedule(run)

    def _dag_schedule(self, run: _DagRun) -> None:
        """Issue an internal SolveRequest for every newly ready node."""
        for nid in run.order:
            if (
                nid in run.started
                or nid not in run.unfinished
                or any(dep in run.unfinished for dep in run.deps[nid])
            ):
                continue
            run.started.add(nid)
            node = run.nodes[nid]
            try:
                inputs = tuple(
                    _substitute(value, run.results)
                    for value in node["inputs"]
                )
            except NetSolveError as exc:
                self._dag_fail(run, nid, detail=str(exc))
                return
            self._trace("dag_node_started", dag_id=run.dag_id, node=nid)
            self._enqueue(
                _DAG_SRC,
                SolveRequest(
                    request_id=next(self._dag_rids),
                    problem=node["problem"],
                    inputs=inputs,
                    reply_to=f"{_DAG_PREFIX}{run.token}/{nid}",
                    keep_result=node["keep"],
                ),
            )
            if run.token not in self._dag_runs:
                return  # a synchronous completion already ended the run

    def _on_dag_internal_reply(self, reply_to: str, reply) -> None:
        try:
            _tag, token_text, node_id = reply_to.split("/", 2)
            token = int(token_text)
        except ValueError:  # pragma: no cover - addresses are our own
            return
        run = self._dag_runs.get(token)
        if run is None or node_id not in run.unfinished:
            # the run failed or was abandoned (restart/shutdown); this
            # is a sibling's late completion — nothing owes a reply
            return
        if isinstance(reply, SolveReply) and reply.ok:
            self._dag_node_done(run, node_id, reply)
        elif isinstance(reply, SolveReply):
            self._dag_fail(
                run, node_id,
                detail=reply.detail,
                error_kind=reply.error_kind,
                missing=reply.missing,
            )
        else:  # pragma: no cover - internal requests bypass the shed
            self._dag_fail(run, node_id, detail="internal request refused")

    def _dag_node_done(self, run: _DagRun, node_id: str, reply) -> None:
        run.unfinished.discard(node_id)
        run.results[node_id] = reply.outputs
        for value in reply.outputs:
            if isinstance(value, DataHandle):
                # hold kept outputs for the rest of the run: a TTL lapse
                # mid-graph must not strand a successor's inputs
                try:
                    self.objects.retain(value.key)
                except MissingObjectError:  # pragma: no cover - same tick
                    pass
                else:
                    run.retained.append(value.key)
        self.dag_nodes_done += 1
        if self._metrics is not None:
            self._metrics.dag_nodes.inc()
        self._trace("dag_node_done", dag_id=run.dag_id, node=node_id)
        self.node.send(
            run.reply_to,
            DagNodeDone(
                dag_id=run.dag_id,
                node=node_id,
                ok=True,
                compute_seconds=reply.compute_seconds,
                cached=reply.cached,
                remaining=len(run.unfinished),
            ),
        )
        if not run.unfinished:
            self._dag_finish(run)
        else:
            self._dag_schedule(run)

    def _dag_finish(self, run: _DagRun) -> None:
        emits = [nid for nid in run.order if run.nodes[nid]["emit"]]
        if not emits:
            # default: the graph's terminal nodes carry the answer
            emits = [nid for nid in run.order if not run.succs[nid]]
        outputs: list = []
        for nid in emits:
            outputs.extend(run.results.get(nid, ()))
        self._drop_run(run)
        self._trace("dag_done", dag_id=run.dag_id)
        self.node.send(
            run.reply_to,
            DagReply(dag_id=run.dag_id, ok=True, outputs=tuple(outputs)),
        )

    def _dag_fail(
        self,
        run: _DagRun,
        node_id: str,
        *,
        detail: str,
        error_kind: str = "",
        missing: tuple = (),
    ) -> None:
        run.unfinished.discard(node_id)
        self._trace(
            "dag_failed", dag_id=run.dag_id, node=node_id, detail=detail
        )
        self.node.send(
            run.reply_to,
            DagNodeDone(
                dag_id=run.dag_id,
                node=node_id,
                ok=False,
                detail=detail,
                remaining=len(run.unfinished),
            ),
        )
        self._drop_run(run)
        self.node.send(
            run.reply_to,
            DagReply(
                dag_id=run.dag_id,
                ok=False,
                detail=detail,
                failed_node=node_id,
                error_kind=error_kind,
                missing=tuple(missing),
            ),
        )

    def _drop_run(self, run: _DagRun) -> None:
        for key in run.retained:
            self.objects.release(key)
        self._dag_runs.pop(run.token, None)

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def executing(self) -> int:
        return self._executing
