"""Failure injection for experiments.

The fault-tolerance experiments (T4, A2) crash and revive simulated
nodes on schedules.  The injector is a thin layer over
:meth:`SimTransport.crash`/:meth:`revive` with deterministic scheduling
and an audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..protocol.transport import SimTransport

__all__ = ["FailureInjector", "InjectedFault"]


@dataclass(frozen=True)
class InjectedFault:
    time: float
    address: str
    action: str  # "crash" | "revive"


class FailureInjector:
    """Schedules crashes and revivals on a simulated deployment."""

    def __init__(self, transport: SimTransport):
        self.transport = transport
        self.plan: list[InjectedFault] = []
        self.executed: list[InjectedFault] = []
        #: planned faults that were no-ops when they fired (crashing an
        #: already-dead node, reviving a live one) — without this the
        #: audit trail silently diverges from the plan and an experiment
        #: can report fault-tolerance results for faults that never hit
        self.skipped: list[InjectedFault] = []

    # ------------------------------------------------------------------
    def crash_at(self, t: float, address: str) -> None:
        """Crash ``address`` at virtual time ``t``."""
        self._schedule(t, address, "crash")

    def revive_at(self, t: float, address: str) -> None:
        """Revive ``address`` at virtual time ``t``."""
        self._schedule(t, address, "revive")

    def crash_for(self, t: float, address: str, downtime: float) -> None:
        """Crash at ``t`` and revive ``downtime`` seconds later."""
        if downtime <= 0:
            raise SimulationError("downtime must be positive")
        self.crash_at(t, address)
        self.revive_at(t + downtime, address)

    def _schedule(self, t: float, address: str, action: str) -> None:
        self.transport.node(address)  # validate the address exists now
        fault = InjectedFault(time=t, address=address, action=action)
        self.plan.append(fault)

        def fire() -> None:
            if action == "crash":
                if self.transport.is_alive(address):
                    self.transport.crash(address)
                    self.executed.append(fault)
                else:
                    self.skipped.append(fault)
            else:
                if not self.transport.is_alive(address):
                    self.transport.revive(address)
                    self.executed.append(fault)
                else:
                    self.skipped.append(fault)

        self.transport.kernel.call_at(t, fire)

    def audit(self) -> dict[str, int]:
        """Plan-vs-reality accounting: every planned fault that has come
        due is either executed or skipped; ``pending`` counts the rest."""
        return {
            "planned": len(self.plan),
            "executed": len(self.executed),
            "skipped": len(self.skipped),
            "pending": len(self.plan) - len(self.executed) - len(self.skipped),
        }

    # ------------------------------------------------------------------
    def random_crashes(
        self,
        rng: np.random.Generator,
        addresses: list[str],
        *,
        count: int,
        window: tuple[float, float],
        downtime: float | None = None,
    ) -> list[InjectedFault]:
        """Crash ``count`` distinct nodes at uniform times inside
        ``window``; optionally revive each after ``downtime`` seconds.
        Returns the planned crash faults (deterministic under the rng).
        """
        t0, t1 = window
        if t1 <= t0:
            raise SimulationError("bad window")
        if count > len(addresses):
            raise SimulationError(
                f"cannot crash {count} of {len(addresses)} nodes"
            )
        victims = list(rng.choice(addresses, size=count, replace=False))
        times = np.sort(rng.uniform(t0, t1, size=count))
        planned = []
        for addr, t in zip(victims, times):
            if downtime is None:
                self.crash_at(float(t), str(addr))
            else:
                self.crash_for(float(t), str(addr), downtime)
            planned.append(InjectedFault(float(t), str(addr), "crash"))
        return planned
