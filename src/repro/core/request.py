"""Request lifecycle records.

Every client request carries a :class:`RequestRecord` that timestamps
each protocol phase — agent negotiation, per-attempt send/reply, retry
transitions — so the overhead-breakdown experiment (T5) and the
fault-tolerance accounting (T4) read straight off the records without
instrumenting the components further.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RequestStatus", "AttemptRecord", "RequestRecord"]


class RequestStatus(enum.Enum):
    PENDING = "pending"       # created, waiting on spec / agent
    QUERYING = "querying"     # QueryRequest in flight
    EXECUTING = "executing"   # SolveRequest sent to a server
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (RequestStatus.DONE, RequestStatus.FAILED)


@dataclass
class AttemptRecord:
    """One try against one server."""

    server_id: str
    address: str
    predicted_seconds: float
    t_sent: float
    t_end: Optional[float] = None
    #: "ok" | "error" | "timeout" | "busy" (None while in flight)
    outcome: Optional[str] = None
    detail: str = ""
    #: server-reported compute seconds (only on "ok")
    compute_seconds: float = 0.0
    #: the server answered from its result cache (no kernel ran)
    cached: bool = False

    @property
    def elapsed(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_sent


@dataclass
class RequestRecord:
    """Full timeline of one request, attempts included."""

    request_id: int
    problem: str
    sizes: dict
    status: RequestStatus = RequestStatus.PENDING
    t_submit: float = 0.0
    t_query_sent: Optional[float] = None
    t_candidates: Optional[float] = None
    t_done: Optional[float] = None
    attempts: list[AttemptRecord] = field(default_factory=list)
    queries: int = 0
    error: str = ""

    # ------------------------------------------------------------------
    # derived timings (None until the data exists)
    # ------------------------------------------------------------------
    @property
    def negotiation_seconds(self) -> Optional[float]:
        """Agent round-trip: query sent -> candidate list received.

        Covers the *last* negotiation if the request re-queried.
        """
        if self.t_query_sent is None or self.t_candidates is None:
            return None
        return self.t_candidates - self.t_query_sent

    @property
    def total_seconds(self) -> Optional[float]:
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit

    @property
    def successful_attempt(self) -> Optional[AttemptRecord]:
        for attempt in self.attempts:
            if attempt.outcome == "ok":
                return attempt
        return None

    @property
    def compute_seconds(self) -> Optional[float]:
        attempt = self.successful_attempt
        return None if attempt is None else attempt.compute_seconds

    @property
    def transfer_seconds(self) -> Optional[float]:
        """Round-trip minus server compute for the successful attempt:
        input shipping + output return + protocol overhead."""
        attempt = self.successful_attempt
        if attempt is None or attempt.elapsed is None:
            return None
        return attempt.elapsed - attempt.compute_seconds

    @property
    def retries(self) -> int:
        """Failed attempts before (or without) success."""
        return sum(
            1 for a in self.attempts
            if a.outcome in ("error", "timeout", "busy")
        )

    @property
    def server_id(self) -> Optional[str]:
        attempt = self.successful_attempt
        return None if attempt is None else attempt.server_id

    def summary(self) -> str:
        total = self.total_seconds
        t = f"{total:.3f}s" if total is not None else "-"
        return (
            f"req {self.request_id} {self.problem} {self.status.value} "
            f"total={t} attempts={len(self.attempts)} retries={self.retries}"
        )
