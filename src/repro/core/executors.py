"""Bounded execution pools backing a computational server.

The seed's TCP transport spawned one daemon thread per ``compute`` call:
``max_concurrent`` bounded how many requests a *server* admitted, but
nothing bounded how many OS threads a burst could create, and nothing
made a thread explosion visible.  This module provides the two bounded
lanes a server can execute on:

* :class:`WorkerPool` — a fixed set of lazily-spawned worker threads
  draining an unbounded task queue.  The right lane for the repo's
  numerics: the hot kernels bottom out in NumPy/BLAS calls that release
  the GIL, so ``k`` workers give real parallel speedup on a ``k``-CPU
  box.  ``submit`` never blocks; when every worker is busy the task
  queues and the pool counts the saturation (the ``on_saturated`` hook
  feeds the ``server.pool_saturated`` counter).

* :class:`ProcessPool` — an opt-in lane over
  :class:`concurrent.futures.ProcessPoolExecutor` for GIL-bound
  handlers (pure-Python kernels that never release the lock).  Closures
  do not pickle, so this lane ships ``(problem, inputs)`` pairs and the
  child rebuilds the problem registry once from a module-level factory.
  Real-socket transports only: results return on executor threads, and
  the simulated transport's virtual clock cannot account for them.

Both pools are transport-agnostic plumbing: no sockets, no messages, no
component state — just "run this, tell me when it finished and how long
it took", which is exactly the contract of ``Node.compute``.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional, Sequence

from ..errors import NetSolveError

__all__ = ["WorkerPool", "ProcessPool", "default_registry_factory"]


class WorkerPool:
    """A bounded pool of daemon worker threads over an unbounded queue.

    Workers are spawned lazily, one per submission, up to ``workers``;
    an idle pool costs nothing and a mostly-serial server never pays for
    threads it does not use.  ``submit(fn)`` enqueues and returns
    immediately — admission control lives with the caller (the server's
    ``max_concurrent``/``max_queue``), not here — but a submission that
    finds every worker busy increments :attr:`saturated` and fires
    ``on_saturated``, so unbounded-thread behaviour of the old
    per-request spawn becomes a visible counter instead of silent OS
    pressure.
    """

    def __init__(
        self,
        workers: int,
        *,
        name: str = "pool",
        on_saturated: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise NetSolveError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = int(workers)
        self.name = name
        self.on_saturated = on_saturated
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._busy = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        #: submissions that found every worker busy (the task queued)
        self.saturated = 0
        self.peak_pending = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> int:
        return self._busy

    @property
    def pending(self) -> int:
        """Tasks enqueued but not yet picked up (approximate)."""
        return self._tasks.qsize()

    def submit(self, fn: Callable[[], None]) -> None:
        """Enqueue ``fn`` for execution on a pool thread; never blocks."""
        with self._lock:
            if self._closed:
                raise NetSolveError(f"worker pool {self.name!r} is shut down")
            self.submitted += 1
            spawn = (
                len(self._threads) < self.workers
                and self._busy + self._tasks.qsize() >= len(self._threads)
            )
            if spawn:
                thread = threading.Thread(
                    target=self._work,
                    name=f"{self.name}-worker-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
            else:
                thread = None
            if self._busy >= self.workers:
                self.saturated += 1
                depth = self._tasks.qsize() + 1
                if depth > self.peak_pending:
                    self.peak_pending = depth
                hook = self.on_saturated
            else:
                hook = None
        self._tasks.put(fn)
        if thread is not None:
            thread.start()
        if hook is not None:
            hook()

    def _work(self) -> None:
        while True:
            fn = self._tasks.get()
            if fn is None:
                return  # shutdown sentinel
            with self._lock:
                self._busy += 1
            try:
                fn()
            except Exception:  # pragma: no cover - tasks guard themselves
                pass
            finally:
                with self._lock:
                    self._busy -= 1
                    self.completed += 1

    def shutdown(self) -> None:
        """Stop accepting work and release the workers.

        Queued tasks already submitted still run; each worker exits when
        it drains to its sentinel.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._tasks.put(None)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "busy": self._busy,
                "submitted": self.submitted,
                "completed": self.completed,
                "saturated": self.saturated,
                "peak_pending": self.peak_pending,
            }


# ----------------------------------------------------------------------
# process lane
# ----------------------------------------------------------------------
_CHILD_REGISTRY = None


def default_registry_factory():
    """Child-side default: the full builtin catalogue."""
    from ..problems.builtin import builtin_registry

    return builtin_registry()


def _child_init(factory) -> None:  # pragma: no cover - runs in the child
    global _CHILD_REGISTRY
    _CHILD_REGISTRY = factory()


def _child_run(problem: str, inputs: Sequence[Any]):  # pragma: no cover
    t0 = time.perf_counter()
    try:
        result: Any = _CHILD_REGISTRY.execute(problem, list(inputs))
    except Exception as exc:
        result = exc
    return result, time.perf_counter() - t0


class ProcessPool:
    """Opt-in process executor for GIL-bound problem handlers.

    ``submit(problem, inputs, done)`` runs the named problem in a child
    process built around ``registry_factory`` (a picklable module-level
    callable returning a :class:`~repro.problems.registry.ProblemRegistry`)
    and invokes ``done(result, elapsed)`` from an executor thread —
    callers on a threaded transport must re-enter their own lock (the
    server marshals through ``node.post``).  Exceptions travel as
    values, matching ``Node.compute``.
    """

    def __init__(
        self,
        workers: int,
        *,
        registry_factory: Callable = default_registry_factory,
    ):
        import concurrent.futures
        import multiprocessing

        if workers < 1:
            raise NetSolveError(f"process pool needs >= 1 worker, got {workers}")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context("spawn")
        self.workers = int(workers)
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_child_init,
            initargs=(registry_factory,),
        )
        self.submitted = 0
        self.completed = 0

    def submit(
        self,
        problem: str,
        inputs: Sequence[Any],
        done: Callable[[Any, float], None],
    ) -> None:
        self.submitted += 1
        future = self._executor.submit(_child_run, problem, list(inputs))

        def _settle(fut) -> None:
            self.completed += 1
            try:
                result, elapsed = fut.result()
            except Exception as exc:  # broken pool / unpicklable result
                result, elapsed = exc, 0.0
            done(result, elapsed)

        future.add_done_callback(_settle)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
