"""Request QoS classes: names, ordering, and validation.

NetSolve treats every request alike; production solve servers (NEOS's
job classes, batch schedulers' queues) do not.  This module defines the
three request classes the rest of the system agrees on:

``interactive``
    A human is waiting.  Shortest deadline, never shed before the
    other classes.
``batch``
    The default — farm jobs, scripted runs.  The empty string on the
    wire means ``batch`` so that pre-QoS peers interoperate unchanged.
``background``
    Speculative or best-effort work.  Longest deadline, first to be
    shed when a server saturates.

The class is carried as a string field on
:class:`~repro.protocol.messages.SolveRequest` and
:class:`~repro.protocol.messages.QueryRequest`; servers turn it into a
deadline offset (``ServerConfig.qos_deadlines``) for earliest-deadline-
first admission and into a queue-share cap
(``ServerConfig.qos_shed``) for per-class shedding.
"""

from __future__ import annotations

from repro.errors import BadArgumentsError

__all__ = ["QOS_CLASSES", "QOS_DEFAULT", "qos_index", "normalize_qos"]

#: recognised classes, most to least urgent; positions index the
#: per-class config tuples (``qos_deadlines`` / ``qos_shed``)
QOS_CLASSES = ("interactive", "batch", "background")

#: what the wire's empty string means
QOS_DEFAULT = "batch"

_INDEX = {name: i for i, name in enumerate(QOS_CLASSES)}
_INDEX[""] = _INDEX[QOS_DEFAULT]


def qos_index(qos: str) -> int:
    """Position of ``qos`` in :data:`QOS_CLASSES` ("" = batch).

    Unknown strings (a newer peer's class we don't know) degrade to the
    default rather than erroring: admission still works, just without
    special treatment.
    """
    return _INDEX.get(qos, _INDEX[QOS_DEFAULT])


def normalize_qos(qos: str) -> str:
    """Validate a user-supplied class name, mapping "" to the default.

    Raises :class:`~repro.errors.BadArgumentsError` for names outside
    :data:`QOS_CLASSES` — user input is checked at the submit boundary;
    wire input is not (see :func:`qos_index`).
    """
    if not qos:
        return QOS_DEFAULT
    if qos not in _INDEX:
        raise BadArgumentsError(
            f"unknown qos class {qos!r}; expected one of {QOS_CLASSES}"
        )
    return qos
