"""The hysteretic workload-broadcast policy (server side).

Every ``time_step`` seconds the reporter samples the host's workload
(100 x load average) and broadcasts it to the agent **only if** it moved
by more than ``threshold`` since the last broadcast, or if
``forced_interval`` has elapsed (the liveness floor — the agent treats
prolonged silence as death).  This is the traffic/accuracy trade the F2
and T2 experiments sweep: threshold 0 broadcasts every sample, a large
threshold approaches pure keep-alive traffic.

The decision logic is a pure function (:meth:`WorkloadReporter.decide`)
so the policy can be unit-tested and swept without a transport.  The
reporter owns no timers: the server drives :meth:`WorkloadReporter.tick`
from a restart-safe :class:`~repro.runtime.periodic.Periodic`, and
restart recreates the reporter — hysteresis state is deliberately
cold-started, exactly like the original daemon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..config import WorkloadPolicy

__all__ = ["WorkloadReporter"]


@dataclass
class _ReporterState:
    last_sent_value: Optional[float] = None
    last_sent_time: Optional[float] = None
    samples: int = 0
    broadcasts: int = 0


class WorkloadReporter:
    """Drives periodic sampling and hysteretic broadcasting.

    Parameters
    ----------
    policy:
        The Δt / threshold / forced-interval configuration.
    sample:
        Callable returning the current workload (100 x load average).
    broadcast:
        Callable invoked with the workload value when a report is due.
    """

    def __init__(
        self,
        policy: WorkloadPolicy,
        *,
        sample: Callable[[], float],
        broadcast: Callable[[float], None],
    ):
        self.policy = policy
        self._sample = sample
        self._broadcast = broadcast
        self.state = _ReporterState()
        #: (time, value) of every broadcast, for experiment plots
        self.sent_history: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    def decide(self, value: float, now: float) -> bool:
        """Pure hysteresis decision: should ``value`` be broadcast now?

        Threshold 0 disables hysteresis entirely: every sample goes out,
        even a bit-identical repeat.  The strict ``>`` below would read
        ``|Δ| > 0`` and suppress unchanged values until the forced
        interval, silently turning "report everything" into a keep-alive
        policy — the documented semantics win.
        """
        st = self.state
        if st.last_sent_value is None or st.last_sent_time is None:
            return True  # first sample always goes out
        if self.policy.threshold == 0:
            return True  # hysteresis off: broadcast every sample
        if abs(value - st.last_sent_value) > self.policy.threshold:
            return True
        return now - st.last_sent_time >= self.policy.forced_interval

    def tick(self, now: float) -> bool:
        """Sample once; broadcast if the policy says so.  Returns whether
        a broadcast happened."""
        value = float(self._sample())
        self.state.samples += 1
        if not self.decide(value, now):
            return False
        self.state.last_sent_value = value
        self.state.last_sent_time = now
        self.state.broadcasts += 1
        self.sent_history.append((now, value))
        self._broadcast(value)
        return True

    # ------------------------------------------------------------------
    @property
    def interval(self) -> float:
        """The sampling period the owning periodic should tick at."""
        return self.policy.time_step

    @property
    def broadcasts(self) -> int:
        return self.state.broadcasts

    @property
    def samples(self) -> int:
        return self.state.samples

    def agent_view_at(self, t: float) -> Optional[float]:
        """What the agent believes at time ``t``: the last broadcast value
        at or before ``t`` (ignoring network delay), or None."""
        value = None
        for when, v in self.sent_history:
            if when <= t:
                value = v
            else:
                break
        return value
