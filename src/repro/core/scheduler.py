"""Server-selection policies.

The paper's agent ranks candidates by predicted completion time —
minimum completion time (MCT).  The baselines implemented alongside are
the ones the scheduling experiment (T3) compares against:

* ``random`` — uniform choice, the no-information baseline,
* ``roundrobin`` — fair rotation, ignores heterogeneity,
* ``fastestpeak`` — always the highest peak-Mflop/s server, ignores
  workload and network (the "static ranking" straw man),
* ``mct`` — sort by the predictor's total.

Every policy returns the *full ordered candidate list*; the client works
down the list on failure, so policy choice also shapes retry behaviour.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from .predictor import Prediction
from .registry import ServerEntry

__all__ = [
    "SchedulingPolicy",
    "MinimumCompletionTime",
    "RandomPolicy",
    "RoundRobinPolicy",
    "FastestPeakPolicy",
    "make_policy",
    "mct_top_k",
]

PredictEntry = Callable[[ServerEntry], Prediction]


class SchedulingPolicy:
    """Base class: rank candidates best-first."""

    name = "base"

    def rank(
        self, entries: Sequence[ServerEntry], predict: PredictEntry
    ) -> list[ServerEntry]:
        raise NotImplementedError


class MinimumCompletionTime(SchedulingPolicy):
    """Ascending predicted completion time; server id breaks ties so
    equal predictions rank deterministically."""

    name = "mct"

    def rank(self, entries, predict):
        return sorted(
            entries, key=lambda e: (predict(e).total, e.server_id)
        )


def mct_top_k(
    entries: Sequence[ServerEntry], totals: Sequence[float], k: int
) -> list[int]:
    """Indices of the ``k`` best candidates under the MCT ordering.

    Partial selection over precomputed totals: O(n log k) instead of the
    full O(n log n) sort, while returning exactly
    ``MinimumCompletionTime.rank(...)[:k]`` — ``heapq.nsmallest`` is
    defined to equal ``sorted(...)[:k]``, including the (total,
    server_id) tie-break.
    """

    def key(i: int) -> tuple[float, str]:
        return (totals[i], entries[i].server_id)

    indices = range(len(entries))
    if k >= len(entries):
        return sorted(indices, key=key)
    return heapq.nsmallest(k, indices, key=key)


class RandomPolicy(SchedulingPolicy):
    """Uniformly random order."""

    name = "random"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def rank(self, entries, predict):
        order = list(entries)
        self.rng.shuffle(order)
        return order


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through the candidate set across successive queries."""

    name = "roundrobin"

    def __init__(self) -> None:
        self._counter = 0

    def rank(self, entries, predict):
        order = sorted(entries, key=lambda e: e.server_id)
        if not order:
            return []
        shift = self._counter % len(order)
        self._counter += 1
        return order[shift:] + order[:shift]


class FastestPeakPolicy(SchedulingPolicy):
    """Descending peak Mflop/s, blind to workload and network."""

    name = "fastestpeak"

    def rank(self, entries, predict):
        return sorted(entries, key=lambda e: (-e.mflops, e.server_id))


def make_policy(
    name: str, rng: np.random.Generator | None = None
) -> SchedulingPolicy:
    """Policy factory used by :class:`~repro.core.agent.Agent`."""
    key = name.lower()
    if key == "mct":
        return MinimumCompletionTime()
    if key == "random":
        if rng is None:
            raise ConfigError("random policy needs an rng")
        return RandomPolicy(rng)
    if key == "roundrobin":
        return RoundRobinPolicy()
    if key == "fastestpeak":
        return FastestPeakPolicy()
    raise ConfigError(f"unknown scheduling policy {name!r}")
