"""C/Fortran-flavoured procedural client API.

The original client libraries exposed four entry points with integer
status codes; this module preserves those calling conventions for users
porting 1996-style call sites:

* ``netsl(session, "problem()", *args)``   — blocking call
* ``netslnb(session, "problem()", *args)`` — non-blocking, returns handle
* ``netslpr(handle)``                       — probe, never blocks
* ``netslwt(session, handle)``              — wait and collect

A :class:`Session` binds a client component to something that can drive
its promises; :class:`SimSession` drives a simulated testbed.  Problem
names may carry the traditional trailing ``()`` decoration, which is
stripped.
"""

from __future__ import annotations

from typing import Any

from .core.client import NetSolveClient, RequestHandle
from .core.request import RequestStatus
from .errors import (
    BadArgumentsError,
    NetSolveError,
    NoServerError,
    ProblemNotFoundError,
)
from .testbed import Testbed

__all__ = [
    "NS_OK",
    "NS_NOT_READY",
    "NS_PROB_NOT_FOUND",
    "NS_BAD_ARGS",
    "NS_NO_SERVER",
    "NS_FAILURE",
    "Session",
    "SimSession",
    "netsl",
    "netslnb",
    "netslpr",
    "netslwt",
    "status_name",
]

NS_OK = 0
NS_NOT_READY = 1
NS_PROB_NOT_FOUND = -1
NS_BAD_ARGS = -2
NS_NO_SERVER = -3
NS_FAILURE = -4

_STATUS_NAMES = {
    NS_OK: "NS_OK",
    NS_NOT_READY: "NS_NOT_READY",
    NS_PROB_NOT_FOUND: "NS_PROB_NOT_FOUND",
    NS_BAD_ARGS: "NS_BAD_ARGS",
    NS_NO_SERVER: "NS_NO_SERVER",
    NS_FAILURE: "NS_FAILURE",
}


def status_name(code: int) -> str:
    """Symbolic name of a status code (for diagnostics)."""
    return _STATUS_NAMES.get(code, f"NS_UNKNOWN({code})")


def _classify(error: BaseException | None) -> int:
    if error is None:
        return NS_FAILURE
    if isinstance(error, ProblemNotFoundError):
        return NS_PROB_NOT_FOUND
    if isinstance(error, BadArgumentsError):
        return NS_BAD_ARGS
    if isinstance(error, NoServerError):
        return NS_NO_SERVER
    return NS_FAILURE


def _strip(problem: str) -> str:
    return problem[:-2] if problem.endswith("()") else problem


class Session:
    """Binds a client component to a promise driver."""

    def __init__(self, client: NetSolveClient):
        self.client = client

    def submit(self, problem: str, args: list) -> RequestHandle:
        """Submit through the client (overridden where thread-safety
        demands a lock, e.g. the TCP session)."""
        return self.client.submit(problem, args)

    def list_problems(self, prefix: str = ""):
        """Catalogue browse through the client (same override rule)."""
        return self.client.list_problems(prefix)

    def drive(self, promise) -> None:
        """Block until ``promise`` settles (transport specific)."""
        raise NotImplementedError


class SimSession(Session):
    """Session over a simulated testbed: waiting runs virtual time."""

    def __init__(self, testbed: Testbed, client_id: str):
        super().__init__(testbed.client(client_id))
        self.testbed = testbed

    def drive(self, promise) -> None:
        if promise.done:
            return
        self.testbed.kernel.run(stop=lambda: promise.done)
        if not promise.done:
            raise NetSolveError(
                "simulation drained before the request settled"
            )


# ----------------------------------------------------------------------
# the four entry points
# ----------------------------------------------------------------------
def netslnb(
    session: Session, problem: str, *args: Any
) -> tuple[int, RequestHandle]:
    """Non-blocking submit.  Returns ``(NS_OK, handle)`` — errors surface
    at probe/wait time, as in the original."""
    handle = session.submit(_strip(problem), list(args))
    return NS_OK, handle


def netslpr(handle: RequestHandle) -> int:
    """Probe: NS_OK once complete, NS_NOT_READY while in flight, or the
    request's error code."""
    if not handle.done:
        return NS_NOT_READY
    if handle.status is RequestStatus.DONE:
        return NS_OK
    return _classify(handle.promise.error)


def netslwt(session: Session, handle: RequestHandle) -> tuple[int, tuple]:
    """Wait for completion; returns ``(status, outputs)`` with empty
    outputs on failure."""
    session.drive(handle.promise)
    if handle.status is RequestStatus.DONE:
        return NS_OK, handle.result()
    return _classify(handle.promise.error), ()


def netsl(session: Session, problem: str, *args: Any) -> tuple[int, tuple]:
    """Blocking call: submit then wait."""
    _status, handle = netslnb(session, problem, *args)
    return netslwt(session, handle)
