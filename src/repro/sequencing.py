"""Request sequencing: pin related requests (and shared operands) to one
server.

A recurring NetSolve workload is a *sequence* of calls sharing a large
operand — power-method steps reusing the same matrix, iterative
refinement reusing the factored system, a sweep of right-hand sides
against one ``A``.  Brokering every call independently re-ships the
operand each time; sequencing ships it **once** to a chosen server's
object cache and references it thereafter:

    seq = open_sequence(client, "blas/dgemv", {"m": n, "n": n},
                        wait=tb.transport.run_until)
    seq.store("A", big_matrix)
    for x in vectors:
        handle = seq.submit("blas/dgemv", [seq.ref("A"), x])

The trade is explicit: sequenced requests are pinned — no fail-over —
because the sequence's data lives on that one server.  (The original
project shipped this idea as "request sequencing" in a later release;
here it is the documented extension experiment E1.)
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Optional, Sequence

from .core.client import NetSolveClient, RequestHandle
from .errors import NetSolveError, NoServerError
from .protocol.messages import Candidate, ObjectRef
from .protocol.transport import Promise

__all__ = ["ServerSequence", "open_sequence"]

Waiter = Callable[[Promise], Any]
_seq_ids = itertools.count()


class ServerSequence:
    """A handle for one client's pinned session with one server."""

    def __init__(
        self,
        client: NetSolveClient,
        *,
        server_address: str,
        server_id: str = "",
        wait: Optional[Waiter] = None,
    ):
        self.client = client
        self.server_address = server_address
        self.server_id = server_id or server_address
        self._wait = wait
        #: keys stored through this sequence (namespaced), for cleanup
        self.keys: list[str] = []
        #: qualified key -> value, kept client-side so a server that
        #: lost an operand (restart the hard way, eviction) is answered
        #: by re-submitting with the payload inlined instead of failing
        self._values: dict[str, Any] = {}
        self._namespace = f"seq{next(_seq_ids)}/{client.client_id}"

    # ------------------------------------------------------------------
    def _qualify(self, key: str) -> str:
        return f"{self._namespace}/{key}"

    def ref(self, key: str) -> ObjectRef:
        """Reference a previously stored operand by its local key."""
        return ObjectRef(self._qualify(key))

    def store(self, key: str, value: Any) -> Any:
        """Ship ``value`` to the sequence's server once.

        Blocking when the sequence has a waiter (returns stored bytes);
        otherwise returns the promise.
        """
        promise = self.client.store(self.server_address, self._qualify(key), value)
        self.keys.append(key)
        self._values[self._qualify(key)] = value
        if self._wait is None:
            return promise
        return self._wait(promise)

    def submit(
        self, problem: str, args: Sequence[Any], *, keep_result: bool = False
    ) -> RequestHandle:
        """Pinned non-blocking submit; args may contain :meth:`ref`\\ s.

        The stored values ride along as recovery payloads: a server that
        answers "missing object" (it restarted, or evicted the operand)
        gets the request once more with the lost operands inlined.
        ``keep_result=True`` leaves outputs resident on the server and
        resolves with :class:`~repro.protocol.messages.DataHandle` stubs.
        """
        return self.client.submit_pinned(
            problem, args, self.server_address, server_id=self.server_id,
            keep_result=keep_result, payloads=dict(self._values),
        )

    def solve(
        self, problem: str, args: Sequence[Any], *, keep_result: bool = False
    ) -> tuple:
        """Pinned blocking call (requires a waiter)."""
        if self._wait is None:
            raise NetSolveError("sequence has no waiter; use submit()")
        handle = self.submit(problem, args, keep_result=keep_result)
        return self._wait(handle.promise)

    def release(self) -> list[Any]:
        """Delete every stored operand; returns the delete promises
        (or their results, when a waiter is attached)."""
        out = []
        for key in self.keys:
            promise = self.client.delete_stored(
                self.server_address, self._qualify(key)
            )
            out.append(self._wait(promise) if self._wait else promise)
        self.keys.clear()
        self._values.clear()
        return out


def open_sequence(
    client: NetSolveClient,
    problem: str,
    sizes: Mapping[str, int],
    *,
    wait: Waiter,
) -> ServerSequence:
    """Ask the agent for the best server for ``problem`` at ``sizes``,
    then open a sequence pinned to it.

    The agent choice uses the normal brokered query (so sequencing still
    starts from the scheduler's knowledge); everything after is pinned.
    """
    promise = client.query_candidates(problem, dict(sizes))
    candidates: list[Candidate] = wait(promise)
    if not candidates:
        raise NoServerError(problem)
    best = candidates[0]
    return ServerSequence(
        client,
        server_address=best.address,
        server_id=best.server_id,
        wait=wait,
    )
