"""Keyed, generation-safe one-shot deadlines and retry chains.

Every timeout a component arms is a *deadline*: a key, a delay, and a
callback.  :class:`DeadlineTable` owns all of a component's deadlines
and guarantees the one property the hand-rolled versions kept getting
wrong — a deadline that has been superseded (re-armed under the same
key) or cancelled **cannot** fire its callback.  Each ``arm`` stamps a
fresh generation; the fire closure checks the stamp against the live
slot and returns silently on mismatch.  Stale fires are counted, not
executed, so tests can assert the guard did its job.

Timers themselves are never re-used: superseding a slot cancels the old
node timer *and* bumps the generation, covering both the sim transport
(lazy cancellation in the event kernel) and the TCP transport (a
``threading.Timer`` that may already be past the point of no return).

:class:`RetryChain` builds the NetSolve resend loop on top of a single
deadline slot: send, wait, resend up to an attempt budget, then give
up.  The client's DescribeProblem chain is the canonical user.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..errors import NetSolveError

__all__ = ["DeadlineTable", "RetryChain"]


class DeadlineTable:
    """All one-shot timeouts of one component, keyed and supersedable."""

    __slots__ = ("_component", "_slots", "_gen", "fired", "stale_suppressed")

    def __init__(self, component) -> None:
        self._component = component
        # key -> (generation, node timer handle or None)
        self._slots: dict[Hashable, tuple[int, object]] = {}
        self._gen = 0
        self.fired = 0
        self.stale_suppressed = 0

    def __len__(self) -> int:
        return len(self._slots)

    def active(self, key: Hashable) -> bool:
        return key in self._slots

    def arm(self, key: Hashable, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` after ``delay``, superseding any prior ``key``."""
        prior = self._slots.get(key)
        if prior is not None and prior[1] is not None:
            prior[1].cancel()
        self._gen += 1
        gen = self._gen

        def fire() -> None:
            slot = self._slots.get(key)
            if slot is None or slot[0] != gen:
                self.stale_suppressed += 1
                return
            del self._slots[key]
            self.fired += 1
            fn()

        timer = self._component.node.call_after(delay, fire)
        self._slots[key] = (gen, timer)

    def cancel(self, key: Hashable) -> bool:
        """Disarm ``key``; True if a deadline was actually pending."""
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        if slot[1] is not None:
            slot[1].cancel()
        return True

    def clear(self) -> int:
        """Disarm everything (restart path); returns how many were live."""
        count = 0
        for key in list(self._slots):
            count += self.cancel(key)
        return count


class RetryChain:
    """Send / await / resend up to an attempt budget, on one deadline slot.

    The callbacks split the seed components' inlined loop at its joints:

    * ``send(attempt)`` — transmit attempt number ``attempt`` (1-based);
    * ``on_retry(attempt)`` — observability hook, called *before* the
      resend so trace/metric ordering matches the hand-rolled code;
    * ``on_exhausted()`` — the budget is spent and nobody answered.

    ``cancel()`` (typically from the reply handler) stops the chain; a
    timeout from a superseded chain is swallowed by the deadline table.
    """

    __slots__ = ("_deadlines", "_key", "interval", "attempts",
                 "_send", "_on_exhausted", "_on_retry", "attempt")

    def __init__(self, deadlines: DeadlineTable, key: Hashable, *,
                 interval: float, attempts: int,
                 send: Callable[[int], None],
                 on_exhausted: Callable[[], None],
                 on_retry: Callable[[int], None] | None = None) -> None:
        if attempts < 1:
            raise NetSolveError(f"retry chain needs >= 1 attempt, got {attempts}")
        self._deadlines = deadlines
        self._key = key
        self.interval = interval
        self.attempts = attempts
        self._send = send
        self._on_exhausted = on_exhausted
        self._on_retry = on_retry
        self.attempt = 0

    def start(self) -> None:
        self.attempt = 1
        self._send(1)
        self._deadlines.arm(self._key, self.interval, self._timed_out)

    def cancel(self) -> bool:
        return self._deadlines.cancel(self._key)

    def _timed_out(self) -> None:
        if self.attempt >= self.attempts:
            self._on_exhausted()
            return
        self.attempt += 1
        if self._on_retry is not None:
            self._on_retry(self.attempt)
        self._send(self.attempt)
        self._deadlines.arm(self._key, self.interval, self._timed_out)
