"""Restart-safe recurring tasks.

A :class:`Periodic` owns one self-rescheduling timer chain: run the
body, then re-arm.  The property the components' inlined versions
lacked is idempotent restart — ``start()`` *supersedes* any previous
chain by bumping a generation stamp, so calling it again (``on_restart``
delegating to ``on_bind``, say) leaves exactly one live chain.  On the
sim transport a crash cancels node timers anyway; on the TCP transport
the old ``threading.Timer`` may still fire, and the stamp is what turns
that fire into a counted no-op instead of a duplicate chain.

Ticks preserve the seed components' body-then-rearm order, so any
timers the body arms keep their position in the event kernel's
insertion sequence (golden-run determinism depends on it).
"""

from __future__ import annotations

from typing import Callable

__all__ = ["Periodic"]


class Periodic:
    """One recurring task bound to a component's node."""

    __slots__ = ("_component", "interval", "_fn", "name",
                 "_gen", "_timer", "fires", "stale_ticks", "last_fired")

    def __init__(self, component, interval: float,
                 fn: Callable[[], None], *, name: str = "") -> None:
        self._component = component
        self.interval = interval
        self._fn = fn
        self.name = name
        self._gen = 0
        self._timer = None
        self.fires = 0
        self.stale_ticks = 0
        self.last_fired: float | None = None

    @property
    def running(self) -> bool:
        return self._timer is not None

    def start(self) -> None:
        """(Re)arm the chain, superseding any previous one."""
        self._gen += 1
        if self._timer is not None:
            self._timer.cancel()
        self._arm(self._gen)

    def stop(self) -> None:
        self._gen += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _arm(self, gen: int) -> None:
        # bench/test harness nodes may return None handles; a None timer
        # simply cannot be cancelled early, the stamp still protects us
        self._timer = self._component.node.call_after(
            self.interval, lambda: self._tick(gen)
        )

    def _tick(self, gen: int) -> None:
        if gen != self._gen:
            self.stale_ticks += 1
            return
        self.fires += 1
        self.last_fired = self._component.node.now()
        self._fn()
        if gen == self._gen:  # body may have called start()/stop()
            self._arm(gen)
