"""Shared component runtime.

Everything the three NetSolve components (client, agent, server) used to
hand-roll around the bare :class:`~repro.protocol.transport.Node`
primitives lives here, once:

* :mod:`repro.runtime.dispatch` — declarative message dispatch: handler
  methods are marked with :func:`handles` at class-definition time and
  :class:`DispatchComponent` routes every delivered message through the
  resulting registry, with one unknown-message policy and per-type
  dispatch counts;
* :mod:`repro.runtime.deadlines` — :class:`DeadlineTable` and
  :class:`RetryChain`: keyed, generation-safe one-shot timeouts.  A
  superseded or cancelled deadline structurally cannot fire its
  callback, which retires the whole class of stale-timer bugs the
  PR 3 sweep fixed case by case;
* :mod:`repro.runtime.periodic` — :class:`Periodic`: restart-safe
  recurring tasks.  ``start()`` supersedes any previous chain, so a
  component's ``on_restart`` re-arms exactly one chain no matter how
  the old one died (sim crash, TCP daemon restart, double restart).

See ``docs/architecture.md`` for the layering and a migration guide.
"""

from .deadlines import DeadlineTable, RetryChain
from .dispatch import DispatchComponent, handles
from .periodic import Periodic

__all__ = [
    "DispatchComponent",
    "handles",
    "DeadlineTable",
    "RetryChain",
    "Periodic",
]
