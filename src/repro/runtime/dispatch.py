"""Declarative message dispatch.

A component marks its handler methods at class-definition time::

    class Agent(DispatchComponent):
        @handles(QueryRequest)
        def _handle_query(self, src: str, msg: QueryRequest) -> None:
            ...

:class:`DispatchComponent` collects the marks into a per-class registry
(``__dispatch_table__``), resolves them to bound methods once at
``bind()`` time, and routes every delivered message with a single dict
lookup — replacing the ``isinstance`` chains the components used to
carry in ``on_message`` (and beating them: dispatch cost no longer
grows with the number of message types).

Handlers always take ``(src, msg)``.  Subclasses inherit their bases'
registrations and may override a handler by re-registering the same
message type; registering one type twice *within* a class body is a
definition-time error.

The unknown-message policy is uniform: count it, trace it when the
component carries a trace log, drop it.  A broker must survive bad
peers, so unknown messages are never an error — but they are no longer
invisible either.
"""

from __future__ import annotations

from typing import Callable, ClassVar

from ..errors import ProtocolError
from ..protocol.messages import Message
from ..protocol.transport import Component, Node

__all__ = ["handles", "DispatchComponent"]

#: attribute set on decorated handler functions (read once per class body)
_MARK = "__dispatch_types__"


def handles(*message_types: type[Message]) -> Callable:
    """Mark a method as the handler for one or more message types."""
    if not message_types:
        raise ProtocolError("@handles needs at least one message type")
    for mtype in message_types:
        if not (isinstance(mtype, type) and issubclass(mtype, Message)):
            raise ProtocolError(
                f"@handles argument {mtype!r} is not a Message subclass"
            )

    def mark(fn: Callable) -> Callable:
        already = getattr(fn, _MARK, ())
        setattr(fn, _MARK, tuple(already) + tuple(message_types))
        return fn

    return mark


class DispatchComponent(Component):
    """Component base with registry-driven ``on_message``."""

    #: message type -> handler method name, built at class definition
    __dispatch_table__: ClassVar[dict[type[Message], str]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        table: dict[type[Message], str] = {}
        for base in reversed(cls.__mro__[1:]):
            table.update(getattr(base, "__dispatch_table__", None) or {})
        fresh: dict[type[Message], str] = {}
        for name, attr in vars(cls).items():
            for mtype in getattr(attr, _MARK, ()):
                if mtype in fresh:
                    raise ProtocolError(
                        f"{cls.__name__}: both {fresh[mtype]!r} and "
                        f"{name!r} claim {mtype.__name__}"
                    )
                fresh[mtype] = name
        table.update(fresh)
        cls.__dispatch_table__ = table

    # ------------------------------------------------------------------
    def bind(self, node: Node) -> None:
        # resolve the registry to bound methods exactly once, and seed
        # the per-type counters so the hot path is a plain ``+= 1``
        self._handlers = {
            mtype: getattr(self, name)
            for mtype, name in type(self).__dispatch_table__.items()
        }
        self._dispatch_counts = dict.fromkeys(self._handlers, 0)
        self.unknown_messages = 0
        super().bind(node)

    def on_message(self, src: str, msg: Message) -> None:
        handler = self._handlers.get(type(msg))
        if handler is None:
            self.on_unknown_message(src, msg)
            return
        self._dispatch_counts[type(msg)] += 1
        handler(src, msg)

    # ------------------------------------------------------------------
    def on_unknown_message(self, src: str, msg: Message) -> None:
        """The single unknown-message policy: count, trace, drop."""
        self.unknown_messages += 1
        trace = getattr(self, "trace", None)
        if trace is not None:
            trace.log(
                self.node.now(), self.node.address, "unknown_message",
                src=src, type=type(msg).__name__,
            )

    @property
    def dispatch_counts(self) -> dict[str, int]:
        """Messages dispatched so far, keyed by message type name."""
        return {
            mtype.__name__: count
            for mtype, count in self._dispatch_counts.items()
        }

    @classmethod
    def handled_types(cls) -> tuple[type[Message], ...]:
        """The message types this component class dispatches."""
        return tuple(
            sorted(cls.__dispatch_table__, key=lambda t: t.TYPE_CODE)
        )
