"""Typed problem and object specifications.

A :class:`ProblemSpec` is the contract between client, agent and server:
it names the problem, types its input and output objects, and carries the
complexity expression.  Object dimensions are written in terms of *size
symbols* (``n``, ``m``, ...) which are bound from the concrete arguments
at call time; the same bindings feed the complexity expression and the
transfer-size model, so the agent can predict both compute and network
cost from the client's arguments alone.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import BadArgumentsError, ComplexityError
from .complexity import Complexity

__all__ = [
    "ObjectKind",
    "ObjectSpec",
    "SizeRule",
    "ProblemSpec",
    "validate_inputs",
    "bind_output_env",
]

_DTYPES = {"float64", "int64", "complex128"}
_SCALAR_OVERHEAD_BYTES = 8
_STRING_NOMINAL_BYTES = 64


class ObjectKind(enum.Enum):
    """The NetSolve object taxonomy."""

    MATRIX = "matrix"
    VECTOR = "vector"
    SCALAR = "scalar"
    STRING = "string"

    @property
    def rank(self) -> int | None:
        if self is ObjectKind.MATRIX:
            return 2
        if self is ObjectKind.VECTOR:
            return 1
        return None


# A dimension is either a size symbol ("n"), or a fixed integer.
Dim = "str | int"


@dataclass(frozen=True)
class SizeRule:
    """Binds a size symbol from a scalar input's *value* (e.g. ``nsteps``)."""

    symbol: str

    def __post_init__(self) -> None:
        if not self.symbol.isidentifier():
            raise ComplexityError(f"bad size symbol {self.symbol!r}")


@dataclass(frozen=True)
class ObjectSpec:
    """One typed input or output object.

    Parameters
    ----------
    name:
        Object name within the problem (for messages and PDL files).
    kind:
        MATRIX, VECTOR, SCALAR or STRING.
    dims:
        For matrices ``(rows, cols)`` and vectors ``(length,)``; each
        entry is a size symbol or a fixed int.  Must be empty for
        scalars/strings.
    dtype:
        ``float64`` (default), ``int64`` or ``complex128``; ignored for
        strings.
    binds:
        Optional :class:`SizeRule`: for a SCALAR input, bind this size
        symbol to the scalar's (integral) value.
    description:
        Human-readable one-liner, shown by the client's problem browser.
    """

    name: str
    kind: ObjectKind
    dims: tuple = ()
    dtype: str = "float64"
    binds: SizeRule | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise BadArgumentsError(f"bad object name {self.name!r}")
        if self.dtype not in _DTYPES:
            raise BadArgumentsError(
                f"object {self.name!r}: unsupported dtype {self.dtype!r}"
            )
        rank = self.kind.rank
        if rank is not None and len(self.dims) != rank:
            raise BadArgumentsError(
                f"object {self.name!r}: {self.kind.value} needs {rank} dims, "
                f"got {len(self.dims)}"
            )
        if rank is None and self.dims:
            raise BadArgumentsError(
                f"object {self.name!r}: {self.kind.value} takes no dims"
            )
        for d in self.dims:
            ok = (isinstance(d, int) and d > 0) or (
                isinstance(d, str) and d.isidentifier()
            )
            if not ok:
                raise BadArgumentsError(
                    f"object {self.name!r}: bad dimension {d!r}"
                )
        if self.binds is not None and self.kind is not ObjectKind.SCALAR:
            raise BadArgumentsError(
                f"object {self.name!r}: only scalars can bind size symbols"
            )

    # ------------------------------------------------------------------
    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)

    def size_symbols(self) -> frozenset[str]:
        syms = {d for d in self.dims if isinstance(d, str)}
        if self.binds is not None:
            syms.add(self.binds.symbol)
        return frozenset(syms)

    def nbytes(self, env: Mapping[str, float]) -> int:
        """Wire size of this object under symbol bindings ``env``."""
        if self.kind is ObjectKind.SCALAR:
            return _SCALAR_OVERHEAD_BYTES
        if self.kind is ObjectKind.STRING:
            return _STRING_NOMINAL_BYTES
        count = 1.0
        for d in self.dims:
            value = float(d) if isinstance(d, int) else float(env[d])
            count *= value
        return int(math.ceil(count)) * self.itemsize


@dataclass(frozen=True)
class ProblemSpec:
    """A named numerical service with typed I/O and a cost model."""

    name: str
    inputs: tuple[ObjectSpec, ...]
    outputs: tuple[ObjectSpec, ...]
    complexity: Complexity
    description: str = ""
    #: free-form library attribution, e.g. "LAPACK" — informational
    provenance: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise BadArgumentsError(f"bad problem name {self.name!r}")
        if not self.outputs:
            raise BadArgumentsError(f"problem {self.name!r} has no outputs")
        seen: set[str] = set()
        for obj in (*self.inputs, *self.outputs):
            if obj.name in seen:
                raise BadArgumentsError(
                    f"problem {self.name!r}: duplicate object {obj.name!r}"
                )
            seen.add(obj.name)
        bound = frozenset().union(
            *(o.size_symbols() for o in self.inputs)
        ) if self.inputs else frozenset()
        missing = self.complexity.symbols - bound
        if missing:
            raise ComplexityError(
                f"problem {self.name!r}: complexity uses unbound "
                f"symbols {sorted(missing)}"
            )
        out_syms = frozenset().union(*(o.size_symbols() for o in self.outputs))
        missing_out = out_syms - bound
        if missing_out:
            raise BadArgumentsError(
                f"problem {self.name!r}: output dims use unbound "
                f"symbols {sorted(missing_out)}"
            )

    # ------------------------------------------------------------------
    def input_bytes(self, env: Mapping[str, float]) -> int:
        return sum(o.nbytes(env) for o in self.inputs)

    def output_bytes(self, env: Mapping[str, float]) -> int:
        return sum(o.nbytes(env) for o in self.outputs)

    def flops(self, env: Mapping[str, float]) -> float:
        return self.complexity.flops(env)

    def signature(self) -> str:
        """Human-readable ``name(in...) -> (out...)`` line."""
        ins = ", ".join(
            f"{o.name}:{o.kind.value}" for o in self.inputs
        )
        outs = ", ".join(f"{o.name}:{o.kind.value}" for o in self.outputs)
        return f"{self.name}({ins}) -> ({outs})"


# ----------------------------------------------------------------------
# argument validation & size binding
# ----------------------------------------------------------------------
def _coerce(obj: ObjectSpec, value: Any) -> Any:
    if obj.kind is ObjectKind.STRING:
        if not isinstance(value, str):
            raise BadArgumentsError(
                f"argument {obj.name!r}: expected str, got {type(value).__name__}"
            )
        return value
    if obj.kind is ObjectKind.SCALAR:
        if isinstance(value, (bool, str, bytes)) or value is None:
            raise BadArgumentsError(
                f"argument {obj.name!r}: expected a number, got {value!r}"
            )
        try:
            arr = np.asarray(value, dtype=obj.dtype)
        except (TypeError, ValueError) as exc:
            raise BadArgumentsError(
                f"argument {obj.name!r}: not coercible to {obj.dtype}: {exc}"
            ) from None
        if arr.ndim != 0:
            raise BadArgumentsError(
                f"argument {obj.name!r}: expected a scalar, got shape {arr.shape}"
            )
        return arr[()]
    # MATRIX / VECTOR
    try:
        arr = np.asarray(value, dtype=obj.dtype)
    except (TypeError, ValueError) as exc:
        raise BadArgumentsError(
            f"argument {obj.name!r}: not coercible to {obj.dtype}: {exc}"
        ) from None
    rank = obj.kind.rank
    if arr.ndim != rank:
        raise BadArgumentsError(
            f"argument {obj.name!r}: expected rank-{rank} array, "
            f"got shape {arr.shape}"
        )
    return np.ascontiguousarray(arr)


def validate_inputs(
    spec: ProblemSpec, args: Sequence[Any]
) -> tuple[list[Any], dict[str, int]]:
    """Type-check/coerce ``args`` against ``spec`` and bind size symbols.

    Returns the coerced argument list and the ``{symbol: size}``
    environment.  Raises :class:`BadArgumentsError` on any mismatch,
    including inconsistent shared dimensions (an ``n x n`` matrix next to
    a length-``m`` vector claiming the same ``n``).

    An argument may be a :class:`~repro.protocol.messages.DataHandle` to
    a server-resident object: the value itself is not in hand, so the
    handle passes through uncoerced, its carried ``shape`` binding the
    dimension symbols a concrete array would have bound (handles without
    shape metadata bind nothing — any symbols they alone would pin stay
    unbound and the server re-validates after resolving residents).
    """
    from ..protocol.messages import DataHandle, ObjectRef
    if len(args) != len(spec.inputs):
        raise BadArgumentsError(
            f"problem {spec.name!r} takes {len(spec.inputs)} argument(s), "
            f"got {len(args)}"
        )
    env: dict[str, int] = {}
    coerced: list[Any] = []

    def bind(symbol: str, value: int, what: str) -> None:
        prior = env.get(symbol)
        if prior is None:
            env[symbol] = value
        elif prior != value:
            raise BadArgumentsError(
                f"problem {spec.name!r}: size symbol {symbol!r} bound to "
                f"{prior} but {what} implies {value}"
            )

    for obj, raw in zip(spec.inputs, args):
        if isinstance(raw, (DataHandle, ObjectRef)):
            coerced.append(raw)
            shape = tuple(getattr(raw, "shape", ()) or ())
            if (
                obj.kind in (ObjectKind.MATRIX, ObjectKind.VECTOR)
                and len(shape) == obj.kind.rank
            ):
                for dim, actual in zip(obj.dims, shape):
                    if isinstance(dim, int):
                        if actual != dim:
                            raise BadArgumentsError(
                                f"argument {obj.name!r}: dimension fixed at "
                                f"{dim}, got {actual}"
                            )
                    else:
                        bind(dim, int(actual), f"argument {obj.name!r}")
            continue
        value = _coerce(obj, raw)
        coerced.append(value)
        if obj.kind in (ObjectKind.MATRIX, ObjectKind.VECTOR):
            for dim, actual in zip(obj.dims, value.shape):
                if isinstance(dim, int):
                    if actual != dim:
                        raise BadArgumentsError(
                            f"argument {obj.name!r}: dimension fixed at "
                            f"{dim}, got {actual}"
                        )
                else:
                    bind(dim, int(actual), f"argument {obj.name!r}")
        elif obj.binds is not None:
            as_int = int(value)
            if as_int != value or as_int <= 0:
                raise BadArgumentsError(
                    f"argument {obj.name!r}: must be a positive integer to "
                    f"bind size symbol {obj.binds.symbol!r}, got {value!r}"
                )
            bind(obj.binds.symbol, as_int, f"argument {obj.name!r}")
    return coerced, env


def bind_output_env(
    spec: ProblemSpec, env: Mapping[str, int]
) -> dict[str, int]:
    """Restrict ``env`` to the symbols the outputs need (defensive copy)."""
    needed = frozenset().union(*(o.size_symbols() for o in spec.outputs))
    try:
        return {s: int(env[s]) for s in needed}
    except KeyError as exc:
        raise BadArgumentsError(
            f"problem {spec.name!r}: output symbol {exc.args[0]!r} unbound"
        ) from None
