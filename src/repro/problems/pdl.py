"""The problem description language (PDL).

NetSolve grows its problem set through *problem description files*: small
declarative texts that name a problem, its library of origin, its typed
inputs/outputs and its complexity formula.  The server-side installer
compiles them into dispatch code; here they parse into
:class:`~repro.problems.spec.ProblemSpec` objects which are registered
together with a Python handler.

Format (line oriented, ``#`` comments, blank lines ignored)::

    problem linsys/dgesv
        lib         LAPACK
        description Solve the dense linear system A*x = b
        complexity  2/3*n^3 + 2*n^2
        input  A matrix[n,n] float64  "coefficient matrix"
        input  b vector[n]            "right-hand side"
        output x vector[n]            "solution vector"
    end

    problem ode/rk4
        description Integrate y' = f(t, y) with classical RK4
        complexity  40*d*steps
        input  y0    vector[d]
        input  steps scalar int64 binds=steps
        input  t1    scalar
        output y     vector[d]
    end

Rules
-----
* ``matrix[r,c]`` / ``vector[len]`` dimensions are size symbols or
  positive integer literals.
* dtype is optional and defaults to ``float64``.
* ``binds=SYMBOL`` is allowed on scalar inputs only and binds the symbol
  to the scalar's integral value.
* the trailing quoted string is an optional per-object description.
* a problem ends at ``end``; any number of problems per file.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..errors import PdlSyntaxError
from .complexity import Complexity
from .spec import ObjectKind, ObjectSpec, ProblemSpec, SizeRule

__all__ = ["parse_pdl", "parse_pdl_file", "render_pdl"]

_OBJ_RE = re.compile(
    r"""^(?P<io>input|output)\s+
        (?P<name>[A-Za-z_][A-Za-z_0-9]*)\s+
        (?P<kind>matrix|vector|scalar|string)
        (?:\[(?P<dims>[^\]]*)\])?
        (?:\s+(?P<dtype>float64|int64|complex128))?
        (?:\s+binds=(?P<binds>[A-Za-z_][A-Za-z_0-9]*))?
        (?:\s+"(?P<desc>[^"]*)")?
        \s*$""",
    re.VERBOSE,
)

_KEYWORDS = ("lib", "description", "complexity")


def _parse_dims(raw: str | None, line_no: int) -> tuple:
    if raw is None:
        return ()
    dims: list = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            raise PdlSyntaxError("empty dimension", line_no)
        if part.isdigit():
            value = int(part)
            if value <= 0:
                raise PdlSyntaxError(f"dimension must be positive: {part}", line_no)
            dims.append(value)
        elif part.isidentifier():
            dims.append(part)
        else:
            raise PdlSyntaxError(f"bad dimension {part!r}", line_no)
    return tuple(dims)


def parse_pdl(text: str, *, source: str = "<pdl>") -> list[ProblemSpec]:
    """Parse PDL text into a list of :class:`ProblemSpec`."""
    specs: list[ProblemSpec] = []
    state: dict | None = None

    def finish(line_no: int) -> None:
        nonlocal state
        assert state is not None
        if state["complexity"] is None:
            raise PdlSyntaxError(
                f"problem {state['name']!r} has no complexity", line_no
            )
        if not state["outputs"]:
            raise PdlSyntaxError(
                f"problem {state['name']!r} has no outputs", line_no
            )
        try:
            spec = ProblemSpec(
                name=state["name"],
                inputs=tuple(state["inputs"]),
                outputs=tuple(state["outputs"]),
                complexity=state["complexity"],
                description=state["description"],
                provenance=state["lib"],
            )
        except Exception as exc:
            raise PdlSyntaxError(
                f"problem {state['name']!r}: {exc}", line_no
            ) from exc
        specs.append(spec)
        state = None

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        head, _, rest = line.partition(" ")
        rest = rest.strip()

        if head == "problem":
            if state is not None:
                raise PdlSyntaxError(
                    f"problem {state['name']!r} not closed with 'end'", line_no
                )
            if not rest:
                raise PdlSyntaxError("problem needs a name", line_no)
            state = {
                "name": rest,
                "lib": "",
                "description": "",
                "complexity": None,
                "inputs": [],
                "outputs": [],
            }
            continue

        if state is None:
            raise PdlSyntaxError(
                f"directive {head!r} outside a problem block", line_no
            )

        if head == "end":
            if rest:
                raise PdlSyntaxError("'end' takes no arguments", line_no)
            finish(line_no)
            continue

        if head in _KEYWORDS:
            if not rest:
                raise PdlSyntaxError(f"{head} needs a value", line_no)
            if head == "complexity":
                try:
                    state["complexity"] = Complexity(rest)
                except Exception as exc:
                    raise PdlSyntaxError(str(exc), line_no) from exc
            elif head == "lib":
                state["lib"] = rest
            else:
                state["description"] = rest
            continue

        if head in ("input", "output"):
            m = _OBJ_RE.match(line)
            if m is None:
                raise PdlSyntaxError(f"bad object declaration: {line!r}", line_no)
            kind = ObjectKind(m.group("kind"))
            binds = m.group("binds")
            if binds is not None and m.group("io") == "output":
                raise PdlSyntaxError("binds= is only valid on inputs", line_no)
            try:
                obj = ObjectSpec(
                    name=m.group("name"),
                    kind=kind,
                    dims=_parse_dims(m.group("dims"), line_no),
                    dtype=m.group("dtype") or "float64",
                    binds=SizeRule(binds) if binds else None,
                    description=m.group("desc") or "",
                )
            except Exception as exc:
                raise PdlSyntaxError(str(exc), line_no) from exc
            state["inputs" if m.group("io") == "input" else "outputs"].append(obj)
            continue

        raise PdlSyntaxError(f"unknown directive {head!r}", line_no)

    if state is not None:
        raise PdlSyntaxError(
            f"problem {state['name']!r} not closed with 'end' "
            f"(end of {source})"
        )
    return specs


def parse_pdl_file(path: str | Path) -> list[ProblemSpec]:
    """Parse a problem description file from disk."""
    path = Path(path)
    return parse_pdl(path.read_text(encoding="utf-8"), source=str(path))


def _render_object(io: str, obj: ObjectSpec) -> str:
    parts = [io, obj.name, obj.kind.value]
    if obj.dims:
        parts[-1] += "[" + ",".join(str(d) for d in obj.dims) + "]"
    if obj.dtype != "float64":
        parts.append(obj.dtype)
    if obj.binds is not None:
        parts.append(f"binds={obj.binds.symbol}")
    if obj.description:
        parts.append(f'"{obj.description}"')
    return "    " + " ".join(parts)


def render_pdl(specs: "ProblemSpec | list[ProblemSpec]") -> str:
    """Render spec(s) back to PDL text.

    ``parse_pdl(render_pdl(specs)) == specs`` — the round-trip is exact,
    which is how problem descriptions travel from servers to agents on
    the wire.
    """
    if isinstance(specs, ProblemSpec):
        specs = [specs]
    blocks: list[str] = []
    for spec in specs:
        lines = [f"problem {spec.name}"]
        if spec.provenance:
            lines.append(f"    lib {spec.provenance}")
        if spec.description:
            lines.append(f"    description {spec.description}")
        lines.append(f"    complexity {spec.complexity.text}")
        lines.extend(_render_object("input", o) for o in spec.inputs)
        lines.extend(_render_object("output", o) for o in spec.outputs)
        lines.append("end")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"
