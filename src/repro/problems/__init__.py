"""Problem description machinery.

NetSolve servers advertise *problems* — named numerical services with
typed inputs and outputs and an algebraic *complexity* expression that
tells the agent how many floating-point operations a given instance
costs.  This package supplies:

* :mod:`repro.problems.complexity` — a safe parser/evaluator for
  complexity expressions such as ``2/3*n^3 + 2*n^2``,
* :mod:`repro.problems.spec` — the typed problem/object specifications,
* :mod:`repro.problems.pdl` — the problem-description-file language,
* :mod:`repro.problems.registry` — the name -> (spec, handler) registry,
* :mod:`repro.problems.builtin` — the stock problem set backed by
  :mod:`repro.numerics`.
"""

from .complexity import Complexity
from .spec import (
    ObjectKind,
    ObjectSpec,
    ProblemSpec,
    SizeRule,
    validate_inputs,
)
from .registry import ProblemRegistry, RegisteredProblem
from .pdl import parse_pdl, parse_pdl_file
from .builtin import builtin_registry, BUILTIN_PDL

__all__ = [
    "Complexity",
    "ObjectKind",
    "ObjectSpec",
    "ProblemSpec",
    "SizeRule",
    "validate_inputs",
    "ProblemRegistry",
    "RegisteredProblem",
    "parse_pdl",
    "parse_pdl_file",
    "builtin_registry",
    "BUILTIN_PDL",
]
