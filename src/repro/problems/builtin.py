"""The stock problem set.

Mirrors the flavour of the original server's catalogue (LAPACK dense
linear algebra, BLAS kernels, eigensolvers, ItPack iterative methods,
QuadPack quadrature, FitPack fitting, plus FFT/ODE/sorting), with each
problem described in PDL and dispatched to :mod:`repro.numerics`.

``builtin_registry()`` returns a fresh registry so callers can prune or
extend their copy without affecting others (partial servers advertise a
subset, exactly as heterogeneous NetSolve servers did).
"""

from __future__ import annotations

import numpy as np

from .. import numerics as num
from ..errors import NumericsError
from .pdl import parse_pdl
from .registry import ProblemRegistry

__all__ = ["BUILTIN_PDL", "builtin_registry"]

BUILTIN_PDL = """
# ---- dense linear algebra (LAPACK slice) -------------------------------
problem linsys/dgesv
    lib         LAPACK
    description Solve the dense linear system A*x = b by LU with partial pivoting
    complexity  2/3*n^3 + 2*n^2
    input  A matrix[n,n]  "coefficient matrix"
    input  b vector[n]    "right-hand side"
    output x vector[n]    "solution vector"
end

problem linsys/inverse
    lib         LAPACK
    description Dense matrix inverse via LU and n unit right-hand sides
    complexity  2*n^3
    input  A    matrix[n,n]
    output Ainv matrix[n,n]
end

problem linsys/det
    lib         LAPACK
    description Determinant via LU factorization
    complexity  2/3*n^3
    input  A matrix[n,n]
    output d scalar
end

problem linsys/spd
    lib         LAPACK
    description Solve a symmetric positive definite system by Cholesky
    complexity  1/3*n^3 + 2*n^2
    input  A matrix[n,n]  "SPD coefficient matrix"
    input  b vector[n]
    output x vector[n]
end

problem lstsq/dgels
    lib         LAPACK
    description Least-squares solution of an overdetermined system by QR
    complexity  2*m*n^2
    input  A matrix[m,n]
    input  b vector[m]
    output x vector[n]
end

# ---- BLAS kernels -------------------------------------------------------
problem blas/dgemm
    lib         BLAS
    description Blocked general matrix-matrix product C = A*B
    complexity  2*m*n*k
    input  A matrix[m,k]
    input  B matrix[k,n]
    output C matrix[m,n]
end

problem blas/dgemv
    lib         BLAS
    description General matrix-vector product y = A*x
    complexity  2*m*n
    input  A matrix[m,n]
    input  x vector[n]
    output y vector[m]
end

problem blas/ddot
    lib         BLAS
    description Inner product of two vectors
    complexity  2*n
    input  x vector[n]
    input  y vector[n]
    output r scalar
end

problem blas/dnrm2
    lib         BLAS
    description Overflow-safe Euclidean norm
    complexity  2*n
    input  x vector[n]
    output r scalar
end

# ---- eigenproblems ------------------------------------------------------
problem eigen/power
    lib         LINPACK
    description Dominant eigenpair by power iteration
    complexity  60*n^2
    input  A      matrix[n,n]
    output lambda scalar
    output v      vector[n]
end

problem eigen/symm
    lib         LAPACK
    description Full symmetric eigendecomposition by cyclic Jacobi
    complexity  30*n^3
    input  A matrix[n,n]
    output w vector[n]     "eigenvalues, ascending"
    output V matrix[n,n]   "eigenvectors as columns"
end

problem eigen/vals
    lib         LAPACK
    description All eigenvalues of a general real matrix (shifted QR)
    complexity  10*n^3
    input  A matrix[n,n]
    output w vector[n] complex128
end

problem svd/values
    lib         LAPACK
    description Singular values (descending) by one-sided Jacobi; needs m >= n
    complexity  30*m*n^2
    input  A matrix[m,n]
    output s vector[n]  "singular values, descending"
end

# ---- iterative solvers (ItPack slice) -----------------------------------
problem iter/cg
    lib         ItPack
    description Conjugate gradients for symmetric positive definite systems
    complexity  20*n^2
    input  A matrix[n,n]
    input  b vector[n]
    output x vector[n]
end

problem iter/jacobi
    lib         ItPack
    description Jacobi iteration for diagonally dominant systems
    complexity  40*n^2
    input  A matrix[n,n]
    input  b vector[n]
    output x vector[n]
end

problem sparse/cg
    lib         ItPack
    description Conjugate gradients on a CSR system (SPD); indptr length n+1
    complexity  50*nnz + 200*n
    input  indptr  vector[np1] int64  "CSR row pointer (length n+1)"
    input  indices vector[nnz] int64  "CSR column indices"
    input  vals    vector[nnz]        "CSR values"
    input  b       vector[n]          "right-hand side"
    output x       vector[n]
end

problem sparse/jacobi
    lib         ItPack
    description Jacobi iteration on a CSR system (diagonally dominant)
    complexity  100*nnz + 400*n
    input  indptr  vector[np1] int64
    input  indices vector[nnz] int64
    input  vals    vector[nnz]
    input  b       vector[n]
    output x       vector[n]
end

problem linsys/tridiag
    lib         LAPACK
    description Solve a diagonally dominant tridiagonal system (Thomas)
    complexity  8*n
    input  dl  vector[nm1]  "subdiagonal (length n-1)"
    input  d   vector[n]    "main diagonal"
    input  du  vector[nm1]  "superdiagonal (length n-1)"
    input  b   vector[n]
    output x   vector[n]
end

# ---- signal processing --------------------------------------------------
problem signal/fft
    lib         FFTPACK
    description Radix-2 fast Fourier transform (length a power of two)
    complexity  5*n*log2(n)
    input  x vector[n] complex128
    output y vector[n] complex128
end

# ---- ODE integration ----------------------------------------------------
problem ode/linear
    lib         ODEPACK
    description Integrate the linear system y' = M*y over [0, t1] with RK4
    complexity  8*d^2*steps
    input  M     matrix[d,d]
    input  y0    vector[d]
    input  steps scalar int64 binds=steps
    input  t1    scalar
    output y     vector[d]
end

# ---- quadrature (QuadPack slice) ----------------------------------------
problem quad/poly
    lib         QuadPack
    description Integrate a polynomial (coefficients lowest-first) over [a, b]
    complexity  2000*d
    input  c vector[d]  "polynomial coefficients, lowest order first"
    input  a scalar
    input  b scalar
    output I scalar
end

problem quad/gauss
    lib         QuadPack
    description Integrate a polynomial with an n-point Gauss-Legendre rule
    complexity  30*pts + 100*d
    input  c   vector[d]  "polynomial coefficients, lowest order first"
    input  a   scalar
    input  b   scalar
    input  pts scalar int64 binds=pts
    output I   scalar
end

# ---- fitting (FitPack slice) --------------------------------------------
problem fit/poly
    lib         FitPack
    description Least-squares polynomial fit; ncoeff = degree + 1
    complexity  2*n*d^2
    input  x      vector[n]
    input  y      vector[n]
    input  ncoeff scalar int64 binds=d
    output coeffs vector[d] "coefficients, lowest order first"
end

problem fit/smooth
    lib         FitPack
    description Natural cubic smoothing of uniform samples (penalty lam)
    complexity  2/3*n^3
    input  y   vector[n]
    input  lam scalar
    output s   vector[n]
end

# ---- sorting / selection ------------------------------------------------
problem sort/merge
    lib         misc
    description Stable merge sort
    complexity  20*n*log2(n)
    input  x vector[n]
    output y vector[n]
end

problem sort/select
    lib         misc
    description k-th smallest element (0-based) by quickselect
    complexity  10*n
    input  x vector[n]
    input  k scalar int64
    output v scalar
end
"""


def _h_dgesv(a, b):
    return num.solve(a, b)


def _h_inverse(a):
    return num.inverse(a)


def _h_det(a):
    return np.float64(num.determinant(a))


def _h_dgels(a, b):
    return num.qr_solve_ls(a, b)


def _h_spd(a, b):
    return num.cholesky_solve(num.cholesky_factor(a), b)


def _h_svd_values(a):
    if a.shape[0] < a.shape[1]:
        raise NumericsError("svd/values requires m >= n (send A.T)")
    return num.svd_values(a)


def _csr(indptr, indices, vals, b):
    n = b.shape[0]
    if indptr.shape[0] != n + 1:
        raise NumericsError(
            f"indptr has length {indptr.shape[0]}, expected n+1={n + 1}"
        )
    return num.CsrMatrix((n, n), indptr, indices, vals)


def _h_sparse_cg(indptr, indices, vals, b):
    x, _iters = num.sparse_cg(_csr(indptr, indices, vals, b), b)
    return x


def _h_sparse_jacobi(indptr, indices, vals, b):
    x, _iters = num.sparse_jacobi(_csr(indptr, indices, vals, b), b)
    return x


def _h_dgemm(a, b):
    return num.gemm(a, b)


def _h_dgemv(a, x):
    return num.gemv(a, x)


def _h_ddot(x, y):
    return np.float64(num.dot(x, y))


def _h_dnrm2(x):
    return np.float64(num.nrm2(x))


def _h_power(a):
    lam, v = num.power_iteration(a)
    return np.float64(lam), v


def _h_symm(a):
    w, v = num.eig_symmetric(a)
    return w, v


def _h_vals(a):
    return num.eigvals_general(a)


def _h_cg(a, b):
    x, _iters = num.conjugate_gradient(a, b)
    return x


def _h_jacobi(a, b):
    x, _iters = num.jacobi(a, b)
    return x


def _h_fft(x):
    return num.fft(x)


def _h_ode_linear(m, y0, steps, t1):
    rhs = lambda _t, y: m @ y  # noqa: E731 - tiny closure over the input
    return num.rk4(rhs, y0, 0.0, float(t1), int(steps))


def _h_tridiag(dl, d, du, b):
    if dl.shape[0] != d.shape[0] - 1:
        raise NumericsError(
            f"subdiagonal has length {dl.shape[0]}, expected n-1={d.shape[0] - 1}"
        )
    return num.thomas_solve(dl, d, du, b)


def _h_quad_gauss(c, a, b, pts):
    poly = np.polynomial.polynomial.Polynomial(c)
    return np.float64(
        num.gauss_legendre(lambda x: float(poly(x)), float(a), float(b), int(pts))
    )


def _h_quad_poly(c, a, b):
    poly = np.polynomial.polynomial.Polynomial(c)
    value, _evals = num.adaptive_simpson(
        lambda x: float(poly(x)), float(a), float(b)
    )
    return np.float64(value)


def _h_fit_poly(x, y, ncoeff):
    return num.polyfit_ls(x, y, int(ncoeff) - 1)


def _h_fit_smooth(y, lam):
    return num.cubic_smooth(y, float(lam))


def _h_sort(x):
    return num.merge_sort(x)


def _h_select(x, k):
    return np.float64(num.quickselect(x, int(k)))


def _hb_dgesv(items):
    return num.solve_batched([a for a, _b in items], [b for _a, b in items])


def _hb_dgemm(items):
    return num.matmul_batched([a for a, _b in items], [b for _a, b in items])


def _hb_fft(items):
    return num.fft_batched([x for (x,) in items])


#: problems with a stacked batch lane (bit-identical to per-item runs)
_BATCH_HANDLERS = {
    "linsys/dgesv": _hb_dgesv,
    "blas/dgemm": _hb_dgemm,
    "signal/fft": _hb_fft,
}


_HANDLERS = {
    "linsys/dgesv": _h_dgesv,
    "linsys/inverse": _h_inverse,
    "linsys/det": _h_det,
    "linsys/spd": _h_spd,
    "lstsq/dgels": _h_dgels,
    "svd/values": _h_svd_values,
    "sparse/cg": _h_sparse_cg,
    "sparse/jacobi": _h_sparse_jacobi,
    "blas/dgemm": _h_dgemm,
    "blas/dgemv": _h_dgemv,
    "blas/ddot": _h_ddot,
    "blas/dnrm2": _h_dnrm2,
    "eigen/power": _h_power,
    "eigen/symm": _h_symm,
    "eigen/vals": _h_vals,
    "iter/cg": _h_cg,
    "iter/jacobi": _h_jacobi,
    "signal/fft": _h_fft,
    "ode/linear": _h_ode_linear,
    "linsys/tridiag": _h_tridiag,
    "quad/gauss": _h_quad_gauss,
    "quad/poly": _h_quad_poly,
    "fit/poly": _h_fit_poly,
    "fit/smooth": _h_fit_smooth,
    "sort/merge": _h_sort,
    "sort/select": _h_select,
}


def builtin_registry() -> ProblemRegistry:
    """A fresh registry containing the full stock problem set."""
    registry = ProblemRegistry()
    specs = parse_pdl(BUILTIN_PDL, source="<builtin>")
    by_name = {spec.name: spec for spec in specs}
    missing_spec = set(_HANDLERS) - set(by_name)
    missing_handler = set(by_name) - set(_HANDLERS)
    if missing_spec or missing_handler:  # pragma: no cover - build-time guard
        raise RuntimeError(
            f"builtin catalogue out of sync: no spec for {sorted(missing_spec)}, "
            f"no handler for {sorted(missing_handler)}"
        )
    for name, spec in by_name.items():
        registry.register(
            spec, _HANDLERS[name], batch=_BATCH_HANDLERS.get(name)
        )
    return registry
