"""Problem registry: names -> (spec, handler).

A handler is a plain Python callable ``handler(*coerced_inputs) ->
tuple_of_outputs`` (a single non-tuple return is wrapped).  Servers
install a registry at startup; the agent only ever sees the specs.

A problem may additionally carry a *batch handler* — ``batch(items) ->
list_of_results`` over a list of coerced input tuples — which the
server's micro-batching lane uses to run several queued same-problem
requests as one stacked numerics call.  Batch handlers must be
bit-identical to running the scalar handler per item; any batch-lane
failure falls back to per-item execution so one bad operand (say, a
singular matrix) only fails its own request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import BadArgumentsError, ProblemNotFoundError
from .spec import ObjectKind, ProblemSpec, validate_inputs

__all__ = ["RegisteredProblem", "ProblemRegistry"]

Handler = Callable[..., Any]
#: batch lane: list of coerced input tuples -> list of per-item results
BatchHandler = Callable[[Sequence[Sequence[Any]]], Sequence[Any]]


@dataclass(frozen=True)
class RegisteredProblem:
    spec: ProblemSpec
    handler: Handler
    batch_handler: "BatchHandler | None" = None

    @property
    def name(self) -> str:
        return self.spec.name


class ProblemRegistry:
    """Mapping of problem names to registered problems.

    Names are hierarchical by convention (``linsys/dgesv``); lookup is
    exact, and :meth:`search` supports prefix browsing the way the
    original client's problem browser did.
    """

    def __init__(self) -> None:
        self._problems: dict[str, RegisteredProblem] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        spec: ProblemSpec,
        handler: Handler,
        *,
        batch: "BatchHandler | None" = None,
    ) -> RegisteredProblem:
        if spec.name in self._problems:
            raise BadArgumentsError(f"problem {spec.name!r} already registered")
        if not callable(handler):
            raise BadArgumentsError(f"handler for {spec.name!r} is not callable")
        if batch is not None and not callable(batch):
            raise BadArgumentsError(
                f"batch handler for {spec.name!r} is not callable"
            )
        reg = RegisteredProblem(spec, handler, batch)
        self._problems[spec.name] = reg
        return reg

    def register_many(
        self, pairs: Iterable[tuple[ProblemSpec, Handler]]
    ) -> None:
        for spec, handler in pairs:
            self.register(spec, handler)

    def unregister(self, name: str) -> None:
        if name not in self._problems:
            raise ProblemNotFoundError(name)
        del self._problems[name]

    # ------------------------------------------------------------------
    def get(self, name: str) -> RegisteredProblem:
        try:
            return self._problems[name]
        except KeyError:
            raise ProblemNotFoundError(name) from None

    def spec(self, name: str) -> ProblemSpec:
        return self.get(name).spec

    def __contains__(self, name: str) -> bool:
        return name in self._problems

    def __len__(self) -> int:
        return len(self._problems)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._problems))

    def names(self) -> list[str]:
        return sorted(self._problems)

    def specs(self) -> list[ProblemSpec]:
        return [self._problems[n].spec for n in self.names()]

    def search(self, prefix: str) -> list[str]:
        """Problem names starting with ``prefix`` (the problem browser)."""
        return [n for n in self.names() if n.startswith(prefix)]

    def subset(self, names: Iterable[str]) -> "ProblemRegistry":
        """A new registry restricted to ``names`` (for partial servers)."""
        out = ProblemRegistry()
        for name in names:
            reg = self.get(name)
            out.register(reg.spec, reg.handler, batch=reg.batch_handler)
        return out

    def has_batch(self, name: str) -> bool:
        """True when ``name`` is registered with a batch handler."""
        reg = self._problems.get(name)
        return reg is not None and reg.batch_handler is not None

    # ------------------------------------------------------------------
    def execute(self, name: str, args: Sequence[Any]) -> tuple:
        """Validate ``args`` and run the handler; returns the output tuple.

        Outputs are checked against the spec (count, kind rank, dtype)
        so a buggy handler fails on the server, loudly, rather than
        shipping malformed objects back to the client.
        """
        reg = self.get(name)
        coerced, _env = validate_inputs(reg.spec, args)
        result = reg.handler(*coerced)
        return _check_outputs(name, reg.spec, result)

    def execute_batch(self, name: str, args_list: Sequence[Sequence[Any]]) -> list:
        """Run several same-problem requests through the batch lane.

        Returns one entry per item: the checked output tuple on success,
        or the exception that item raised.  The stacked call is tried
        first; any batch-lane failure (a singular member, a shape the
        kernel rejects) degrades to per-item :meth:`execute` so healthy
        members still complete.
        """
        reg = self.get(name)
        if reg.batch_handler is None:
            raise BadArgumentsError(f"problem {name!r} has no batch handler")
        if not args_list:
            return []
        try:
            coerced_items = [
                validate_inputs(reg.spec, args)[0] for args in args_list
            ]
            results = reg.batch_handler(coerced_items)
            if len(results) != len(args_list):
                raise BadArgumentsError(
                    f"problem {name!r}: batch handler returned "
                    f"{len(results)} result(s) for {len(args_list)} item(s)"
                )
            return [_check_outputs(name, reg.spec, r) for r in results]
        except Exception:
            out: list = []
            for args in args_list:
                try:
                    out.append(self.execute(name, args))
                except Exception as exc:
                    out.append(exc)
            return out


def _check_outputs(name: str, spec: ProblemSpec, result: Any) -> tuple:
    """Check one handler result against the spec (count, kind, dtype)."""
    if not isinstance(result, tuple):
        result = (result,)
    out_specs = spec.outputs
    if len(result) != len(out_specs):
        raise BadArgumentsError(
            f"problem {name!r}: handler returned {len(result)} output(s), "
            f"spec declares {len(out_specs)}"
        )
    checked = []
    for obj, value in zip(out_specs, result):
        if obj.kind is ObjectKind.STRING:
            if not isinstance(value, str):
                raise BadArgumentsError(
                    f"problem {name!r}: output {obj.name!r} should be str"
                )
            checked.append(value)
            continue
        import numpy as np

        arr = np.asarray(value, dtype=obj.dtype)
        rank = obj.kind.rank
        expected_rank = 0 if rank is None else rank
        if arr.ndim != expected_rank:
            raise BadArgumentsError(
                f"problem {name!r}: output {obj.name!r} has rank "
                f"{arr.ndim}, expected {expected_rank}"
            )
        checked.append(arr[()] if expected_rank == 0 else arr)
    return tuple(checked)
