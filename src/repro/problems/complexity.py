"""Algebraic complexity expressions.

Problem descriptions carry a flop-count formula over the instance's size
symbols, e.g. ``2/3*n^3 + 2*n^2`` for LU-based solves or ``5*n*log2(n)``
for an FFT.  The agent evaluates the same expression object both to rank
servers (predicted compute time = flops / effective speed) and, in
simulation, to decide how long the job actually holds the CPU.

Expressions are parsed by a small recursive-descent parser into an AST —
never ``eval`` — and evaluated against a ``{symbol: value}`` binding.

Grammar::

    expr    := term (('+'|'-') term)*
    term    := unary (('*'|'/') unary)*
    unary   := '-' unary | power
    power   := atom ('^' unary)?          (right associative)
    atom    := NUMBER | NAME | NAME '(' expr ')' | '(' expr ')'

Supported functions: ``log`` (natural), ``log2``, ``log10``, ``sqrt``,
``min``/``max`` (two arguments), ``ceil``, ``floor``.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterator, Mapping

from ..errors import ComplexityError

__all__ = ["Complexity"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[-+*/^(),]))"
)

_FUNCTIONS: dict[str, tuple[int, Callable[..., float]]] = {
    "log": (1, math.log),
    "log2": (1, math.log2),
    "log10": (1, math.log10),
    "sqrt": (1, math.sqrt),
    "ceil": (1, math.ceil),
    "floor": (1, math.floor),
    "min": (2, min),
    "max": (2, max),
}


class _Node:
    __slots__ = ()

    def evaluate(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError

    def symbols(self) -> frozenset[str]:
        raise NotImplementedError


class _Num(_Node):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def evaluate(self, env):
        return self.value

    def symbols(self):
        return frozenset()


class _Sym(_Node):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        try:
            return float(env[self.name])
        except KeyError:
            raise ComplexityError(f"unbound symbol {self.name!r}") from None

    def symbols(self):
        return frozenset({self.name})


class _BinOp(_Node):
    __slots__ = ("op", "left", "right")

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "^": lambda a, b: a**b,
    }

    def __init__(self, op: str, left: _Node, right: _Node):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "/" and b == 0:
            raise ComplexityError("division by zero in complexity expression")
        try:
            return self._OPS[self.op](a, b)
        except OverflowError:
            raise ComplexityError(
                f"overflow evaluating {a!r} {self.op} {b!r}"
            ) from None

    def symbols(self):
        return self.left.symbols() | self.right.symbols()


class _Neg(_Node):
    __slots__ = ("child",)

    def __init__(self, child: _Node):
        self.child = child

    def evaluate(self, env):
        return -self.child.evaluate(env)

    def symbols(self):
        return self.child.symbols()


class _Call(_Node):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: list[_Node]):
        self.name = name
        self.args = args

    def evaluate(self, env):
        arity, fn = _FUNCTIONS[self.name]
        values = [a.evaluate(env) for a in self.args]
        if self.name in ("log", "log2", "log10") and values[0] <= 0:
            # size-1 instances hit log(1)=0 legitimately; <=0 is an error
            raise ComplexityError(
                f"{self.name}() of non-positive value {values[0]}"
            )
        if self.name == "sqrt" and values[0] < 0:
            raise ComplexityError("sqrt() of negative value")
        return float(fn(*values))

    def symbols(self):
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.symbols()
        return out


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = list(self._tokenize(text))
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> Iterator[tuple[str, str]]:
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None or m.end() == pos:
                if text[pos:].strip():
                    raise ComplexityError(
                        f"bad character {text[pos:].strip()[0]!r} in "
                        f"complexity expression {text!r}"
                    )
                break
            pos = m.end()
            kind = m.lastgroup
            assert kind is not None
            yield kind, m.group(kind)

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise ComplexityError(f"unexpected end of expression {self.text!r}")
        self.pos += 1
        return tok

    def _expect(self, op: str) -> None:
        tok = self._next()
        if tok != ("op", op):
            raise ComplexityError(
                f"expected {op!r}, got {tok[1]!r} in {self.text!r}"
            )

    def parse(self) -> _Node:
        node = self._expr()
        if self._peek() is not None:
            raise ComplexityError(
                f"trailing tokens after expression in {self.text!r}"
            )
        return node

    def _expr(self) -> _Node:
        node = self._term()
        while (tok := self._peek()) and tok[0] == "op" and tok[1] in "+-":
            self._next()
            node = _BinOp(tok[1], node, self._term())
        return node

    def _term(self) -> _Node:
        node = self._unary()
        while (tok := self._peek()) and tok[0] == "op" and tok[1] in "*/":
            self._next()
            node = _BinOp(tok[1], node, self._unary())
        return node

    def _unary(self) -> _Node:
        tok = self._peek()
        if tok == ("op", "-"):
            self._next()
            return _Neg(self._unary())
        return self._power()

    def _power(self) -> _Node:
        base = self._atom()
        tok = self._peek()
        if tok == ("op", "^"):
            self._next()
            return _BinOp("^", base, self._unary())
        return base

    def _atom(self) -> _Node:
        kind, value = self._next()
        if kind == "number":
            return _Num(float(value))
        if kind == "name":
            if self._peek() == ("op", "("):
                if value not in _FUNCTIONS:
                    raise ComplexityError(f"unknown function {value!r}")
                self._next()
                arity, _fn = _FUNCTIONS[value]
                args = [self._expr()]
                while self._peek() == ("op", ","):
                    self._next()
                    args.append(self._expr())
                self._expect(")")
                if len(args) != arity:
                    raise ComplexityError(
                        f"{value}() takes {arity} argument(s), got {len(args)}"
                    )
                return _Call(value, args)
            return _Sym(value)
        if (kind, value) == ("op", "("):
            node = self._expr()
            self._expect(")")
            return node
        raise ComplexityError(f"unexpected token {value!r} in {self.text!r}")


class Complexity:
    """A parsed, reusable complexity expression.

    Examples
    --------
    >>> cx = Complexity("2/3*n^3 + 2*n^2")
    >>> cx.flops({"n": 100})
    686666.66...
    >>> sorted(cx.symbols)
    ['n']
    """

    __slots__ = ("text", "_ast", "symbols")

    def __init__(self, text: str):
        if not text or not text.strip():
            raise ComplexityError("empty complexity expression")
        self.text = text.strip()
        self._ast = _Parser(self.text).parse()
        #: the size symbols the expression needs bound
        self.symbols: frozenset[str] = self._ast.symbols()

    def flops(self, env: Mapping[str, float]) -> float:
        """Evaluate to a flop count; must be finite and non-negative."""
        value = self._ast.evaluate(env)
        if not math.isfinite(value):
            raise ComplexityError(
                f"complexity {self.text!r} evaluated to {value} with {dict(env)}"
            )
        if value < 0:
            raise ComplexityError(
                f"complexity {self.text!r} is negative ({value}) with {dict(env)}"
            )
        return float(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Complexity) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"Complexity({self.text!r})"
