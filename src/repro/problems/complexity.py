"""Algebraic complexity expressions.

Problem descriptions carry a flop-count formula over the instance's size
symbols, e.g. ``2/3*n^3 + 2*n^2`` for LU-based solves or ``5*n*log2(n)``
for an FFT.  The agent evaluates the same expression object both to rank
servers (predicted compute time = flops / effective speed) and, in
simulation, to decide how long the job actually holds the CPU.

Expressions are parsed by a small recursive-descent parser into an AST —
never ``eval`` of user text — and evaluated against a ``{symbol: value}``
binding.  Because the agent evaluates the same expression for every
candidate of every query, the checked AST is additionally *lowered* to a
Python code object at parse time: codegen walks our own validated parse
tree node by node (no raw text ever reaches ``compile``), the generated
code sees only guarded function wrappers in its globals, and every check
the tree-walking evaluator performs — division by zero, log/sqrt domain,
overflow, unbound symbols, finiteness — is preserved.  A small per-
instance memo keyed by the bound symbol values makes repeat evaluations
(the common case: many queries at the same problem size) a dict hit.
The tree-walking interpreter remains available as
:meth:`Complexity.interpret`, the reference implementation the compiled
path is property-tested against.

Grammar::

    expr    := term (('+'|'-') term)*
    term    := unary (('*'|'/') unary)*
    unary   := '-' unary | power
    power   := atom ('^' unary)?          (right associative)
    atom    := NUMBER | NAME | NAME '(' expr ')' | '(' expr ')'

Supported functions: ``log`` (natural), ``log2``, ``log10``, ``sqrt``,
``min``/``max`` (two arguments), ``ceil``, ``floor``.
"""

from __future__ import annotations

import ast as _pyast
import math
import re
from typing import Callable, Iterator, Mapping

from ..errors import ComplexityError

__all__ = ["Complexity"]

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>[-+*/^(),]))"
)

_FUNCTIONS: dict[str, tuple[int, Callable[..., float]]] = {
    "log": (1, math.log),
    "log2": (1, math.log2),
    "log10": (1, math.log10),
    "sqrt": (1, math.sqrt),
    "ceil": (1, math.ceil),
    "floor": (1, math.floor),
    "min": (2, min),
    "max": (2, max),
}


class _Node:
    __slots__ = ()

    def evaluate(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError

    def symbols(self) -> frozenset[str]:
        raise NotImplementedError


class _Num(_Node):
    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def evaluate(self, env):
        return self.value

    def symbols(self):
        return frozenset()


class _Sym(_Node):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        try:
            return float(env[self.name])
        except KeyError:
            raise ComplexityError(f"unbound symbol {self.name!r}") from None

    def symbols(self):
        return frozenset({self.name})


class _BinOp(_Node):
    __slots__ = ("op", "left", "right")

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "^": lambda a, b: a**b,
    }

    def __init__(self, op: str, left: _Node, right: _Node):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        a = self.left.evaluate(env)
        b = self.right.evaluate(env)
        if self.op == "/" and b == 0:
            raise ComplexityError("division by zero in complexity expression")
        try:
            return self._OPS[self.op](a, b)
        except ZeroDivisionError:
            # 0^negative raises like division; report it the same way
            raise ComplexityError(
                "division by zero in complexity expression"
            ) from None
        except OverflowError:
            raise ComplexityError(
                f"overflow evaluating {a!r} {self.op} {b!r}"
            ) from None

    def symbols(self):
        return self.left.symbols() | self.right.symbols()


class _Neg(_Node):
    __slots__ = ("child",)

    def __init__(self, child: _Node):
        self.child = child

    def evaluate(self, env):
        return -self.child.evaluate(env)

    def symbols(self):
        return self.child.symbols()


class _Call(_Node):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: list[_Node]):
        self.name = name
        self.args = args

    def evaluate(self, env):
        arity, fn = _FUNCTIONS[self.name]
        values = [a.evaluate(env) for a in self.args]
        if self.name in ("log", "log2", "log10") and values[0] <= 0:
            # size-1 instances hit log(1)=0 legitimately; <=0 is an error
            raise ComplexityError(
                f"{self.name}() of non-positive value {values[0]}"
            )
        if self.name == "sqrt" and values[0] < 0:
            raise ComplexityError("sqrt() of negative value")
        return float(fn(*values))

    def symbols(self):
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.symbols()
        return out


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = list(self._tokenize(text))
        self.pos = 0

    @staticmethod
    def _tokenize(text: str) -> Iterator[tuple[str, str]]:
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None or m.end() == pos:
                if text[pos:].strip():
                    raise ComplexityError(
                        f"bad character {text[pos:].strip()[0]!r} in "
                        f"complexity expression {text!r}"
                    )
                break
            pos = m.end()
            kind = m.lastgroup
            assert kind is not None
            yield kind, m.group(kind)

    def _peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise ComplexityError(f"unexpected end of expression {self.text!r}")
        self.pos += 1
        return tok

    def _expect(self, op: str) -> None:
        tok = self._next()
        if tok != ("op", op):
            raise ComplexityError(
                f"expected {op!r}, got {tok[1]!r} in {self.text!r}"
            )

    def parse(self) -> _Node:
        node = self._expr()
        if self._peek() is not None:
            raise ComplexityError(
                f"trailing tokens after expression in {self.text!r}"
            )
        return node

    def _expr(self) -> _Node:
        node = self._term()
        while (tok := self._peek()) and tok[0] == "op" and tok[1] in "+-":
            self._next()
            node = _BinOp(tok[1], node, self._term())
        return node

    def _term(self) -> _Node:
        node = self._unary()
        while (tok := self._peek()) and tok[0] == "op" and tok[1] in "*/":
            self._next()
            node = _BinOp(tok[1], node, self._unary())
        return node

    def _unary(self) -> _Node:
        tok = self._peek()
        if tok == ("op", "-"):
            self._next()
            return _Neg(self._unary())
        return self._power()

    def _power(self) -> _Node:
        base = self._atom()
        tok = self._peek()
        if tok == ("op", "^"):
            self._next()
            return _BinOp("^", base, self._unary())
        return base

    def _atom(self) -> _Node:
        kind, value = self._next()
        if kind == "number":
            return _Num(float(value))
        if kind == "name":
            if self._peek() == ("op", "("):
                if value not in _FUNCTIONS:
                    raise ComplexityError(f"unknown function {value!r}")
                self._next()
                arity, _fn = _FUNCTIONS[value]
                args = [self._expr()]
                while self._peek() == ("op", ","):
                    self._next()
                    args.append(self._expr())
                self._expect(")")
                if len(args) != arity:
                    raise ComplexityError(
                        f"{value}() takes {arity} argument(s), got {len(args)}"
                    )
                return _Call(value, args)
            return _Sym(value)
        if (kind, value) == ("op", "("):
            node = self._expr()
            self._expect(")")
            return node
        raise ComplexityError(f"unexpected token {value!r} in {self.text!r}")


# ----------------------------------------------------------------------
# codegen: lower the checked AST to a Python code object
# ----------------------------------------------------------------------
# The compiled function's globals hold *only* these guarded wrappers (no
# builtins), so the generated code can reach nothing but arithmetic and
# the checked math functions — the same surface the interpreter exposes.
def _guarded_function(name: str) -> Callable[..., float]:
    _arity, fn = _FUNCTIONS[name]
    if name in ("log", "log2", "log10"):

        def wrapped(x: float, _fn=fn, _name=name) -> float:
            if x <= 0:
                raise ComplexityError(
                    f"{_name}() of non-positive value {x}"
                )
            return float(_fn(x))

    elif name == "sqrt":

        def wrapped(x: float, _fn=fn) -> float:
            if x < 0:
                raise ComplexityError("sqrt() of negative value")
            return float(_fn(x))

    else:

        def wrapped(*args: float, _fn=fn) -> float:
            return float(_fn(*args))

    return wrapped


_COMPILED_GLOBALS: dict[str, object] = {"__builtins__": {}}
_COMPILED_GLOBALS.update(
    {f"_fn_{name}": _guarded_function(name) for name in _FUNCTIONS}
)

_BIN_AST = {
    "+": _pyast.Add,
    "-": _pyast.Sub,
    "*": _pyast.Mult,
    "/": _pyast.Div,
    "^": _pyast.Pow,
}


def _lower(node: _Node, names: Mapping[str, str]) -> _pyast.expr:
    """Translate one checked parse-tree node into a Python ast node."""
    if isinstance(node, _Num):
        return _pyast.Constant(node.value)
    if isinstance(node, _Sym):
        return _pyast.Name(id=names[node.name], ctx=_pyast.Load())
    if isinstance(node, _Neg):
        return _pyast.UnaryOp(
            op=_pyast.USub(), operand=_lower(node.child, names)
        )
    if isinstance(node, _BinOp):
        return _pyast.BinOp(
            left=_lower(node.left, names),
            op=_BIN_AST[node.op](),
            right=_lower(node.right, names),
        )
    if isinstance(node, _Call):
        return _pyast.Call(
            func=_pyast.Name(id=f"_fn_{node.name}", ctx=_pyast.Load()),
            args=[_lower(a, names) for a in node.args],
            keywords=[],
        )
    raise AssertionError(f"unexpected node {node!r}")  # pragma: no cover


def _compile_ast(root: _Node, arg_order: tuple[str, ...]) -> Callable[..., float]:
    """Build ``lambda _s0, _s1, ...: <expr>`` from the checked tree.

    Symbols become mangled positional arguments (so a size symbol named
    like a function or keyword can never collide), and the lambda closes
    over nothing — its globals are the guarded wrappers above.
    """
    names = {s: f"_s{i}" for i, s in enumerate(arg_order)}
    lam = _pyast.Lambda(
        args=_pyast.arguments(
            posonlyargs=[],
            args=[_pyast.arg(arg=names[s]) for s in arg_order],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        ),
        body=_lower(root, names),
    )
    tree = _pyast.Expression(lam)
    _pyast.fix_missing_locations(tree)
    code = compile(tree, "<complexity>", "eval")
    return eval(code, dict(_COMPILED_GLOBALS))  # noqa: S307 — our own AST


_MEMO_LIMIT = 4096


class Complexity:
    """A parsed, compiled, reusable complexity expression.

    Examples
    --------
    >>> cx = Complexity("2/3*n^3 + 2*n^2")
    >>> cx.flops({"n": 100})
    686666.66...
    >>> sorted(cx.symbols)
    ['n']
    """

    __slots__ = ("text", "_ast", "symbols", "_arg_order", "_fn", "_memo")

    def __init__(self, text: str):
        if not text or not text.strip():
            raise ComplexityError("empty complexity expression")
        self.text = text.strip()
        self._ast = _Parser(self.text).parse()
        #: the size symbols the expression needs bound
        self.symbols: frozenset[str] = self._ast.symbols()
        self._arg_order: tuple[str, ...] = tuple(sorted(self.symbols))
        self._fn = _compile_ast(self._ast, self._arg_order)
        self._memo: dict[tuple[float, ...], float] = {}

    def _check(self, value: float, env: Mapping[str, float]) -> float:
        if not math.isfinite(value):
            raise ComplexityError(
                f"complexity {self.text!r} evaluated to {value} with {dict(env)}"
            )
        if value < 0:
            raise ComplexityError(
                f"complexity {self.text!r} is negative ({value}) with {dict(env)}"
            )
        return float(value)

    def flops(self, env: Mapping[str, float]) -> float:
        """Evaluate to a flop count; must be finite and non-negative.

        Runs the compiled code object with a per-instance memo over the
        bound symbol values; falls back to nothing — the compiled form
        covers the full grammar.
        """
        try:
            key = tuple(float(env[s]) for s in self._arg_order)
        except KeyError as exc:
            raise ComplexityError(
                f"unbound symbol {exc.args[0]!r}"
            ) from None
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        try:
            value = self._fn(*key)
        except ZeroDivisionError:
            raise ComplexityError(
                "division by zero in complexity expression"
            ) from None
        except OverflowError:
            raise ComplexityError(
                f"overflow evaluating complexity {self.text!r} with {dict(env)}"
            ) from None
        value = self._check(value, env)
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = value
        return value

    def interpret(self, env: Mapping[str, float]) -> float:
        """Reference implementation: tree-walk the AST (no memo).

        Kept for the T1/A1 experiments and the property tests that pin
        the compiled path to it; same checks, same result, same errors.
        """
        return self._check(self._ast.evaluate(env), env)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Complexity) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"Complexity({self.text!r})"
