"""Exception hierarchy for the NetSolve reproduction.

Every error raised by the public API derives from :class:`NetSolveError`,
so callers can catch one type at the boundary.  The hierarchy mirrors the
failure classes of the original system: problems that do not exist, servers
that cannot be found or that die mid-request, malformed problem description
files, and wire-protocol violations.
"""

from __future__ import annotations

__all__ = [
    "NetSolveError",
    "ProtocolError",
    "CodecError",
    "TransportError",
    "TransportClosed",
    "ProblemNotFoundError",
    "BadArgumentsError",
    "NoServerError",
    "ServerFailure",
    "RequestFailed",
    "MissingObjectError",
    "FarmNotFinished",
    "RequestNotFound",
    "PdlSyntaxError",
    "ComplexityError",
    "SimulationError",
    "ConfigError",
    "NumericsError",
    "SingularMatrixError",
    "ConvergenceError",
]


class NetSolveError(Exception):
    """Base class for all errors raised by this package."""


class ProtocolError(NetSolveError):
    """A peer violated the NetSolve wire protocol (unexpected message)."""


class CodecError(ProtocolError):
    """Malformed bytes on the wire: bad magic, truncated frame, bad tag."""


class TransportError(NetSolveError):
    """The underlying transport (simulated or TCP) failed."""


class TransportClosed(TransportError):
    """Operation attempted on a closed endpoint."""


class ProblemNotFoundError(NetSolveError):
    """No registered problem matches the requested name."""

    def __init__(self, name: str):
        super().__init__(f"no such problem: {name!r}")
        self.name = name


class BadArgumentsError(NetSolveError):
    """Client arguments do not match the problem's input specification."""


class NoServerError(NetSolveError):
    """The agent knows no live server able to solve the requested problem."""

    def __init__(self, problem: str):
        super().__init__(f"no server available for problem {problem!r}")
        self.problem = problem


class ServerFailure(NetSolveError):
    """A computational server crashed or became unreachable mid-request."""

    def __init__(self, server: str, detail: str = ""):
        msg = f"server {server!r} failed" + (f": {detail}" if detail else "")
        super().__init__(msg)
        self.server = server


class RequestFailed(NetSolveError):
    """A request exhausted all candidate servers (retries included)."""

    def __init__(self, request_id: int, detail: str = ""):
        msg = f"request {request_id} failed" + (f": {detail}" if detail else "")
        super().__init__(msg)
        self.request_id = request_id


class MissingObjectError(NetSolveError):
    """A referenced key is not resident on the target server.

    The retryable half of the handle contract: the object was never
    stored there, expired, was evicted, or died with the process
    (``on_shutdown``).  Carried on the wire as
    ``SolveReply.error_kind == "missing_object"`` with the offending
    keys in ``SolveReply.missing``; a client holding the payload
    re-submits with the value inline instead of failing the request.
    """

    def __init__(self, *keys: str):
        names = ", ".join(repr(k) for k in keys) or "<unknown>"
        super().__init__(f"object(s) {names} not resident on this server")
        self.keys = tuple(keys)


class FarmNotFinished(NetSolveError):
    """A farm-wide aggregate was read before every instance completed."""

    def __init__(self, pending: tuple[int, ...]):
        ids = ", ".join(str(i) for i in pending)
        super().__init__(
            f"farm not finished: {len(pending)} instance(s) still "
            f"pending (request ids {ids})"
        )
        self.pending = tuple(pending)


class RequestNotFound(NetSolveError):
    """Probe/wait on an unknown or already-collected request handle."""


class PdlSyntaxError(NetSolveError):
    """Syntax error in a problem description file."""

    def __init__(self, message: str, line: int | None = None):
        loc = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line


class ComplexityError(NetSolveError):
    """Invalid complexity expression, or evaluation with unbound symbols."""


class SimulationError(NetSolveError):
    """Internal inconsistency in the discrete-event simulation."""


class ConfigError(NetSolveError):
    """Invalid configuration value."""


class NumericsError(NetSolveError):
    """Base class for numerical-routine failures."""


class SingularMatrixError(NumericsError):
    """Matrix is singular to working precision."""


class ConvergenceError(NumericsError):
    """An iterative method failed to converge within its budget."""

    def __init__(self, method: str, iterations: int, residual: float | None = None):
        msg = f"{method} did not converge in {iterations} iterations"
        if residual is not None:
            msg += f" (residual {residual:.3e})"
        super().__init__(msg)
        self.method = method
        self.iterations = iterations
        self.residual = residual
