"""Simulated computational hosts.

A :class:`SimHost` models a 1996-era workstation or MPP node: a peak
floating-point rating in Mflop/s, a UNIX-style load average, and a
processor-sharing CPU.  Foreground jobs (NetSolve requests executing on
the host) and background load (other users of a shared machine) compete
for the CPU; with ``n`` foreground jobs and background load ``l`` each
job progresses at ``peak / (n + l)`` — which reduces, for a single job,
to the workload model NetSolve's agent assumes:

    effective = peak * 100 / (100 + w)        with  w = 100 * l.

A host may have several virtual CPUs (``cpus=k``): the runnable set
then spreads across ``k`` processors, so each job runs at
``peak / max(1, (n + l) / k)`` — full speed until the load exceeds the
CPU count, processor sharing beyond it.  The load *average* remains the
runnable-process count regardless of ``cpus``, exactly as UNIX reports
it, which is why the scheduler needs the slot count as a separate
signal.  ``cpus=1`` evaluates the original single-CPU expression
unchanged, keeping every existing golden timing bit-identical.

The host keeps a step-function history of its load average so experiments
can compare the *true* load signal against the agent's belief (figure F2).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from .kernel import Event, EventKernel, Timer

__all__ = ["SimHost", "JobHandle"]


@dataclass
class _Job:
    job_id: int
    name: str
    remaining_flops: float
    started_at: float
    done: Event


class JobHandle:
    """Public handle for a submitted CPU job."""

    __slots__ = ("job_id", "name", "done", "_host")

    def __init__(self, job_id: int, name: str, done: Event, host: "SimHost"):
        self.job_id = job_id
        self.name = name
        #: fires with the job's elapsed wall-clock (virtual) seconds
        self.done = done
        self._host = host

    def cancel(self) -> bool:
        """Abort the job; returns True if it was still running."""
        return self._host._cancel_job(self.job_id)


class SimHost:
    """A host with a processor-sharing CPU and a load-average signal."""

    _ids = itertools.count()

    def __init__(
        self,
        name: str,
        kernel: EventKernel,
        mflops: float,
        *,
        background_load: float = 0.0,
        cpus: int = 1,
    ):
        if mflops <= 0:
            raise SimulationError(f"host {name!r}: mflops must be positive")
        if background_load < 0:
            raise SimulationError(f"host {name!r}: background load must be >= 0")
        if cpus < 1:
            raise SimulationError(f"host {name!r}: cpus must be >= 1")
        self.name = name
        self.kernel = kernel
        self.mflops = float(mflops)
        self.cpus = int(cpus)
        self._background = float(background_load)
        self._active: dict[int, _Job] = {}
        self._last_update = kernel.now
        self._completion_timer: Optional[Timer] = None
        #: (time, load_average) step function, for ground-truth plots
        self.load_history: list[tuple[float, float]] = [
            (kernel.now, self.load_average)
        ]
        self.jobs_completed = 0
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    # observable state
    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Peak rate in flop/s."""
        return self.mflops * 1e6

    @property
    def background_load(self) -> float:
        return self._background

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    @property
    def load_average(self) -> float:
        """UNIX-style load: background runnable processes + our own jobs."""
        return self._background + len(self._active)

    @property
    def workload(self) -> float:
        """NetSolve workload units: 100 x load average."""
        return 100.0 * self.load_average

    def effective_flops(self, extra_jobs: int = 0) -> float:
        """flop/s one job would get if ``extra_jobs`` more were running."""
        competitors = self._background + len(self._active) + extra_jobs
        share = max(competitors, 1.0)
        if self.cpus == 1:
            return self.peak_flops / share
        share = share / self.cpus
        if share <= 1.0:
            return self.peak_flops
        return self.peak_flops / share

    def estimate_seconds(self, flops: float) -> float:
        """Ground-truth estimate for one *additional* job, at current load."""
        if flops < 0:
            raise SimulationError("flops must be >= 0")
        return flops / self.effective_flops(extra_jobs=1)

    # ------------------------------------------------------------------
    # processor-sharing engine
    # ------------------------------------------------------------------
    def _rate_per_job(self) -> float:
        n = len(self._active)
        if n == 0:
            return 0.0
        if self.cpus == 1:
            return self.peak_flops / (self._background + n)
        share = (self._background + n) / self.cpus
        if share <= 1.0:
            return self.peak_flops
        return self.peak_flops / share

    def _advance(self) -> None:
        """Burn CPU between the last update and now for all active jobs."""
        now = self.kernel.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._active:
            rate = self._rate_per_job()
            burned = rate * elapsed
            for job in self._active.values():
                job.remaining_flops = max(0.0, job.remaining_flops - burned)
            self.busy_seconds += elapsed
        self._last_update = now

    def _reschedule(self) -> None:
        """Arm a timer for the earliest job completion under current rates."""
        if self._completion_timer is not None:
            self._completion_timer.cancel()
            self._completion_timer = None
        if not self._active:
            return
        rate = self._rate_per_job()
        if rate <= 0:  # pragma: no cover - background load is finite
            raise SimulationError(f"host {self.name!r}: zero CPU rate")
        soonest = min(job.remaining_flops for job in self._active.values())
        delay = soonest / rate
        # Guard against float underflow producing a time strictly in the past.
        if delay < 0 or not math.isfinite(delay):
            raise SimulationError(f"host {self.name!r}: bad completion delay {delay}")
        self._completion_timer = self.kernel.call_after(delay, self._complete_due)

    def _complete_due(self) -> None:
        self._completion_timer = None
        self._advance()
        # Finish every job that has (within float noise) no work left.
        eps = 1e-9 * self.peak_flops
        finished = [j for j in self._active.values() if j.remaining_flops <= eps]
        for job in finished:
            del self._active[job.job_id]
            self.jobs_completed += 1
            job.done.succeed(self.kernel.now - job.started_at)
        self._record_load()
        self._reschedule()

    def _record_load(self) -> None:
        now = self.kernel.now
        load = self.load_average
        if self.load_history and self.load_history[-1][0] == now:
            self.load_history[-1] = (now, load)
        elif not self.load_history or self.load_history[-1][1] != load:
            self.load_history.append((now, load))

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def submit_job(self, flops: float, name: str = "job") -> JobHandle:
        """Start a CPU job of ``flops`` floating-point operations.

        The returned handle's ``done`` event fires with the job's elapsed
        virtual seconds.  Zero-flop jobs complete after one zero-delay
        event (never synchronously), so callers can rely on callback
        ordering.
        """
        if flops < 0:
            raise SimulationError("flops must be >= 0")
        self._advance()
        job_id = next(self._ids)
        job = _Job(
            job_id=job_id,
            name=name,
            remaining_flops=float(flops),
            started_at=self.kernel.now,
            done=self.kernel.event(),
        )
        self._active[job_id] = job
        self._record_load()
        self._reschedule()
        return JobHandle(job_id, name, job.done, self)

    def _cancel_job(self, job_id: int) -> bool:
        if job_id not in self._active:
            return False
        # Burn CPU up to now at the rate that *included* this job, then drop it.
        self._advance()
        del self._active[job_id]
        self._record_load()
        self._reschedule()
        return True

    def set_background_load(self, load: float) -> None:
        """Set the background load average (>= 0); takes effect immediately."""
        if load < 0:
            raise SimulationError("background load must be >= 0")
        if load == self._background:
            return
        self._advance()
        self._background = float(load)
        self._record_load()
        self._reschedule()

    def load_at(self, t: float) -> float:
        """Ground-truth load average at virtual time ``t`` (step function)."""
        if not self.load_history or t < self.load_history[0][0]:
            raise SimulationError(f"no load history at t={t}")
        lo, hi = 0, len(self.load_history)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.load_history[mid][0] <= t:
                lo = mid
            else:
                hi = mid
        return self.load_history[lo][1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimHost {self.name!r} {self.mflops:g} Mflop/s "
            f"load={self.load_average:.2f} jobs={len(self._active)}>"
        )
