"""Discrete-event simulation kernel.

A minimal, fast, deterministic event loop: a binary heap of
``(time, priority, sequence, callback)`` entries.  Ties on time are broken
first by an explicit priority, then by insertion order, so runs are fully
reproducible.  Virtual time is a float in seconds and never flows
backwards.

The kernel deliberately exposes *two* programming styles:

* callback style — ``kernel.call_at`` / ``kernel.call_after`` schedule a
  plain callable; this is what the protocol state machines use, and
* process style — :class:`Process` wraps a generator that ``yield``s
  delays (or :class:`Event` objects to wait on), which reads naturally
  for background load generators and failure injectors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

__all__ = ["EventKernel", "Event", "Timer", "Process"]


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    A cancelled timer stays in the heap but is skipped when popped
    (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "callback", "cancelled", "seq")

    def __init__(self, time: float, callback: Callable[[], None], seq: int):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.seq = seq

    def cancel(self) -> None:
        self.cancelled = True
        self.callback = _noop

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Timer t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


class Event:
    """One-shot condition processes can wait on.

    ``succeed(value)`` wakes every waiter exactly once; late waiters are
    woken immediately with the stored value.
    """

    __slots__ = ("kernel", "_value", "_fired", "_waiters")

    def __init__(self, kernel: "EventKernel"):
        self.kernel = kernel
        self._value: Any = None
        self._fired = False
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Wake-ups run as fresh events at the current time so firing
            # order between waiters is the registration order.
            self.kernel.call_after(0.0, lambda w=waiter: w(value))

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self._fired:
            self.kernel.call_after(0.0, lambda: fn(self._value))
        else:
            self._waiters.append(fn)


class Process:
    """Generator-based simulated process.

    The generator may ``yield``:

    * a non-negative float — sleep that many virtual seconds,
    * an :class:`Event` — suspend until it fires; the event's value is
      sent back into the generator.

    Returning (or ``StopIteration``) ends the process and fires its
    ``done`` event with the return value.
    """

    __slots__ = ("kernel", "name", "done", "_gen", "_alive")

    def __init__(
        self,
        kernel: "EventKernel",
        gen: Generator[Any, Any, Any],
        name: str = "process",
    ):
        self.kernel = kernel
        self.name = name
        self.done = Event(kernel)
        self._gen = gen
        self._alive = True
        kernel.call_after(0.0, lambda: self._step(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self) -> None:
        """Terminate the process at its next resumption point."""
        if not self._alive:
            return
        self._alive = False
        self._gen.close()
        if not self.done.fired:
            self.done.succeed(None)

    def _step(self, sent: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self._gen.send(sent)
        except StopIteration as stop:
            self._alive = False
            self.done.succeed(getattr(stop, "value", None))
            return
        if isinstance(yielded, Event):
            yielded.add_callback(self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.kernel.call_after(float(yielded), lambda: self._step(None))
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected float delay or Event"
            )


class EventKernel:
    """The virtual clock and event heap.

    Notes
    -----
    ``priority`` orders simultaneous events: lower runs first.  The
    default priority (0) suffices almost everywhere; transports use a
    slightly higher value for delivery so that local bookkeeping scheduled
    "now" runs before message arrival at the same instant.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Timer]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, fn: Callable[[], None], priority: int = 0
    ) -> Timer:
        """Schedule ``fn`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        seq = next(self._seq)
        timer = Timer(when, fn, seq)
        heapq.heappush(self._heap, (when, priority, seq, timer))
        return timer

    def call_after(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> Timer:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def every(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        start: float | None = None,
        jitter: Callable[[], float] | None = None,
    ) -> Timer:
        """Run ``fn`` periodically.  Returns the timer of the *next* firing.

        Cancelling the returned timer stops the cycle *only before its
        first firing*; for an always-cancellable periodic task, wrap in a
        :class:`Process`.  ``jitter()`` (if given) is added to each
        interval — it must return a value > -interval.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        holder: dict[str, Timer] = {}

        def tick() -> None:
            fn()
            delay = interval + (jitter() if jitter else 0.0)
            if delay <= 0:
                raise SimulationError("jitter produced non-positive period")
            holder["timer"] = self.call_after(delay, tick)

        first = self._now + (interval if start is None else max(0.0, start - self._now))
        holder["timer"] = self.call_at(first, tick)
        return holder["timer"]

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event` bound to this kernel."""
        return Event(self)

    def process(
        self, gen: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Spawn a generator-based :class:`Process`."""
        return Process(self, gen, name)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        while self._heap:
            when, _prio, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self._now = when
            self.events_processed += 1
            timer.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        *,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this bound; the clock is
            advanced exactly to ``until`` on exit so back-to-back ``run``
            calls compose.
        stop:
            Optional predicate checked after every event.
        max_events:
            Safety valve against runaway loops; raises on breach.

        Returns
        -------
        float
            Virtual time at exit.
        """
        if self._running:
            raise SimulationError("kernel.run is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if self._heap[0][3].cancelled:
                    # drop lazily-cancelled timers *before* the time-bound
                    # check: peeking a cancelled entry at t <= until and
                    # then stepping would tunnel past ``until`` to the
                    # next live event
                    heapq.heappop(self._heap)
                    continue
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                if stop is not None and stop():
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until(self, event: Event, *, limit: float | None = None) -> Any:
        """Run until ``event`` fires; return its value.

        Raises :class:`SimulationError` if the heap drains (or ``limit``
        is hit) first — the simulated system deadlocked.
        """
        self.run(until=limit, stop=lambda: event.fired)
        if not event.fired:
            raise SimulationError(
                "run_until: event never fired "
                f"(now={self._now:.3f}, pending={len(self._heap)})"
            )
        return event.value

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return sum(1 for *_x, t in self._heap if not t.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None."""
        for when, _p, _s, timer in sorted(self._heap)[:]:
            if not timer.cancelled:
                return when
        return None

    def drain(self, timers: Iterable[Timer]) -> None:
        """Cancel a batch of timers (convenience for teardown)."""
        for t in timers:
            t.cancel()
