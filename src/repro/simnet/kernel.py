"""Discrete-event simulation kernel.

A minimal, fast, deterministic event loop: a binary heap of
``(time, priority, sequence, callback)`` entries.  Ties on time are broken
first by an explicit priority, then by insertion order, so runs are fully
reproducible.  Virtual time is a float in seconds and never flows
backwards.

The kernel deliberately exposes *two* programming styles:

* callback style — ``kernel.call_at`` / ``kernel.call_after`` schedule a
  plain callable; this is what the protocol state machines use, and
* process style — :class:`Process` wraps a generator that ``yield``s
  delays (or :class:`Event` objects to wait on), which reads naturally
  for background load generators and failure injectors.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError

__all__ = ["EventKernel", "Event", "Timer", "Process"]


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    A cancelled timer stays in the heap but is skipped when popped
    (lazy deletion), which keeps cancellation O(1).  The kernel keeps a
    live count alongside (``_counted`` says whether this timer is in it)
    so ``pending()`` never has to scan the heap.
    """

    __slots__ = ("time", "callback", "cancelled", "seq", "_kernel",
                 "_counted")

    def __init__(
        self,
        time: float,
        callback: Callable[[], None],
        seq: int,
        kernel: "EventKernel | None" = None,
    ):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.seq = seq
        self._kernel = kernel
        self._counted = kernel is not None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = _noop
        if self._counted:
            self._counted = False
            self._kernel._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Timer t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


class Event:
    """One-shot condition processes can wait on.

    ``succeed(value)`` wakes every waiter exactly once; late waiters are
    woken immediately with the stored value.
    """

    __slots__ = ("kernel", "_value", "_fired", "_waiters")

    def __init__(self, kernel: "EventKernel"):
        self.kernel = kernel
        self._value: Any = None
        self._fired = False
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError("event fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Wake-ups run as fresh events at the current time so firing
            # order between waiters is the registration order.
            self.kernel.call_after(0.0, lambda w=waiter: w(value))

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        if self._fired:
            self.kernel.call_after(0.0, lambda: fn(self._value))
        else:
            self._waiters.append(fn)


class Process:
    """Generator-based simulated process.

    The generator may ``yield``:

    * a non-negative float — sleep that many virtual seconds,
    * an :class:`Event` — suspend until it fires; the event's value is
      sent back into the generator.

    Returning (or ``StopIteration``) ends the process and fires its
    ``done`` event with the return value.
    """

    __slots__ = ("kernel", "name", "done", "_gen", "_alive")

    def __init__(
        self,
        kernel: "EventKernel",
        gen: Generator[Any, Any, Any],
        name: str = "process",
    ):
        self.kernel = kernel
        self.name = name
        self.done = Event(kernel)
        self._gen = gen
        self._alive = True
        kernel.call_after(0.0, lambda: self._step(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self) -> None:
        """Terminate the process at its next resumption point."""
        if not self._alive:
            return
        self._alive = False
        self._gen.close()
        if not self.done.fired:
            self.done.succeed(None)

    def _step(self, sent: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self._gen.send(sent)
        except StopIteration as stop:
            self._alive = False
            self.done.succeed(getattr(stop, "value", None))
            return
        if isinstance(yielded, Event):
            yielded.add_callback(self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._alive = False
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}"
                )
            self.kernel.call_after(float(yielded), lambda: self._step(None))
        else:
            self._alive = False
            raise SimulationError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected float delay or Event"
            )


class EventKernel:
    """The virtual clock and event heap.

    Notes
    -----
    ``priority`` orders simultaneous events: lower runs first.  The
    default priority (0) suffices almost everywhere; transports use a
    slightly higher value for delivery so that local bookkeeping scheduled
    "now" runs before message arrival at the same instant.
    """

    #: heaps smaller than this are never compacted — rebuilding a tiny
    #: heap costs more than the dead entries it would reclaim
    COMPACT_MIN = 512

    def __init__(self, *, compact_min: int | None = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Timer]] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        #: timers in the heap that are not cancelled (O(1) ``pending()``)
        self._live = 0
        #: dead entries rebuilt out of the heap so far (perf telemetry)
        self.compactions = 0
        self._compact_min = (
            self.COMPACT_MIN if compact_min is None else max(1, compact_min)
        )

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, fn: Callable[[], None], priority: int = 0
    ) -> Timer:
        """Schedule ``fn`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        seq = next(self._seq)
        timer = Timer(when, fn, seq, self)
        heap = self._heap
        heapq.heappush(heap, (when, priority, seq, timer))
        self._live += 1
        # amortized compaction: once cancelled entries outnumber live
        # ones (deadline tables and retry chains cancel almost every
        # timer they arm), rebuild the heap in one O(n) batch instead
        # of dribbling dead entries through every later push and pop
        if len(heap) >= self._compact_min and self._live * 2 < len(heap):
            self._compact()
        return timer

    def _compact(self) -> None:
        dead = len(self._heap) - self._live
        self._heap = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        self.compactions += dead

    def _rearm(self, timer: Timer, when: float, priority: int = 0) -> None:
        """Push an already-popped timer back for another firing.

        Used by :meth:`every` so one :class:`Timer` handle stands for
        the whole periodic cycle: ``cancel()`` on it works before,
        between and after firings.  Must only be called with a timer
        that is *not* currently in the heap.
        """
        seq = next(self._seq)
        timer.time = when
        timer.seq = seq
        timer._counted = True
        heapq.heappush(self._heap, (when, priority, seq, timer))
        self._live += 1

    def call_after(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> Timer:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def every(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        start: float | None = None,
        jitter: Callable[[], float] | None = None,
    ) -> Timer:
        """Run ``fn`` periodically.  Returns a handle for the whole cycle.

        The one returned :class:`Timer` is re-armed for every firing, so
        ``cancel()`` on it stops the cycle at any point — before the
        first firing, between firings, or from inside ``fn`` itself.
        ``jitter()`` (if given) is added to each interval — it must
        return a value > -interval.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")

        def tick() -> None:
            fn()
            if timer.cancelled:
                return  # fn cancelled its own cycle mid-callback
            delay = interval + (jitter() if jitter else 0.0)
            if delay <= 0:
                raise SimulationError("jitter produced non-positive period")
            # re-arm the same handle rather than allocating a fresh
            # timer per firing: the caller's handle stays live, and a
            # periodic task costs one Timer for its whole lifetime
            self._rearm(timer, self._now + delay)

        first = self._now + (interval if start is None else max(0.0, start - self._now))
        timer = self.call_at(first, tick)
        return timer

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event` bound to this kernel."""
        return Event(self)

    def process(
        self, gen: Generator[Any, Any, Any], name: str = "process"
    ) -> Process:
        """Spawn a generator-based :class:`Process`."""
        return Process(self, gen, name)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _prio, _seq, timer = pop(heap)
            if timer.cancelled:
                continue
            timer._counted = False
            self._live -= 1
            self._now = when
            self.events_processed += 1
            timer.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        *,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> float:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this bound; the clock is
            advanced exactly to ``until`` on exit so back-to-back ``run``
            calls compose.
        stop:
            Optional predicate checked after every event.
        max_events:
            Safety valve against runaway loops: at most this many events
            run; the breach is raised *before* an excess event executes.

        Returns
        -------
        float
            Virtual time at exit.
        """
        if self._running:
            raise SimulationError("kernel.run is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if self._heap[0][3].cancelled:
                    # drop lazily-cancelled timers *before* the time-bound
                    # check: peeking a cancelled entry at t <= until and
                    # then stepping would tunnel past ``until`` to the
                    # next live event
                    heapq.heappop(self._heap)
                    continue
                when = self._heap[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    # checked with a live runnable event at the top, so
                    # exactly max_events events ran — the cap used to
                    # admit one extra before noticing
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                if not self.step():
                    break
                processed += 1
                if stop is not None and stop():
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until(self, event: Event, *, limit: float | None = None) -> Any:
        """Run until ``event`` fires; return its value.

        Raises :class:`SimulationError` if the heap drains (or ``limit``
        is hit) first — the simulated system deadlocked.
        """
        self.run(until=limit, stop=lambda: event.fired)
        if not event.fired:
            raise SimulationError(
                "run_until: event never fired "
                f"(now={self._now:.3f}, pending={len(self._heap)})"
            )
        return event.value

    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events.  O(1)."""
        return self._live

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None.  Amortized O(1).

        Lazily pops cancelled entries off the top — the same discipline
        ``run()`` uses — instead of sorting a copy of the whole heap,
        so a peek after heavy cancellation costs only the dead tops it
        discards (each discarded exactly once across all peeks/runs).
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if heap[0][3].cancelled:
                pop(heap)
                continue
            return heap[0][0]
        return None

    def drain(self, timers: Iterable[Timer]) -> None:
        """Cancel a batch of timers (convenience for teardown)."""
        for t in timers:
            t.cancel()
