"""Background-load, arrival and failure generators.

NetSolve's servers were shared departmental machines whose UNIX load
average moved with other users' work.  These generators drive a
:class:`~repro.simnet.host.SimHost`'s background load so the
workload-policy experiments (F2/T2) have a ground-truth signal to track:

* :class:`ConstantLoad` — a fixed level (calibration runs),
* :class:`SquareWaveLoad` — the classic step pattern used to visualise
  broadcast hysteresis,
* :class:`PoissonJobLoad` — jobs arrive as a Poisson process and hold the
  CPU for exponentially distributed times (an M/G/inf load level),
* :class:`TraceLoad` — replays an explicit (time, load) trace.

The scale harness adds *request traffic* and *fault* generators, which
drive callbacks rather than a host's load knob:

* :class:`ArrivalProcess` — a (non)homogeneous Poisson request stream
  via Lewis–Shedler thinning; combine with the :func:`diurnal_rate` /
  :func:`flash_crowd` rate profiles,
* :class:`CorrelatedFailures` — whole failure *groups* (a rack, a
  subnet) crash together and are repaired together,
* :class:`BreakdownRepair` — per-unit exponential breakdown/repair
  renewal, the Beowulf-performability availability model.

Each generator is started with ``start()`` and stopped with ``stop()``;
all randomness comes from the named RNG streams so runs replay exactly.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..errors import SimulationError
from .host import SimHost
from .kernel import EventKernel, Timer

__all__ = [
    "LoadGenerator",
    "ConstantLoad",
    "SquareWaveLoad",
    "PoissonJobLoad",
    "TraceLoad",
    "diurnal_rate",
    "flash_crowd",
    "ArrivalProcess",
    "CorrelatedFailures",
    "BreakdownRepair",
]


class KernelGenerator:
    """Base class: owns a kernel and a set of timers to cancel on stop."""

    def __init__(self, kernel: EventKernel):
        self.kernel = kernel
        self._timers: list[Timer] = []
        self._running = False

    def start(self) -> "KernelGenerator":
        if self._running:
            raise SimulationError("generator already running")
        self._running = True
        self._start()
        return self

    def stop(self) -> None:
        self._running = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()

    def _start(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _arm(self, delay: float, fn) -> None:
        """Schedule ``fn`` if still running; keep the timer for teardown."""
        def guarded() -> None:
            if self._running:
                fn()

        self._timers.append(self.kernel.call_after(delay, guarded))
        # long-running generators arm one timer per event: prune spent
        # entries so stop() doesn't walk an ever-growing dead list
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if not t.cancelled
                            and t.time >= self.kernel.now]


class LoadGenerator(KernelGenerator):
    """A generator that drives one host's background-load knob."""

    def __init__(self, host: SimHost):
        super().__init__(host.kernel)
        self.host = host


class ConstantLoad(LoadGenerator):
    """Pin the background load to a fixed level."""

    def __init__(self, host: SimHost, level: float):
        super().__init__(host)
        if level < 0:
            raise SimulationError("load level must be >= 0")
        self.level = float(level)

    def _start(self) -> None:
        self.host.set_background_load(self.level)

    def stop(self) -> None:
        super().stop()
        self.host.set_background_load(0.0)


class SquareWaveLoad(LoadGenerator):
    """Alternate between ``low`` and ``high`` every ``period/2`` seconds."""

    def __init__(
        self,
        host: SimHost,
        *,
        low: float = 0.0,
        high: float = 2.0,
        period: float = 600.0,
        start_high: bool = False,
    ):
        super().__init__(host)
        if period <= 0:
            raise SimulationError("period must be positive")
        if low < 0 or high < 0:
            raise SimulationError("load levels must be >= 0")
        self.low = float(low)
        self.high = float(high)
        self.period = float(period)
        self._phase_high = start_high

    def _start(self) -> None:
        self._flip()

    def _flip(self) -> None:
        level = self.high if self._phase_high else self.low
        self.host.set_background_load(level)
        self._phase_high = not self._phase_high
        self._arm(self.period / 2.0, self._flip)


class PoissonJobLoad(LoadGenerator):
    """Background jobs arrive Poisson(rate); each holds +1 load for
    Exp(mean_duration) seconds.  The resulting load level is an M/M/inf
    occupancy process with mean ``rate * mean_duration``.
    """

    def __init__(
        self,
        host: SimHost,
        rng: np.random.Generator,
        *,
        rate: float = 1 / 120.0,
        mean_duration: float = 180.0,
        unit_load: float = 1.0,
    ):
        super().__init__(host)
        if rate <= 0 or mean_duration <= 0:
            raise SimulationError("rate and mean_duration must be positive")
        if unit_load <= 0:
            raise SimulationError("unit_load must be positive")
        self.rng = rng
        self.rate = float(rate)
        self.mean_duration = float(mean_duration)
        self.unit_load = float(unit_load)
        self._level = 0.0

    @property
    def mean_load(self) -> float:
        """Steady-state expected background load."""
        return self.rate * self.mean_duration * self.unit_load

    def _start(self) -> None:
        self._arm(self.rng.exponential(1.0 / self.rate), self._arrive)

    def _apply(self, delta: float) -> None:
        self._level = max(0.0, self._level + delta)
        self.host.set_background_load(self._level)

    def _arrive(self) -> None:
        self._apply(+self.unit_load)
        self._arm(self.rng.exponential(self.mean_duration), self._depart)
        self._arm(self.rng.exponential(1.0 / self.rate), self._arrive)

    def _depart(self) -> None:
        self._apply(-self.unit_load)


class TraceLoad(LoadGenerator):
    """Replay an explicit ``[(t, load), ...]`` trace (t relative to start)."""

    def __init__(self, host: SimHost, trace: Sequence[tuple[float, float]]):
        super().__init__(host)
        if not trace:
            raise SimulationError("trace must be non-empty")
        prev = -1.0
        for t, load in trace:
            if t < 0 or load < 0:
                raise SimulationError("trace entries must be non-negative")
            if t <= prev:
                raise SimulationError("trace times must be strictly increasing")
            prev = t
        self.trace = [(float(t), float(v)) for t, v in trace]

    def _start(self) -> None:
        for t, load in self.trace:
            self._arm(t, lambda v=load: self.host.set_background_load(v))


# ----------------------------------------------------------------------
# request-arrival rate profiles
# ----------------------------------------------------------------------
def diurnal_rate(
    *,
    low: float,
    high: float,
    period: float = 86400.0,
    peak_at: float = 0.25,
) -> Callable[[float], float]:
    """Sinusoidal day/night arrival-rate profile (requests/second).

    The rate swings between ``low`` (deepest night) and ``high``
    (``peak_at`` of the way through each ``period``).  Feed the result
    to :class:`ArrivalProcess` or layer spikes on it with
    :func:`flash_crowd`.
    """
    if low < 0 or high < low:
        raise SimulationError("need 0 <= low <= high")
    if period <= 0:
        raise SimulationError("period must be positive")
    mid = (high + low) / 2.0
    amp = (high - low) / 2.0

    def rate(t: float) -> float:
        # sin peaks at period * peak_at
        return mid + amp * math.sin(
            2.0 * math.pi * (t / period - peak_at) + math.pi / 2.0
        )

    return rate


def flash_crowd(
    base: Callable[[float], float] | float,
    *,
    at: float,
    magnitude: float,
    ramp: float = 60.0,
    hold: float = 300.0,
    decay: float = 600.0,
) -> Callable[[float], float]:
    """Layer a flash-crowd spike onto a rate profile.

    From ``at`` the rate ramps linearly to ``magnitude`` times the base
    over ``ramp`` seconds, holds there for ``hold`` seconds, then decays
    back exponentially with time constant ``decay`` — the canonical
    news-event arrival shape.  ``base`` may itself be a profile (e.g.
    :func:`diurnal_rate` output) or a constant; spikes compose by
    nesting calls.
    """
    if magnitude < 1.0:
        raise SimulationError("magnitude must be >= 1")
    if ramp < 0 or hold < 0 or decay <= 0:
        raise SimulationError("need ramp >= 0, hold >= 0, decay > 0")

    def rate(t: float) -> float:
        r = base(t) if callable(base) else float(base)
        dt = t - at
        if dt < 0:
            return r
        if dt < ramp:
            boost = 1.0 + (magnitude - 1.0) * (dt / ramp if ramp else 1.0)
        elif dt < ramp + hold:
            boost = magnitude
        else:
            boost = 1.0 + (magnitude - 1.0) * math.exp(
                -(dt - ramp - hold) / decay
            )
        return r * boost

    return rate


class ArrivalProcess(KernelGenerator):
    """Poisson request arrivals, optionally with a time-varying rate.

    Each arrival invokes ``on_arrival()`` (submit a request, pick a QoS
    class — the callback owns the semantics).  A callable ``rate`` makes
    the process nonhomogeneous via Lewis–Shedler thinning against
    ``rate_max``, which must dominate the profile; a float ``rate`` is
    the plain homogeneous case.  ``limit`` stops the process after that
    many arrivals (0 = unbounded).
    """

    def __init__(
        self,
        kernel: EventKernel,
        rng: np.random.Generator,
        rate: Callable[[float], float] | float,
        on_arrival: Callable[[], None],
        *,
        rate_max: float | None = None,
        limit: int = 0,
    ):
        super().__init__(kernel)
        self.rng = rng
        self.on_arrival = on_arrival
        self.limit = int(limit)
        self.arrivals = 0
        if callable(rate):
            if rate_max is None or rate_max <= 0:
                raise SimulationError(
                    "a rate profile needs a positive rate_max bound"
                )
            self._rate = rate
            self.rate_max = float(rate_max)
        else:
            if rate <= 0:
                raise SimulationError("rate must be positive")
            self._rate = None
            self.rate_max = float(rate)

    def _start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.limit and self.arrivals >= self.limit:
            return
        # candidate gaps at the dominating rate; thin to the profile
        gap = 0.0
        while True:
            gap += self.rng.exponential(1.0 / self.rate_max)
            if self._rate is None:
                break
            r = self._rate(self.kernel.now + gap)
            if r > self.rate_max * (1 + 1e-12):
                raise SimulationError(
                    f"rate profile exceeds rate_max at t="
                    f"{self.kernel.now + gap:g} ({r:g} > {self.rate_max:g})"
                )
            if self.rng.random() * self.rate_max <= r:
                break
        self._arm(gap, self._fire)

    def _fire(self) -> None:
        self.arrivals += 1
        self.on_arrival()
        self._schedule_next()


# ----------------------------------------------------------------------
# failure generators
# ----------------------------------------------------------------------
class CorrelatedFailures(KernelGenerator):
    """Whole groups of units fail together (rack / subnet outages).

    Failure events arrive Poisson(``rate``); each picks one currently-up
    group uniformly, calls ``crash(unit)`` for every member at the same
    instant, and schedules one repair Exp(``repair_mean``) later that
    calls ``revive(unit)`` for every member.  ``crash``/``revive``
    typically wrap ``SimTransport.crash``/``revive``.
    """

    def __init__(
        self,
        kernel: EventKernel,
        rng: np.random.Generator,
        groups: Sequence[Sequence[str]],
        crash: Callable[[str], None],
        revive: Callable[[str], None],
        *,
        rate: float,
        repair_mean: float,
    ):
        super().__init__(kernel)
        if not groups or any(not g for g in groups):
            raise SimulationError("groups must be non-empty")
        if rate <= 0 or repair_mean <= 0:
            raise SimulationError("rate and repair_mean must be positive")
        self.rng = rng
        self.groups = [tuple(g) for g in groups]
        self.crash = crash
        self.revive = revive
        self.rate = float(rate)
        self.repair_mean = float(repair_mean)
        self.failures = 0
        self.repairs = 0
        self._down: set[int] = set()

    def _start(self) -> None:
        self._arm(self.rng.exponential(1.0 / self.rate), self._fail)

    def _fail(self) -> None:
        up = [i for i in range(len(self.groups)) if i not in self._down]
        if up:
            gi = up[int(self.rng.integers(len(up)))]
            self._down.add(gi)
            self.failures += 1
            for unit in self.groups[gi]:
                self.crash(unit)
            self._arm(
                self.rng.exponential(self.repair_mean),
                lambda gi=gi: self._repair(gi),
            )
        self._arm(self.rng.exponential(1.0 / self.rate), self._fail)

    def _repair(self, gi: int) -> None:
        self._down.discard(gi)
        self.repairs += 1
        for unit in self.groups[gi]:
            self.revive(unit)


class BreakdownRepair(KernelGenerator):
    """Independent per-unit breakdown/repair renewal process.

    Every unit alternates up-for-Exp(``mttf``) / down-for-Exp(``mttr``),
    the classic performability availability model: steady-state per-unit
    availability is ``mttf / (mttf + mttr)``.  ``crash``/``revive`` are
    called on each transition.
    """

    def __init__(
        self,
        kernel: EventKernel,
        rng: np.random.Generator,
        units: Sequence[str],
        crash: Callable[[str], None],
        revive: Callable[[str], None],
        *,
        mttf: float,
        mttr: float,
    ):
        super().__init__(kernel)
        if not units:
            raise SimulationError("units must be non-empty")
        if mttf <= 0 or mttr <= 0:
            raise SimulationError("mttf and mttr must be positive")
        self.rng = rng
        self.units = tuple(units)
        self.crash = crash
        self.revive = revive
        self.mttf = float(mttf)
        self.mttr = float(mttr)
        self.breakdowns = 0
        self.repairs = 0
        self.down: set[str] = set()

    @property
    def availability(self) -> float:
        """Steady-state per-unit availability."""
        return self.mttf / (self.mttf + self.mttr)

    def _start(self) -> None:
        for unit in self.units:
            self._arm(
                self.rng.exponential(self.mttf),
                lambda u=unit: self._break(u),
            )

    def _break(self, unit: str) -> None:
        self.down.add(unit)
        self.breakdowns += 1
        self.crash(unit)
        self._arm(
            self.rng.exponential(self.mttr), lambda u=unit: self._fix(u)
        )

    def _fix(self, unit: str) -> None:
        self.down.discard(unit)
        self.repairs += 1
        self.revive(unit)
        self._arm(
            self.rng.exponential(self.mttf), lambda u=unit: self._break(u)
        )
