"""Background-load generators.

NetSolve's servers were shared departmental machines whose UNIX load
average moved with other users' work.  These generators drive a
:class:`~repro.simnet.host.SimHost`'s background load so the
workload-policy experiments (F2/T2) have a ground-truth signal to track:

* :class:`ConstantLoad` — a fixed level (calibration runs),
* :class:`SquareWaveLoad` — the classic step pattern used to visualise
  broadcast hysteresis,
* :class:`PoissonJobLoad` — jobs arrive as a Poisson process and hold the
  CPU for exponentially distributed times (an M/G/inf load level),
* :class:`TraceLoad` — replays an explicit (time, load) trace.

Each generator is started with ``start()`` and stopped with ``stop()``;
all randomness comes from the named RNG streams so runs replay exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError
from .host import SimHost
from .kernel import EventKernel, Timer

__all__ = [
    "LoadGenerator",
    "ConstantLoad",
    "SquareWaveLoad",
    "PoissonJobLoad",
    "TraceLoad",
]


class LoadGenerator:
    """Base class: owns a host and a set of timers to cancel on stop."""

    def __init__(self, host: SimHost):
        self.host = host
        self.kernel: EventKernel = host.kernel
        self._timers: list[Timer] = []
        self._running = False

    def start(self) -> "LoadGenerator":
        if self._running:
            raise SimulationError("generator already running")
        self._running = True
        self._start()
        return self

    def stop(self) -> None:
        self._running = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()

    def _start(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _arm(self, delay: float, fn) -> None:
        """Schedule ``fn`` if still running; keep the timer for teardown."""
        def guarded() -> None:
            if self._running:
                fn()

        self._timers.append(self.kernel.call_after(delay, guarded))


class ConstantLoad(LoadGenerator):
    """Pin the background load to a fixed level."""

    def __init__(self, host: SimHost, level: float):
        super().__init__(host)
        if level < 0:
            raise SimulationError("load level must be >= 0")
        self.level = float(level)

    def _start(self) -> None:
        self.host.set_background_load(self.level)

    def stop(self) -> None:
        super().stop()
        self.host.set_background_load(0.0)


class SquareWaveLoad(LoadGenerator):
    """Alternate between ``low`` and ``high`` every ``period/2`` seconds."""

    def __init__(
        self,
        host: SimHost,
        *,
        low: float = 0.0,
        high: float = 2.0,
        period: float = 600.0,
        start_high: bool = False,
    ):
        super().__init__(host)
        if period <= 0:
            raise SimulationError("period must be positive")
        if low < 0 or high < 0:
            raise SimulationError("load levels must be >= 0")
        self.low = float(low)
        self.high = float(high)
        self.period = float(period)
        self._phase_high = start_high

    def _start(self) -> None:
        self._flip()

    def _flip(self) -> None:
        level = self.high if self._phase_high else self.low
        self.host.set_background_load(level)
        self._phase_high = not self._phase_high
        self._arm(self.period / 2.0, self._flip)


class PoissonJobLoad(LoadGenerator):
    """Background jobs arrive Poisson(rate); each holds +1 load for
    Exp(mean_duration) seconds.  The resulting load level is an M/M/inf
    occupancy process with mean ``rate * mean_duration``.
    """

    def __init__(
        self,
        host: SimHost,
        rng: np.random.Generator,
        *,
        rate: float = 1 / 120.0,
        mean_duration: float = 180.0,
        unit_load: float = 1.0,
    ):
        super().__init__(host)
        if rate <= 0 or mean_duration <= 0:
            raise SimulationError("rate and mean_duration must be positive")
        if unit_load <= 0:
            raise SimulationError("unit_load must be positive")
        self.rng = rng
        self.rate = float(rate)
        self.mean_duration = float(mean_duration)
        self.unit_load = float(unit_load)
        self._level = 0.0

    @property
    def mean_load(self) -> float:
        """Steady-state expected background load."""
        return self.rate * self.mean_duration * self.unit_load

    def _start(self) -> None:
        self._arm(self.rng.exponential(1.0 / self.rate), self._arrive)

    def _apply(self, delta: float) -> None:
        self._level = max(0.0, self._level + delta)
        self.host.set_background_load(self._level)

    def _arrive(self) -> None:
        self._apply(+self.unit_load)
        self._arm(self.rng.exponential(self.mean_duration), self._depart)
        self._arm(self.rng.exponential(1.0 / self.rate), self._arrive)

    def _depart(self) -> None:
        self._apply(-self.unit_load)


class TraceLoad(LoadGenerator):
    """Replay an explicit ``[(t, load), ...]`` trace (t relative to start)."""

    def __init__(self, host: SimHost, trace: Sequence[tuple[float, float]]):
        super().__init__(host)
        if not trace:
            raise SimulationError("trace must be non-empty")
        prev = -1.0
        for t, load in trace:
            if t < 0 or load < 0:
                raise SimulationError("trace entries must be non-negative")
            if t <= prev:
                raise SimulationError("trace times must be strictly increasing")
            prev = t
        self.trace = [(float(t), float(v)) for t, v in trace]

    def _start(self) -> None:
        for t, load in self.trace:
            self._arm(t, lambda v=load: self.host.set_background_load(v))
