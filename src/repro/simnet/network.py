"""Simulated network: hosts joined by point-to-point links.

Links have propagation latency (seconds) and bandwidth (bytes/second) and
are full duplex: each direction is an independent FIFO resource.  A
message occupies its direction for ``nbytes / bandwidth`` seconds
(serialization) and arrives ``latency`` seconds after its last byte left,
so back-to-back messages pipeline the way store-and-forward hardware
does.  This is deliberately the same two-parameter (latency, bandwidth)
model NetSolve's agent uses to predict transfer cost — the experiments
then measure how contention and overhead make reality deviate from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import SimulationError
from .host import SimHost
from .kernel import Event, EventKernel

__all__ = ["Link", "LinkStats", "Topology", "TransferPlan"]


@dataclass
class LinkStats:
    """Per-direction traffic counters."""

    messages: int = 0
    bytes: int = 0
    busy_seconds: float = 0.0


class Link:
    """One direction of a point-to-point link."""

    __slots__ = ("src", "dst", "latency", "bandwidth", "busy_until", "stats")

    def __init__(self, src: str, dst: str, latency: float, bandwidth: float):
        if latency < 0:
            raise SimulationError(f"link {src}->{dst}: negative latency")
        if bandwidth <= 0:
            raise SimulationError(f"link {src}->{dst}: bandwidth must be positive")
        self.src = src
        self.dst = dst
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)  # bytes per second
        self.busy_until = 0.0
        self.stats = LinkStats()

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.src}->{self.dst} lat={self.latency * 1e3:.3g}ms "
            f"bw={self.bandwidth / 1e6:.3g}MB/s>"
        )


@dataclass(frozen=True)
class TransferPlan:
    """Timing decomposition of one (possibly queued) message transfer."""

    start: float
    queue_delay: float
    serialization: float
    latency: float

    @property
    def arrival(self) -> float:
        return self.start + self.queue_delay + self.serialization + self.latency

    @property
    def total(self) -> float:
        return self.arrival - self.start


class Topology:
    """A set of named hosts and the directed links between them.

    Hosts on the same machine (``src == dst``) communicate through an
    implicit loopback with :attr:`loopback_latency` and effectively
    infinite bandwidth, so co-located components cost almost nothing —
    matching the original's use of Unix-domain loopback.
    """

    loopback_latency = 20e-6
    loopback_bandwidth = 400e6

    def __init__(self, kernel: EventKernel, *, per_message_overhead: float = 0.0):
        if per_message_overhead < 0:
            raise SimulationError("per_message_overhead must be >= 0")
        self.kernel = kernel
        self.per_message_overhead = float(per_message_overhead)
        self.hosts: dict[str, SimHost] = {}
        self._links: dict[tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(
        self, name: str, mflops: float, *, background_load: float = 0.0,
        cpus: int = 1,
    ) -> SimHost:
        """Create and register a host."""
        if name in self.hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = SimHost(
            name, self.kernel, mflops, background_load=background_load,
            cpus=cpus,
        )
        self.hosts[name] = host
        return host

    def host(self, name: str) -> SimHost:
        try:
            return self.hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def add_link(
        self,
        a: str,
        b: str,
        *,
        latency: float,
        bandwidth: float,
        symmetric: bool = True,
    ) -> None:
        """Join hosts ``a`` and ``b``; bandwidth in bytes/second."""
        for name in (a, b):
            if name not in self.hosts:
                raise SimulationError(f"unknown host {name!r}")
        if a == b:
            raise SimulationError("use loopback, not a self-link")
        self._links[(a, b)] = Link(a, b, latency, bandwidth)
        if symmetric:
            self._links[(b, a)] = Link(b, a, latency, bandwidth)

    def connect_all(self, *, latency: float, bandwidth: float) -> None:
        """Add a full mesh among all current hosts (skips existing pairs)."""
        names = sorted(self.hosts)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if (a, b) not in self._links:
                    self.add_link(a, b, latency=latency, bandwidth=bandwidth)

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst`` (loopback links are implicit)."""
        if src == dst:
            key = (src, src)
            if key not in self._links:
                self._links[key] = Link(
                    src, src, self.loopback_latency, self.loopback_bandwidth
                )
            return self._links[key]
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise SimulationError(f"no link {src!r} -> {dst!r}") from None

    def links(self) -> Iterable[Link]:
        return self._links.values()

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def plan_transfer(self, src: str, dst: str, nbytes: int) -> TransferPlan:
        """Timing a transfer *would* have if issued now (no side effects)."""
        link = self.link(src, dst)
        now = self.kernel.now
        start_tx = max(now, link.busy_until)
        ser = link.serialization_time(nbytes) + self.per_message_overhead
        return TransferPlan(
            start=now,
            queue_delay=start_tx - now,
            serialization=ser,
            latency=link.latency,
        )

    def transfer(self, src: str, dst: str, nbytes: int) -> Event:
        """Send ``nbytes`` from ``src`` to ``dst``; event fires on arrival.

        The event value is the :class:`TransferPlan` actually realised.
        """
        if nbytes < 0:
            raise SimulationError("nbytes must be >= 0")
        link = self.link(src, dst)
        plan = self.plan_transfer(src, dst, nbytes)
        link.busy_until = plan.start + plan.queue_delay + plan.serialization
        link.stats.messages += 1
        link.stats.bytes += nbytes
        link.stats.busy_seconds += plan.serialization
        done = self.kernel.event()
        # priority 1: deliveries run after same-instant local bookkeeping
        self.kernel.call_at(
            plan.arrival, lambda: done.succeed(plan), priority=1
        )
        return done

    def estimate_seconds(self, src: str, dst: str, nbytes: int) -> float:
        """Contention-free latency+bandwidth estimate (the agent's model)."""
        link = self.link(src, dst)
        return (
            link.latency
            + nbytes / link.bandwidth
            + self.per_message_overhead
        )

    def total_messages(self) -> int:
        return sum(l.stats.messages for l in self._links.values())

    def total_bytes(self) -> int:
        return sum(l.stats.bytes for l in self._links.values())
