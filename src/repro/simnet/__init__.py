"""Deterministic discrete-event simulation substrate.

The original NetSolve evaluation ran on real workstations and real
networks; this package supplies the laptop-scale stand-in: a virtual-time
event kernel (:mod:`repro.simnet.kernel`), hosts with Mflop/s ratings and
UNIX-style load averages (:mod:`repro.simnet.host`), a network of links
with latency, bandwidth and FIFO contention (:mod:`repro.simnet.network`),
and stochastic background-load generators (:mod:`repro.simnet.traffic`).
All randomness flows through named, seeded streams
(:mod:`repro.simnet.rng`), so any (seed, config) pair replays exactly.
"""

from .kernel import Event, EventKernel, Process, Timer
from .rng import RngStreams
from .host import SimHost
from .network import Link, LinkStats, Topology, TransferPlan
from .traffic import (
    LoadGenerator,
    PoissonJobLoad,
    SquareWaveLoad,
    TraceLoad,
    ConstantLoad,
)

__all__ = [
    "Event",
    "EventKernel",
    "Process",
    "Timer",
    "RngStreams",
    "SimHost",
    "Link",
    "LinkStats",
    "Topology",
    "TransferPlan",
    "LoadGenerator",
    "PoissonJobLoad",
    "SquareWaveLoad",
    "TraceLoad",
    "ConstantLoad",
]
