"""Named, seeded random-number streams.

Every stochastic element of a simulation (each load generator, each
failure injector, each workload sampler) draws from its *own* child
stream, derived deterministically from a root seed and a string name.
Adding a new consumer therefore never perturbs the draws seen by existing
ones — the property that keeps regression baselines stable as the
simulator grows.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """Factory of independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two ``RngStreams`` with the same seed hand out
        identical streams for identical names, in any creation order.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> g1 = streams.get("host0.load")
    >>> g2 = streams.get("host1.load")
    >>> g1 is streams.get("host0.load")   # cached
    True
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> np.random.Generator:
        # Hash the name into a stable 64-bit stream key; combine with the
        # root seed through SeedSequence so streams are statistically
        # independent regardless of how similar their names are.
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        key = int.from_bytes(digest[:8], "little")
        ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        return np.random.Generator(np.random.PCG64(ss))

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) stream for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            gen = self._derive(name)
            self._cache[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting its sequence.

        Useful in tests that want to replay a single stream without
        rebuilding the whole factory.
        """
        gen = self._derive(name)
        self._cache[name] = gen
        return gen

    def names(self) -> list[str]:
        """Names of all streams handed out so far (sorted)."""
        return sorted(self._cache)
