"""NetSolve reproduction: a network server for computational science.

A faithful, laptop-scale rebuild of the system described in

    Casanova & Dongarra, "NetSolve: A Network Server for Solving
    Computational Science Problems", Supercomputing '96.

Quick start (simulated deployment)::

    import numpy as np
    from repro import standard_testbed

    tb = standard_testbed(n_servers=4, seed=0)
    tb.settle()
    a = np.random.default_rng(0).standard_normal((256, 256)) + 256 * np.eye(256)
    b = np.ones(256)
    (x,) = tb.solve("c0", "linsys/dgesv", [a, b])

See :mod:`repro.core` for the client/agent/server system,
:mod:`repro.simnet` for the simulation substrate, :mod:`repro.problems`
for problem descriptions, :mod:`repro.numerics` for the numerical
library, and :mod:`repro.capi` / :mod:`repro.matlab` for the
C-flavoured and MATLAB-flavoured client interfaces.
"""

from . import capi, config, errors, farming, matlab, numerics, problems
from .config import AgentConfig, ClientConfig, ServerConfig, SimConfig, WorkloadPolicy
from .core import (
    Agent,
    ComputationalServer,
    FailureInjector,
    NetSolveClient,
    RequestHandle,
    RequestStatus,
)
from .errors import NetSolveError
from .farming import FarmResult, submit_farm
from .matlab import MatlabNetSolve
from .problems import builtin_registry
from .sequencing import ServerSequence, open_sequence
from .testbed import (
    AGENT_ADDRESS,
    ClientDef,
    HostDef,
    LinkDef,
    ServerDef,
    Testbed,
    build_testbed,
    client_address,
    server_address,
    standard_testbed,
)

__version__ = "1.0.0"

__all__ = [
    "AgentConfig",
    "ClientConfig",
    "ServerConfig",
    "SimConfig",
    "WorkloadPolicy",
    "Agent",
    "ComputationalServer",
    "NetSolveClient",
    "RequestHandle",
    "RequestStatus",
    "FailureInjector",
    "NetSolveError",
    "FarmResult",
    "submit_farm",
    "MatlabNetSolve",
    "builtin_registry",
    "ServerSequence",
    "open_sequence",
    "Testbed",
    "build_testbed",
    "standard_testbed",
    "HostDef",
    "ServerDef",
    "ClientDef",
    "LinkDef",
    "AGENT_ADDRESS",
    "server_address",
    "client_address",
    "capi",
    "config",
    "errors",
    "farming",
    "matlab",
    "numerics",
    "problems",
    "__version__",
]
