"""One-call builders for simulated NetSolve deployments.

Everything an experiment needs — kernel, topology, transport, agent,
servers, clients, RNG streams, event trace — assembled from declarative
host/server/client definitions.  All benchmarks and the integration
tests build their worlds through this module, so deployment conventions
(addresses, link tables, settle behaviour) live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from .config import (
    AgentConfig,
    ClientConfig,
    ServerConfig,
    SimConfig,
    replace_validated,
)
from .core.agent import Agent
from .core.client import NetSolveClient, RequestHandle
from .core.predictor import LinkEstimate, StaticNetworkInfo
from .core.server import ComputationalServer
from .errors import ConfigError, SimulationError
from .problems.builtin import builtin_registry
from .problems.registry import ProblemRegistry
from .protocol.transport import SimTransport
from .simnet.kernel import EventKernel
from .simnet.network import Topology
from .simnet.rng import RngStreams
from .trace.events import EventLog
from .trace.instruments import Observability

__all__ = [
    "HostDef",
    "ServerDef",
    "ClientDef",
    "LinkDef",
    "Testbed",
    "build_testbed",
    "standard_testbed",
    "fleet_testbed",
    "AGENT_ADDRESS",
    "server_address",
    "client_address",
]

AGENT_ADDRESS = "agent"

#: 1996-flavoured defaults: 10 Mb/s shared Ethernet, 2 ms latency
DEFAULT_LATENCY = 2e-3
DEFAULT_BANDWIDTH = 1.25e6


def server_address(server_id: str) -> str:
    return f"server/{server_id}"


def client_address(client_id: str) -> str:
    return f"client/{client_id}"


@dataclass(frozen=True)
class HostDef:
    name: str
    mflops: float
    background_load: float = 0.0
    #: virtual CPU count (executor slots the host can truly parallelize)
    cpus: int = 1


@dataclass(frozen=True)
class LinkDef:
    a: str
    b: str
    latency: float = DEFAULT_LATENCY
    bandwidth: float = DEFAULT_BANDWIDTH


@dataclass(frozen=True)
class ServerDef:
    server_id: str
    host: str
    #: None = full builtin catalogue; otherwise a subset of problem names
    problems: Optional[tuple[str, ...]] = None
    cfg: ServerConfig = field(default_factory=ServerConfig)
    #: advertised speed; None = the host's true rating (honest server)
    mflops: Optional[float] = None
    #: custom registry; None = (subset of) the builtin catalogue
    registry: Optional[ProblemRegistry] = None
    #: which agent this server registers with (federated deployments)
    agent: str = AGENT_ADDRESS
    #: ordered agent failover rotation; empty = just ``agent``.  When
    #: set, the first entry is the home agent and the rest are tried in
    #: order on RegisterAck silence
    agents: tuple[str, ...] = ()


@dataclass(frozen=True)
class ClientDef:
    client_id: str
    host: str
    cfg: ClientConfig = field(default_factory=ClientConfig)
    #: which agent this client queries (federated deployments)
    agent: str = AGENT_ADDRESS
    #: ordered agent failover rotation; empty = just ``agent``
    agents: tuple[str, ...] = ()


class Testbed:
    """A running simulated deployment."""

    def __init__(
        self,
        *,
        kernel: EventKernel,
        topology: Topology,
        transport: SimTransport,
        agent: Agent,
        servers: dict[str, ComputationalServer],
        clients: dict[str, NetSolveClient],
        rng: RngStreams,
        trace: EventLog,
        sim: SimConfig,
        observability: Observability | None = None,
    ):
        self.kernel = kernel
        self.topology = topology
        self.transport = transport
        self.agent = agent
        self.servers = servers
        self.clients = clients
        self.rng = rng
        self.trace = trace
        self.sim = sim
        #: the metrics/span bundle every role reports into (None when the
        #: deployment was built unobserved — the zero-cost default)
        self.observability = observability
        #: all agents by address (populated by build_testbed; the primary
        #: is also available as .agent)
        self.agents: dict[str, Agent] = {AGENT_ADDRESS: agent}

    # ------------------------------------------------------------------
    def client(self, client_id: str) -> NetSolveClient:
        try:
            return self.clients[client_id]
        except KeyError:
            raise SimulationError(f"unknown client {client_id!r}") from None

    def server(self, server_id: str) -> ComputationalServer:
        try:
            return self.servers[server_id]
        except KeyError:
            raise SimulationError(f"unknown server {server_id!r}") from None

    def host(self, name: str):
        return self.topology.host(name)

    # ------------------------------------------------------------------
    def injector(self):
        """A :class:`~repro.core.faults.FailureInjector` over this
        deployment's transport — the one-liner for crash/revive
        schedules in lifecycle tests and fault experiments."""
        from .core.faults import FailureInjector

        return FailureInjector(self.transport)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Advance virtual time."""
        return self.kernel.run(until=until)

    def settle(self, seconds: float | None = None) -> None:
        """Let registrations and the first workload reports land."""
        if seconds is None:
            steps = [
                s.cfg.workload.time_step for s in self.servers.values()
            ] or [10.0]
            seconds = max(steps) + 1.0
        self.kernel.run(until=self.kernel.now + seconds)

    def submit(
        self, client_id: str, problem: str, args: Sequence[Any],
        *, keep_result: bool = False, payloads: Optional[dict] = None,
        qos: str = "",
    ) -> RequestHandle:
        """Non-blocking submit (the ``netslnb`` path)."""
        return self.client(client_id).submit(
            problem, args, keep_result=keep_result, payloads=payloads,
            qos=qos,
        )

    def solve(
        self,
        client_id: str,
        problem: str,
        args: Sequence[Any],
        *,
        keep_result: bool = False,
        payloads: Optional[dict] = None,
        limit: float | None = None,
    ) -> tuple:
        """Blocking solve (the ``netsl`` path): submit, run, return outputs."""
        handle = self.submit(
            client_id, problem, args,
            keep_result=keep_result, payloads=payloads,
        )
        return self.transport.run_until(handle.promise, limit=limit)

    def store(
        self, client_id: str, server_id: str, key: str, value: Any,
        *, limit: float | None = None,
    ):
        """Blocking store of an operand on a server; returns its
        :class:`~repro.protocol.messages.DataHandle` (digest, size and
        shape metadata included) for referencing or fetching later."""
        client = self.client(client_id)
        promise = client.store_handle(server_address(server_id), key, value)
        handle = self.transport.run_until(promise, limit=limit)
        assert handle is not None  # a successful ack always carries one
        return handle

    def fetch(
        self, client_id: str, handle, *, address: str = "",
        limit: float | None = None,
    ):
        """Blocking :meth:`NetSolveClient.fetch`: pull a resident
        object's value back by handle."""
        promise = self.client(client_id).fetch(handle, address=address)
        return self.transport.run_until(promise, limit=limit)

    def solve_dag(
        self, client_id: str, nodes: Sequence[dict], *, address: str = "",
        on_node=None, limit: float | None = None,
    ) -> tuple:
        """Blocking :meth:`NetSolveClient.submit_dag`: returns the
        emitted outputs tuple."""
        promise = self.client(client_id).submit_dag(
            nodes, address=address, on_node=on_node
        )
        return self.transport.run_until(promise, limit=limit)

    def fetch_result(
        self,
        client_id: str,
        server_id: str,
        request_id: int,
        *,
        client: str = "",
        limit: float | None = None,
    ):
        """Blocking :meth:`NetSolveClient.fetch_result`: recover a
        finished result from a server's persistent job store.  Returns
        the :class:`~repro.protocol.messages.ResultStatus` message."""
        promise = self.client(client_id).fetch_result(
            server_address(server_id), request_id, client=client
        )
        return self.transport.run_until(promise, limit=limit)

    def wait_all(
        self, handles: Sequence[RequestHandle], *, limit: float | None = None
    ) -> list[RequestHandle]:
        """Run until every handle settles; failed requests stay failed
        (inspect ``handle.status``), nothing raises here."""
        self.kernel.run(
            until=limit, stop=lambda: all(h.done for h in handles)
        )
        missing = [h for h in handles if not h.done]
        if missing:
            raise SimulationError(
                f"{len(missing)} request(s) never settled "
                f"(now={self.kernel.now:.1f})"
            )
        return list(handles)

    # ------------------------------------------------------------------
    def _require_observability(self) -> Observability:
        if self.observability is None:
            raise SimulationError(
                "testbed was built without observability; pass "
                "observability=Observability() to build_testbed"
            )
        return self.observability

    def metrics_snapshot(self, *, max_spans: int | None = None) -> dict:
        """JSON-able metrics + span dump of the run so far."""
        return self._require_observability().snapshot(max_spans=max_spans)

    def metrics_report(self, *, max_spans: int = 0) -> str:
        """Text report of the run so far (``max_spans`` > 0 appends
        per-request span timelines)."""
        return self._require_observability().report(max_spans=max_spans)


def build_testbed(
    *,
    hosts: Sequence[HostDef],
    servers: Sequence[ServerDef],
    clients: Sequence[ClientDef],
    agent_host: str,
    links: Sequence[LinkDef] = (),
    default_link: LinkDef | None = LinkDef("*", "*"),
    sim: SimConfig = SimConfig(),
    agent_cfg: AgentConfig = AgentConfig(),
    use_workload: bool = True,
    assignment_feedback: bool = True,
    network_override=None,
    extra_agents: Sequence[tuple[str, str]] = (),
    observability: Observability | None = None,
) -> Testbed:
    """Assemble a deployment.

    Explicit ``links`` take precedence; remaining host pairs get
    ``default_link`` parameters (set ``default_link=None`` to require a
    fully explicit link list).  The agent's network table is loaded from
    the same link definitions — representing NetSolve's network
    measurements — but never sees per-message overhead or contention.
    ``network_override`` replaces that oracle table entirely (e.g. a
    :class:`~repro.core.predictor.LearnedNetworkInfo` over a wrong prior
    for the measurement-loop experiments).  ``extra_agents`` adds
    federated sibling agents as ``(address, host)`` pairs — all agents
    peer with each other, and ``ServerDef.agent`` / ``ClientDef.agent``
    choose each component's home agent.  ``observability`` attaches one
    metrics registry (and span log, for clients) to every role; omit it
    and no instrumentation hooks fire anywhere.
    """
    if not hosts:
        raise ConfigError("need at least one host")
    kernel = EventKernel()
    rng = RngStreams(sim.seed)
    trace = EventLog()
    topology = Topology(kernel, per_message_overhead=sim.per_message_overhead)
    for h in hosts:
        topology.add_host(
            h.name, h.mflops, background_load=h.background_load, cpus=h.cpus
        )
    for link in links:
        topology.add_link(
            link.a, link.b, latency=link.latency, bandwidth=link.bandwidth
        )
    if default_link is not None:
        topology.connect_all(
            latency=default_link.latency, bandwidth=default_link.bandwidth
        )

    # the agent's "measured" network characteristics.  A callable
    # network_override is a per-agent *factory* (called once per agent
    # address) so federated agents get independent tables — the only way
    # TransferReport mirroring is observable; a plain object is shared,
    # and the default read-only StaticNetworkInfo is shared too (no
    # observe(), so one table serves every agent identically)
    if network_override is not None:
        network_for = (
            network_override
            if callable(network_override)
            else lambda addr: network_override
        )
    else:
        static = StaticNetworkInfo()
        for link_obj in topology.links():
            static.set(
                link_obj.src,
                link_obj.dst,
                LinkEstimate(
                    latency=link_obj.latency, bandwidth=link_obj.bandwidth
                ),
            )
        network_for = lambda addr: static

    metrics = observability.metrics if observability is not None else None
    spans = observability.spans if observability is not None else None
    transport = SimTransport(
        topology, codec_roundtrip=sim.codec_roundtrip, metrics=metrics
    )
    agent_defs = [(AGENT_ADDRESS, agent_host), *extra_agents]
    agent_addresses = [addr for addr, _h in agent_defs]
    if len(set(agent_addresses)) != len(agent_addresses):
        raise ConfigError("duplicate agent address")
    agents: dict[str, Agent] = {}
    for addr, host_name in agent_defs:
        peer_list = tuple(a for a in agent_addresses if a != addr)
        sibling = Agent(
            network=network_for(addr),
            cfg=agent_cfg,
            rng=rng.get(f"{addr}.policy"),
            trace=trace,
            use_workload=use_workload,
            assignment_feedback=assignment_feedback,
            peers=peer_list,
            metrics=metrics,
        )
        transport.add_node(addr, host_name, sibling)
        agents[addr] = sibling
    agent = agents[AGENT_ADDRESS]

    server_map: dict[str, ComputationalServer] = {}
    for sd in servers:
        if sd.server_id in server_map:
            raise ConfigError(f"duplicate server id {sd.server_id!r}")
        registry = sd.registry
        if registry is None:
            registry = builtin_registry()
            if sd.problems is not None:
                registry = registry.subset(sd.problems)
        host = topology.host(sd.host)
        rotation = sd.agents if sd.agents else (sd.agent,)
        for a in rotation:
            if a not in agents:
                raise ConfigError(
                    f"server {sd.server_id!r}: unknown agent {a!r}"
                )
        server = ComputationalServer(
            server_id=sd.server_id,
            agent_address=list(rotation),
            registry=registry,
            mflops=sd.mflops if sd.mflops is not None else host.mflops,
            host=sd.host,
            cfg=sd.cfg,
            trace=trace,
            metrics=metrics,
        )
        transport.add_node(server_address(sd.server_id), sd.host, server)
        server_map[sd.server_id] = server

    client_map: dict[str, NetSolveClient] = {}
    for cd in clients:
        if cd.client_id in client_map:
            raise ConfigError(f"duplicate client id {cd.client_id!r}")
        rotation = cd.agents if cd.agents else (cd.agent,)
        for a in rotation:
            if a not in agents:
                raise ConfigError(
                    f"client {cd.client_id!r}: unknown agent {a!r}"
                )
        client = NetSolveClient(
            client_id=cd.client_id,
            agent_address=list(rotation),
            cfg=cd.cfg,
            trace=trace,
            metrics=metrics,
            spans=spans,
        )
        transport.add_node(client_address(cd.client_id), cd.host, client)
        client_map[cd.client_id] = client

    tb = Testbed(
        kernel=kernel,
        topology=topology,
        transport=transport,
        agent=agent,
        servers=server_map,
        clients=client_map,
        rng=rng,
        trace=trace,
        sim=sim,
        observability=observability,
    )
    tb.agents = agents
    return tb


def standard_testbed(
    *,
    n_servers: int = 4,
    server_mflops: Sequence[float] | None = None,
    client_mflops: float = 20.0,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
    seed: int = 0,
    problems: Optional[tuple[str, ...]] = None,
    agent_cfg: AgentConfig = AgentConfig(),
    client_cfg: ClientConfig = ClientConfig(),
    server_cfg: ServerConfig = ServerConfig(),
    use_workload: bool = True,
    assignment_feedback: bool = True,
    observability: Observability | None = None,
    cache_entries: int = 0,
    cache_ttl: float = 0.0,
) -> Testbed:
    """The canonical experiment world: one client host, one agent host,
    ``n_servers`` heterogeneous server hosts on a shared LAN.

    Server speeds default to 50, 100, 150, ... Mflop/s — a spread wide
    enough that scheduling decisions matter.

    ``cache_entries > 0`` turns on the result-cache stack end to end:
    every server and the agent get a cache of that size (and TTL), and
    the client computes request digests so the agent's hot cache can
    answer repeats in one RTT.  Zero (the default) leaves every layer
    exactly as uncached deployments have always been.
    """
    if n_servers < 1:
        raise ConfigError("need at least one server")
    if cache_entries > 0:
        agent_cfg = replace_validated(
            agent_cfg, cache_entries=cache_entries, cache_ttl=cache_ttl
        )
        server_cfg = replace_validated(
            server_cfg,
            cache_entries=cache_entries,
            cache_ttl=cache_ttl,
            # publish anything the agent would accept into its hot cache
            cache_publish_bytes=agent_cfg.cache_entry_bytes,
        )
        client_cfg = replace_validated(client_cfg, cache_digest=True)
    if server_mflops is None:
        server_mflops = [50.0 * (i + 1) for i in range(n_servers)]
    if len(server_mflops) != n_servers:
        raise ConfigError("server_mflops length must match n_servers")
    hosts = [
        HostDef("apollo", client_mflops),
        HostDef("hermes", 50.0),  # the agent's machine
    ]
    servers = []
    for i, mflops in enumerate(server_mflops):
        name = f"zeus{i}"
        hosts.append(HostDef(name, mflops))
        servers.append(
            ServerDef(
                server_id=f"s{i}", host=name, problems=problems, cfg=server_cfg
            )
        )
    return build_testbed(
        hosts=hosts,
        servers=servers,
        clients=[ClientDef("c0", "apollo", cfg=client_cfg)],
        agent_host="hermes",
        default_link=LinkDef("*", "*", latency=latency, bandwidth=bandwidth),
        sim=SimConfig(seed=seed),
        agent_cfg=agent_cfg,
        use_workload=use_workload,
        assignment_feedback=assignment_feedback,
        observability=observability,
    )


def fleet_testbed(
    *,
    n_agents: int = 3,
    n_servers: int = 4,
    n_clients: int = 2,
    server_mflops: Sequence[float] | None = None,
    client_mflops: float = 20.0,
    latency: float = DEFAULT_LATENCY,
    bandwidth: float = DEFAULT_BANDWIDTH,
    seed: int = 0,
    problems: Optional[tuple[str, ...]] = None,
    shard: bool = False,
    sync_interval: float = 10.0,
    agent_cfg: AgentConfig = AgentConfig(),
    client_cfg: ClientConfig = ClientConfig(),
    server_cfg: ServerConfig = ServerConfig(),
    observability: Observability | None = None,
) -> Testbed:
    """The canonical agent-fleet world: ``n_agents`` peered agents, each
    on its own host, with servers and clients spread round-robin across
    them.

    Every server and client carries the *full* agent rotation (its home
    agent first), so agent death exercises the failover paths instead of
    stranding anyone.  ``shard`` turns on consistent-hash query
    ownership; ``sync_interval`` paces anti-entropy (and the peer
    heartbeat the shard forwarder relies on).
    """
    if n_agents < 1:
        raise ConfigError("need at least one agent")
    if n_servers < 1:
        raise ConfigError("need at least one server")
    if n_clients < 1:
        raise ConfigError("need at least one client")
    agent_cfg = replace_validated(
        agent_cfg, shard=shard, sync_interval=sync_interval
    )
    agent_addresses = [AGENT_ADDRESS] + [
        f"{AGENT_ADDRESS}-{i}" for i in range(1, n_agents)
    ]
    if server_mflops is None:
        server_mflops = [50.0 * (i + 1) for i in range(n_servers)]
    if len(server_mflops) != n_servers:
        raise ConfigError("server_mflops length must match n_servers")

    hosts = [HostDef(f"hera{i}", 50.0) for i in range(n_agents)]

    def rotation(start: int) -> tuple[str, ...]:
        return tuple(
            agent_addresses[(start + k) % n_agents] for k in range(n_agents)
        )

    servers = []
    for i, mflops in enumerate(server_mflops):
        name = f"zeus{i}"
        hosts.append(HostDef(name, mflops))
        servers.append(
            ServerDef(
                server_id=f"s{i}",
                host=name,
                problems=problems,
                cfg=server_cfg,
                agents=rotation(i),
            )
        )
    clients = []
    for j in range(n_clients):
        name = f"apollo{j}"
        hosts.append(HostDef(name, client_mflops))
        clients.append(
            ClientDef(
                client_id=f"c{j}",
                host=name,
                cfg=client_cfg,
                agents=rotation(j),
            )
        )
    return build_testbed(
        hosts=hosts,
        servers=servers,
        clients=clients,
        agent_host="hera0",
        extra_agents=[
            (addr, f"hera{i}")
            for i, addr in enumerate(agent_addresses)
            if i > 0
        ],
        default_link=LinkDef("*", "*", latency=latency, bandwidth=bandwidth),
        sim=SimConfig(seed=seed),
        agent_cfg=agent_cfg,
        observability=observability,
    )
