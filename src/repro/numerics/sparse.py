"""Compressed-sparse-row matrices and sparse iterative kernels.

The ItPack problems NetSolve advertised operated on sparse systems; this
module supplies the substrate: a validating CSR container with a
vectorized matvec (``np.add.reduceat`` over the row pointer — no Python
loop over rows), and CG/Jacobi drivers over it.

Flops: ``2*nnz`` per matvec.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["CsrMatrix", "sparse_cg", "sparse_jacobi", "poisson_1d", "poisson_2d"]


class CsrMatrix:
    """Validated CSR matrix (square or rectangular)."""

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(self, shape: tuple[int, int], indptr, indices, data):
        rows, cols = int(shape[0]), int(shape[1])
        if rows <= 0 or cols <= 0:
            raise NumericsError(f"bad shape {shape}")
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(data, dtype=np.float64)
        if indptr.ndim != 1 or indptr.shape[0] != rows + 1:
            raise NumericsError(
                f"indptr must have length rows+1={rows + 1}, got {indptr.shape}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise NumericsError("indptr must start at 0 and be non-decreasing")
        nnz = int(indptr[-1])
        if indices.shape != (nnz,) or values.shape != (nnz,):
            raise NumericsError(
                f"indices/data must have length nnz={nnz}, got "
                f"{indices.shape}/{values.shape}"
            )
        if nnz and (indices.min() < 0 or indices.max() >= cols):
            raise NumericsError("column index out of range")
        if not np.all(np.isfinite(values)):
            raise NumericsError("data contains non-finite entries")
        self.shape = (rows, cols)
        self.indptr = indptr
        self.indices = indices
        self.data = values

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def matvec(self, x) -> np.ndarray:
        """``A @ x`` without materializing the dense matrix."""
        xv = np.asarray(x, dtype=np.float64)
        if xv.shape != (self.shape[1],):
            raise NumericsError(
                f"vector has shape {xv.shape}, matrix is {self.shape}"
            )
        products = self.data * xv[self.indices]
        out = np.zeros(self.shape[0])
        # reduceat needs strictly valid segment starts; empty rows are
        # handled by masking the rows whose segment is non-empty
        row_counts = np.diff(self.indptr)
        nonempty = row_counts > 0
        if products.size:
            starts = self.indptr[:-1][nonempty]
            out[nonempty] = np.add.reduceat(products, starts)
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal (zeros where absent); square matrices only."""
        if self.shape[0] != self.shape[1]:
            raise NumericsError("diagonal of a non-square matrix")
        diag = np.zeros(self.shape[0])
        for i in range(self.shape[0]):
            row = slice(self.indptr[i], self.indptr[i + 1])
            hits = np.nonzero(self.indices[row] == i)[0]
            if hits.size:
                diag[i] = self.data[row][hits[0]]
        return diag

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for i in range(self.shape[0]):
            row = slice(self.indptr[i], self.indptr[i + 1])
            out[i, self.indices[row]] = self.data[row]
        return out

    @staticmethod
    def from_dense(a, *, tol: float = 0.0) -> "CsrMatrix":
        arr = np.asarray(a, dtype=np.float64)
        if arr.ndim != 2:
            raise NumericsError("from_dense expects a matrix")
        mask = np.abs(arr) > tol
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        np.cumsum(mask.sum(axis=1), out=indptr[1:])
        indices = np.nonzero(mask)[1].astype(np.int64)
        data = arr[mask]
        return CsrMatrix(arr.shape, indptr, indices, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CsrMatrix {self.shape[0]}x{self.shape[1]} nnz={self.nnz}>"


def sparse_cg(
    a: CsrMatrix, b, *, tol: float = 1e-10, max_iter: int | None = None, x0=None
) -> tuple[np.ndarray, int]:
    """Conjugate gradients with CSR matvecs (SPD systems)."""
    if a.shape[0] != a.shape[1]:
        raise NumericsError("cg needs a square matrix")
    n = a.shape[0]
    bv = np.asarray(b, dtype=np.float64)
    if bv.shape != (n,):
        raise NumericsError(f"rhs shape {bv.shape} incompatible with {a.shape}")
    budget = max_iter if max_iter is not None else 10 * n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = bv - a.matvec(x)
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(bv)) or 1.0
    if np.sqrt(rs) <= tol * bnorm:
        return x, 0
    for it in range(1, budget + 1):
        ap = a.matvec(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            raise NumericsError("sparse_cg: matrix is not positive definite")
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) <= tol * bnorm:
            return x, it
        p = r + (rs_new / rs) * p
        rs = rs_new
    raise ConvergenceError("sparse_cg", budget, np.sqrt(rs))


def sparse_jacobi(
    a: CsrMatrix, b, *, tol: float = 1e-10, max_iter: int = 20000, x0=None
) -> tuple[np.ndarray, int]:
    """Jacobi iteration with CSR matvecs (diagonally dominant systems)."""
    if a.shape[0] != a.shape[1]:
        raise NumericsError("jacobi needs a square matrix")
    n = a.shape[0]
    bv = np.asarray(b, dtype=np.float64)
    if bv.shape != (n,):
        raise NumericsError(f"rhs shape {bv.shape} incompatible with {a.shape}")
    d = a.diagonal()
    if np.any(d == 0.0):
        raise NumericsError("jacobi requires a non-zero diagonal")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = float(np.linalg.norm(bv)) or 1.0
    for it in range(1, max_iter + 1):
        x = x + (bv - a.matvec(x)) / d
        res = float(np.linalg.norm(bv - a.matvec(x)))
        if res <= tol * bnorm:
            return x, it
    raise ConvergenceError("sparse_jacobi", max_iter, res)


def poisson_1d(n: int) -> CsrMatrix:
    """The 1-D Laplacian [-1, 2, -1] on ``n`` interior points (SPD)."""
    if n < 1:
        raise NumericsError("n must be >= 1")
    rows = []
    indices = []
    data = []
    indptr = [0]
    for i in range(n):
        if i > 0:
            indices.append(i - 1)
            data.append(-1.0)
        indices.append(i)
        data.append(2.0)
        if i < n - 1:
            indices.append(i + 1)
            data.append(-1.0)
        indptr.append(len(indices))
        rows.append(i)
    return CsrMatrix((n, n), indptr, indices, data)


def poisson_2d(k: int) -> CsrMatrix:
    """The 5-point Laplacian on a k x k interior grid (SPD, n = k^2)."""
    if k < 1:
        raise NumericsError("k must be >= 1")
    n = k * k
    indptr = [0]
    indices: list[int] = []
    data: list[float] = []
    for row in range(n):
        i, j = divmod(row, k)
        for di, dj, value in (
            (-1, 0, -1.0), (0, -1, -1.0), (0, 0, 4.0), (0, 1, -1.0), (1, 0, -1.0)
        ):
            ni, nj = i + di, j + dj
            if 0 <= ni < k and 0 <= nj < k:
                indices.append(ni * k + nj)
                data.append(value)
        indptr.append(len(indices))
    return CsrMatrix((n, n), indptr, indices, data)
