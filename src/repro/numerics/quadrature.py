"""Numerical quadrature (the QuadPack-lite slice).

* :func:`composite_trapezoid` — fixed-grid trapezoid rule, vectorized
  over the abscissae.
* :func:`adaptive_simpson` — classic recursive Simpson with the
  Richardson error estimate, implemented iteratively with an explicit
  stack so deep subdivisions cannot overflow Python's recursion limit.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["composite_trapezoid", "adaptive_simpson"]

Fn = Callable[[float], float]


def composite_trapezoid(f: Fn, a: float, b: float, n: int) -> float:
    """Trapezoid rule on ``n`` equal intervals; error O(h^2)."""
    if n <= 0:
        raise NumericsError("n must be positive")
    if not (np.isfinite(a) and np.isfinite(b)) or b <= a:
        raise NumericsError(f"bad interval [{a}, {b}]")
    xs = np.linspace(a, b, n + 1)
    try:
        ys = np.asarray([float(f(float(x))) for x in xs])
    except (ZeroDivisionError, OverflowError, ValueError) as exc:
        raise NumericsError(f"integrand failed: {exc}") from None
    if not np.all(np.isfinite(ys)):
        raise NumericsError("integrand returned non-finite values")
    h = (b - a) / n
    return float(h * (ys[0] / 2.0 + ys[1:-1].sum() + ys[-1] / 2.0))


def _simpson(fa: float, fm: float, fb: float, h: float) -> float:
    return h / 6.0 * (fa + 4.0 * fm + fb)


def adaptive_simpson(
    f: Fn,
    a: float,
    b: float,
    *,
    tol: float = 1e-10,
    max_intervals: int = 100_000,
) -> tuple[float, int]:
    """Adaptive Simpson quadrature; returns ``(integral, evaluations)``.

    Each interval splits until its Richardson estimate
    ``|S_left + S_right - S_whole| / 15`` is within its share of ``tol``;
    the accepted value includes the Richardson correction, giving an
    O(h^6)-accurate composite result.
    """
    if not (np.isfinite(a) and np.isfinite(b)) or b <= a:
        raise NumericsError(f"bad interval [{a}, {b}]")
    if tol <= 0:
        raise NumericsError("tol must be positive")

    evals = 0

    def ev(x: float) -> float:
        nonlocal evals
        evals += 1
        try:
            y = float(f(x))
        except (ZeroDivisionError, OverflowError, ValueError) as exc:
            raise NumericsError(f"integrand non-finite at x={x}: {exc}") from None
        if not np.isfinite(y):
            raise NumericsError(f"integrand non-finite at x={x}")
        return y

    fa, fb = ev(a), ev(b)
    m = (a + b) / 2.0
    fm = ev(m)
    whole = _simpson(fa, fm, fb, b - a)
    # stack entries: (a, fa, m, fm, b, fb, S(a,b), tol_share)
    stack = [(a, fa, m, fm, b, fb, whole, tol)]
    total = 0.0
    processed = 0
    while stack:
        processed += 1
        if processed > max_intervals:
            raise ConvergenceError("adaptive_simpson", max_intervals)
        x0, f0, xm, fmid, x1, f1, s_whole, share = stack.pop()
        lm = (x0 + xm) / 2.0
        rm = (xm + x1) / 2.0
        flm, frm = ev(lm), ev(rm)
        s_left = _simpson(f0, flm, fmid, xm - x0)
        s_right = _simpson(fmid, frm, f1, x1 - xm)
        err = s_left + s_right - s_whole
        if abs(err) <= 15.0 * share or (x1 - x0) < 1e-14 * (b - a):
            total += s_left + s_right + err / 15.0
        else:
            stack.append((x0, f0, lm, flm, xm, fmid, s_left, share / 2.0))
            stack.append((xm, fmid, rm, frm, x1, f1, s_right, share / 2.0))
    return total, evals
