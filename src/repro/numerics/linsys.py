"""Dense linear-system drivers (the DGESV/DTRSV/DGETRI slice)."""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError, SingularMatrixError
from .lu import lu_det, lu_factor, lu_solve

__all__ = ["solve", "solve_triangular", "inverse", "determinant"]


def solve(a, b) -> np.ndarray:
    """Solve the dense system ``A @ x = b`` by LU with partial pivoting.

    Equivalent of LAPACK's DGESV: factor once, then forward/back
    substitute.  ``b`` may be a vector or a multi-column matrix.

    Flops: ``2/3*n^3 + 2*n^2*nrhs``.
    """
    lu, piv = lu_factor(a)
    return lu_solve(lu, piv, b)


def solve_triangular(a, b, *, lower: bool = False, unit_diagonal: bool = False):
    """Solve ``A @ x = b`` for triangular ``A`` by substitution.

    Flops: ``n^2`` per right-hand side.
    """
    av = np.asarray(a, dtype=np.float64)
    if av.ndim != 2 or av.shape[0] != av.shape[1]:
        raise NumericsError(f"expected square matrix, got {av.shape}")
    n = av.shape[0]
    bv = np.array(b, dtype=np.float64, copy=True)
    squeeze = bv.ndim == 1
    if squeeze:
        bv = bv[:, None]
    if bv.shape[0] != n:
        raise NumericsError(f"rhs has {bv.shape[0]} rows, matrix is {n}x{n}")
    indices = range(n) if lower else range(n - 1, -1, -1)
    for i in indices:
        if lower:
            bv[i] -= av[i, :i] @ bv[:i]
        else:
            bv[i] -= av[i, i + 1 :] @ bv[i + 1 :]
        if not unit_diagonal:
            if av[i, i] == 0.0:
                raise SingularMatrixError(f"zero diagonal at {i}")
            bv[i] /= av[i, i]
    return bv[:, 0] if squeeze else bv


def inverse(a) -> np.ndarray:
    """Matrix inverse via LU and ``n`` unit right-hand sides (DGETRI).

    Flops: ``2*n^3``.
    """
    av = np.asarray(a, dtype=np.float64)
    if av.ndim != 2 or av.shape[0] != av.shape[1]:
        raise NumericsError(f"expected square matrix, got {av.shape}")
    lu, piv = lu_factor(av)
    return lu_solve(lu, piv, np.eye(av.shape[0]))


def determinant(a) -> float:
    """Determinant via LU (sign-tracked log-magnitude product)."""
    try:
        lu, piv = lu_factor(a)
    except SingularMatrixError:
        return 0.0
    return lu_det(lu, piv)
