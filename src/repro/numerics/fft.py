"""Iterative radix-2 FFT and convolution.

Decimation-in-time with an explicit bit-reversal permutation and
vectorized butterfly stages: stage ``s`` performs all its butterflies as
NumPy slice arithmetic, so the Python-level loop is only ``log2(n)``
deep.  Flops: ``5*n*log2(n)`` (the classic radix-2 count).
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError

__all__ = ["fft", "ifft", "rfft_convolve"]


def _bit_reverse(n: int) -> np.ndarray:
    """Indices such that x[_bit_reverse(n)] is in bit-reversed order."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.uint64)
    out = np.zeros(n, dtype=np.uint64)
    for _ in range(bits):
        out = (out << np.uint64(1)) | (idx & np.uint64(1))
        idx >>= np.uint64(1)
    return out.astype(np.intp)


def fft(x) -> np.ndarray:
    """Forward FFT of a power-of-two-length sequence."""
    arr = np.asarray(x, dtype=np.complex128).copy()
    if arr.ndim != 1:
        raise NumericsError(f"fft expects a vector, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0 or (n & (n - 1)) != 0:
        raise NumericsError(f"fft length must be a power of two, got {n}")
    if n == 1:
        return arr
    arr = arr[_bit_reverse(n)]
    half = 1
    while half < n:
        step = half * 2
        # twiddles for this stage, reused across all blocks
        tw = np.exp(-2j * np.pi * np.arange(half) / step)
        blocks = arr.reshape(n // step, step)
        # copy the even half: writing it back below would otherwise alias
        # the view used to compute the odd half
        even = blocks[:, :half].copy()
        odd = blocks[:, half:] * tw
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        half = step
    return arr


def ifft(x) -> np.ndarray:
    """Inverse FFT (unitary pairing with :func:`fft`: ifft(fft(x)) == x)."""
    arr = np.asarray(x, dtype=np.complex128)
    if arr.ndim != 1:
        raise NumericsError(f"ifft expects a vector, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0 or (n & (n - 1)) != 0:
        raise NumericsError(f"ifft length must be a power of two, got {n}")
    return np.conj(fft(np.conj(arr))) / n


def rfft_convolve(a, b) -> np.ndarray:
    """Linear convolution of two real sequences via zero-padded FFTs.

    Output length is ``len(a) + len(b) - 1``; inputs need not be
    power-of-two sized (padding handles it).
    """
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if av.ndim != 1 or bv.ndim != 1:
        raise NumericsError("rfft_convolve expects two vectors")
    if av.size == 0 or bv.size == 0:
        raise NumericsError("rfft_convolve of empty input")
    out_len = av.size + bv.size - 1
    n = 1
    while n < out_len:
        n *= 2
    fa = fft(np.concatenate([av, np.zeros(n - av.size)]))
    fb = fft(np.concatenate([bv, np.zeros(n - bv.size)]))
    full = ifft(fa * fb).real
    return full[:out_len]
