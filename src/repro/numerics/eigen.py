"""Eigensolvers: power iteration, symmetric Jacobi, shifted-QR values.

Three routines matching the eigensolver problems the servers advertise:

* :func:`power_iteration` — dominant eigenpair, the cheap workhorse.
* :func:`eig_symmetric` — full symmetric spectrum by cyclic Jacobi
  rotations (unconditionally convergent, vectorized row/column updates).
* :func:`eigvals_general` — general real spectra via Hessenberg
  reduction and the shifted QR iteration (values only).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["power_iteration", "eig_symmetric", "eigvals_general"]


def _square(a, symmetric: bool = False) -> np.ndarray:
    arr = np.array(a, dtype=np.float64, copy=True)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise NumericsError(f"expected square matrix, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise NumericsError("empty matrix")
    if not np.all(np.isfinite(arr)):
        raise NumericsError("matrix contains non-finite entries")
    if symmetric and not np.allclose(arr, arr.T, atol=1e-10):
        raise NumericsError("matrix is not symmetric")
    return arr


def power_iteration(
    a,
    *,
    tol: float = 1e-10,
    max_iter: int = 5000,
    x0=None,
) -> tuple[float, np.ndarray]:
    """Dominant eigenvalue and unit eigenvector of ``A``.

    Converges linearly at rate |lambda_2/lambda_1|; raises
    :class:`ConvergenceError` past ``max_iter``.
    Flops: about ``2*n^2`` per iteration.
    """
    arr = _square(a)
    n = arr.shape[0]
    if x0 is None:
        x = np.ones(n) / np.sqrt(n)
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        norm = np.linalg.norm(x)
        if x.shape != (n,) or norm == 0:
            raise NumericsError("bad starting vector")
        x /= norm
    lam = 0.0
    for it in range(max_iter):
        y = arr @ x
        norm = np.linalg.norm(y)
        if norm == 0.0:
            return 0.0, x  # x is in the null space: eigenvalue 0
        y /= norm
        new_lam = float(y @ (arr @ y))
        if abs(new_lam - lam) <= tol * max(1.0, abs(new_lam)):
            return new_lam, y
        lam, x = new_lam, y
    raise ConvergenceError("power_iteration", max_iter, abs(new_lam - lam))


def eig_symmetric(
    a, *, tol: float = 1e-12, max_sweeps: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """All eigenvalues/eigenvectors of a symmetric matrix (cyclic Jacobi).

    Returns ``(w, V)`` with eigenvalues ascending and ``A @ V = V @ diag(w)``.
    Flops: about ``6*n^3`` per sweep; typically < 10 sweeps.
    """
    arr = _square(a, symmetric=True)
    n = arr.shape[0]
    v = np.eye(n)
    if n == 1:
        return arr[0, :1].copy(), v
    scale = float(np.linalg.norm(arr, "fro")) or 1.0
    for _sweep in range(max_sweeps):
        off = np.sqrt(np.sum(np.tril(arr, -1) ** 2) * 2.0)
        if off <= tol * scale:
            w = np.diagonal(arr).copy()
            order = np.argsort(w)
            return w[order], v[:, order]
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = arr[p, q]
                if abs(apq) <= 1e-300:
                    continue
                # symmetric Schur rotation
                theta = (arr[q, q] - arr[p, p]) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.sqrt(theta * theta + 1.0))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c
                # vectorized two-sided rotation on rows/cols p,q
                rp = arr[p, :].copy()
                rq = arr[q, :].copy()
                arr[p, :] = c * rp - s * rq
                arr[q, :] = s * rp + c * rq
                cp = arr[:, p].copy()
                cq = arr[:, q].copy()
                arr[:, p] = c * cp - s * cq
                arr[:, q] = s * cp + c * cq
                vp = v[:, p].copy()
                vq = v[:, q].copy()
                v[:, p] = c * vp - s * vq
                v[:, q] = s * vp + c * vq
    raise ConvergenceError("eig_symmetric", max_sweeps)


def _hessenberg(arr: np.ndarray) -> np.ndarray:
    """Reduce to upper Hessenberg form by Householder similarity."""
    n = arr.shape[0]
    for k in range(n - 2):
        x = arr[k + 1 :, k].copy()
        sigma = float(x[1:] @ x[1:])
        if sigma == 0.0:
            continue
        alpha = x[0]
        mu = np.sqrt(alpha * alpha + sigma)
        v0 = alpha - mu if alpha <= 0 else -sigma / (alpha + mu)
        v = x / v0
        v[0] = 1.0
        beta = 2.0 * v0 * v0 / (sigma + v0 * v0)
        # A <- (I - beta v v^T) A (I - beta v v^T), restricted blocks
        w = beta * (v @ arr[k + 1 :, k:])
        arr[k + 1 :, k:] -= np.outer(v, w)
        w = beta * (arr[:, k + 1 :] @ v)
        arr[:, k + 1 :] -= np.outer(w, v)
    return arr


def eigvals_general(
    a, *, tol: float = 1e-12, max_iter: int = 10000
) -> np.ndarray:
    """All eigenvalues of a general real matrix (may be complex).

    Hessenberg reduction followed by the Wilkinson-shifted QR iteration
    with deflation; 2x2 trailing blocks are resolved by their
    characteristic quadratic so complex pairs are exact.
    Flops: about ``10*n^3`` overall.
    """
    arr = _square(a)
    n = arr.shape[0]
    h = _hessenberg(arr)
    eigs: list[complex] = []
    hi = n
    iterations = 0
    while hi > 0:
        if hi == 1:
            eigs.append(complex(h[0, 0]))
            break
        # find the active block [lo, hi)
        lo = hi - 1
        while lo > 0 and abs(h[lo, lo - 1]) > tol * (
            abs(h[lo, lo]) + abs(h[lo - 1, lo - 1])
        ):
            lo -= 1
        if lo == hi - 1:
            eigs.append(complex(h[hi - 1, hi - 1]))
            hi -= 1
            continue
        if lo == hi - 2:
            # 2x2 block: solve the characteristic quadratic exactly
            a11, a12 = h[hi - 2, hi - 2], h[hi - 2, hi - 1]
            a21, a22 = h[hi - 1, hi - 2], h[hi - 1, hi - 1]
            tr = a11 + a22
            det = a11 * a22 - a12 * a21
            disc = tr * tr / 4.0 - det
            if disc >= 0:
                root = np.sqrt(disc)
                eigs.extend([complex(tr / 2.0 + root), complex(tr / 2.0 - root)])
            else:
                root = np.sqrt(-disc)
                eigs.extend([complex(tr / 2.0, root), complex(tr / 2.0, -root)])
            hi -= 2
            continue
        # Wilkinson shift from the trailing 2x2 of the active block
        a11, a12 = h[hi - 2, hi - 2], h[hi - 2, hi - 1]
        a21, a22 = h[hi - 1, hi - 2], h[hi - 1, hi - 1]
        tr = a11 + a22
        det = a11 * a22 - a12 * a21
        disc = tr * tr / 4.0 - det
        if disc >= 0:
            r = np.sqrt(disc)
            mu = tr / 2.0 + (r if abs(tr / 2.0 + r - a22) < abs(tr / 2.0 - r - a22) else -r)
        else:
            mu = a22  # complex pair pending; a real shift still converges
        block = h[lo:hi, lo:hi]
        q, r = np.linalg.qr(block - mu * np.eye(hi - lo))
        h[lo:hi, lo:hi] = r @ q + mu * np.eye(hi - lo)
        iterations += 1
        if iterations > max_iter:
            raise ConvergenceError("eigvals_general", max_iter)
    out = np.array(eigs, dtype=np.complex128)
    return out[np.lexsort((out.imag, out.real))]
