"""Data fitting (the FitPack-lite slice).

* :func:`polyfit_ls` — degree-d polynomial least squares via the QR
  solver on a Vandermonde system (never the normal equations).
* :func:`linear_spline` — piecewise-linear interpolation evaluated at
  query points, vectorized with ``searchsorted``.
* :func:`cubic_smooth` — natural cubic smoothing spline on a uniform
  grid: solves the classic ``(I + lambda*D^T D)`` ridge system where
  ``D`` is the second-difference operator.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError
from .linsys import solve
from .qr import qr_solve_ls

__all__ = ["polyfit_ls", "linear_spline", "cubic_smooth"]


def _xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    xv = np.asarray(x, dtype=np.float64)
    yv = np.asarray(y, dtype=np.float64)
    if xv.ndim != 1 or yv.ndim != 1:
        raise NumericsError("x and y must be vectors")
    if xv.shape != yv.shape:
        raise NumericsError(f"x/y length mismatch: {xv.shape} vs {yv.shape}")
    if xv.size == 0:
        raise NumericsError("empty data")
    if not (np.all(np.isfinite(xv)) and np.all(np.isfinite(yv))):
        raise NumericsError("data contains non-finite values")
    return xv, yv


def polyfit_ls(x, y, degree: int) -> np.ndarray:
    """Least-squares polynomial coefficients, lowest order first.

    Flops: ``2*n*(d+1)^2`` dominated by the QR factorization.
    """
    xv, yv = _xy(x, y)
    if degree < 0:
        raise NumericsError("degree must be >= 0")
    if xv.size < degree + 1:
        raise NumericsError(
            f"need at least {degree + 1} points for degree {degree}"
        )
    # scale x into [-1, 1] for conditioning, then unscale the coefficients
    lo, hi = float(xv.min()), float(xv.max())
    if hi > lo:
        mid, half = (hi + lo) / 2.0, (hi - lo) / 2.0
    else:
        mid, half = lo, 1.0
    t = (xv - mid) / half
    v = np.vander(t, degree + 1, increasing=True)
    c_scaled = qr_solve_ls(v, yv)
    # expand p(t) = sum c_k ((x-mid)/half)^k back to powers of x
    coeffs = np.zeros(degree + 1)
    binom = np.zeros((degree + 1, degree + 1))
    binom[0, 0] = 1.0
    for i in range(1, degree + 1):
        binom[i, 0] = 1.0
        binom[i, 1 : i + 1] = binom[i - 1, :i] + binom[i - 1, 1 : i + 1]
    for k in range(degree + 1):
        scale = c_scaled[k] / half**k
        for j in range(k + 1):
            coeffs[j] += scale * binom[k, j] * (-mid) ** (k - j)
    return coeffs


def linear_spline(x, y, xq) -> np.ndarray:
    """Piecewise-linear interpolation of ``(x, y)`` at ``xq``.

    Knots must be strictly increasing; queries outside the knot range
    are clamped to the boundary values (FitPack's default behaviour for
    ``ext=3``).
    """
    xv, yv = _xy(x, y)
    if xv.size < 2:
        raise NumericsError("need at least two knots")
    if np.any(np.diff(xv) <= 0):
        raise NumericsError("knots must be strictly increasing")
    q = np.asarray(xq, dtype=np.float64)
    if q.ndim != 1:
        raise NumericsError("query points must be a vector")
    qc = np.clip(q, xv[0], xv[-1])
    idx = np.clip(np.searchsorted(xv, qc, side="right") - 1, 0, xv.size - 2)
    x0, x1 = xv[idx], xv[idx + 1]
    w = (qc - x0) / (x1 - x0)
    return (1.0 - w) * yv[idx] + w * yv[idx + 1]


def cubic_smooth(y, lam: float) -> np.ndarray:
    """Smooth uniformly sampled data with a second-difference penalty.

    Solves ``(I + lam * D2^T D2) s = y`` where ``D2`` is the interior
    second-difference matrix — the discrete natural smoothing spline.
    ``lam = 0`` returns the data; large ``lam`` tends to the best-fit line.

    Flops: ``2/3*n^3`` through the dense solver (the banded structure is
    an acknowledged optimization opportunity; the problem description
    advertises the dense cost so prediction matches execution).
    """
    yv = np.asarray(y, dtype=np.float64)
    if yv.ndim != 1 or yv.size < 3:
        raise NumericsError("need a vector of at least 3 samples")
    if lam < 0:
        raise NumericsError("lam must be >= 0")
    n = yv.size
    if lam == 0.0:
        return yv.copy()
    d2 = np.zeros((n - 2, n))
    idx = np.arange(n - 2)
    d2[idx, idx] = 1.0
    d2[idx, idx + 1] = -2.0
    d2[idx, idx + 2] = 1.0
    a = np.eye(n) + lam * (d2.T @ d2)
    return solve(a, yv)
