"""Tridiagonal systems (the DGTSV slice): the Thomas algorithm.

Tridiagonal solves are the classic O(n) kernel of implicit 1-D PDE
timestepping — precisely the "small problem, fast answer" end of the
NetSolve catalogue where brokering overhead matters most (see the F4
crossover experiment).

``thomas_solve`` uses plain elimination without pivoting and therefore
requires diagonal dominance (or positive definiteness) for stability —
checked up front; ``tridiag_solve_pivoting`` falls back to the dense
partially-pivoted path for general matrices.

Flops: ``8*n`` for the Thomas algorithm.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError
from .lu import lu_factor, lu_solve

__all__ = ["thomas_solve", "tridiag_solve_pivoting", "tridiag_matvec"]


def _check_bands(lower, diag, upper, rhs):
    d = np.asarray(diag, dtype=np.float64)
    if d.ndim != 1 or d.size == 0:
        raise NumericsError("diag must be a non-empty vector")
    n = d.size
    dl = np.asarray(lower, dtype=np.float64)
    du = np.asarray(upper, dtype=np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if dl.shape != (max(n - 1, 0),):
        raise NumericsError(f"lower band must have length n-1={n - 1}")
    if du.shape != (max(n - 1, 0),):
        raise NumericsError(f"upper band must have length n-1={n - 1}")
    if b.shape != (n,):
        raise NumericsError(f"rhs must have length n={n}")
    for name, arr in (("lower", dl), ("diag", d), ("upper", du), ("rhs", b)):
        if not np.all(np.isfinite(arr)):
            raise NumericsError(f"{name} contains non-finite entries")
    return dl, d, du, b


def _diagonally_dominant(dl, d, du) -> bool:
    n = d.size
    off = np.zeros(n)
    if n > 1:
        off[0] = abs(du[0])
        off[-1] = abs(dl[-1])
        off[1:-1] = np.abs(dl[:-1]) + np.abs(du[1:])
    return bool(np.all(np.abs(d) >= off) and np.all(d != 0.0))


def thomas_solve(lower, diag, upper, rhs) -> np.ndarray:
    """Solve a tridiagonal system by the Thomas algorithm.

    Bands: ``lower`` is the subdiagonal (length n-1), ``diag`` the main
    diagonal (n), ``upper`` the superdiagonal (n-1).  Requires diagonal
    dominance (no pivoting); rejects other inputs rather than silently
    amplifying error.
    """
    dl, d, du, b = _check_bands(lower, diag, upper, rhs)
    if not _diagonally_dominant(dl, d, du):
        raise NumericsError(
            "thomas_solve requires diagonal dominance; use "
            "tridiag_solve_pivoting for general systems"
        )
    n = d.size
    c = np.empty(n)  # modified diagonal
    x = b.copy()
    c[0] = d[0]
    for i in range(1, n):
        m = dl[i - 1] / c[i - 1]
        c[i] = d[i] - m * du[i - 1]
        x[i] -= m * x[i - 1]
    x[-1] /= c[-1]
    for i in range(n - 2, -1, -1):
        x[i] = (x[i] - du[i] * x[i + 1]) / c[i]
    return x


def tridiag_solve_pivoting(lower, diag, upper, rhs) -> np.ndarray:
    """General tridiagonal solve via the dense pivoted path.

    O(n^2) memory through the dense fallback — correct for any
    nonsingular system; prefer :func:`thomas_solve` when dominance holds.
    """
    dl, d, du, b = _check_bands(lower, diag, upper, rhs)
    n = d.size
    dense = np.diag(d)
    if n > 1:
        dense += np.diag(dl, -1) + np.diag(du, 1)
    lu, piv = lu_factor(dense)
    return lu_solve(lu, piv, b)


def tridiag_matvec(lower, diag, upper, x) -> np.ndarray:
    """``A @ x`` for a banded tridiagonal ``A`` without materializing it."""
    dl, d, du, xv = _check_bands(lower, diag, upper, x)
    out = d * xv
    if d.size > 1:
        out[:-1] += du * xv[1:]
        out[1:] += dl * xv[:-1]
    return out
