"""Iterative solvers for linear systems (the ItPack slice).

* :func:`jacobi` — stationary iteration, converges for strictly
  diagonally dominant systems; ``2*n^2`` flops per sweep.
* :func:`conjugate_gradient` — symmetric positive definite systems;
  one matvec (+ O(n)) per iteration.
* :func:`gmres` — restarted GMRES(m) for general systems via Arnoldi
  with modified Gram-Schmidt and Givens-rotation least squares.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["jacobi", "conjugate_gradient", "gmres"]


def _system(a, b) -> tuple[np.ndarray, np.ndarray]:
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if av.ndim != 2 or av.shape[0] != av.shape[1]:
        raise NumericsError(f"expected square matrix, got {av.shape}")
    if bv.ndim != 1 or bv.shape[0] != av.shape[0]:
        raise NumericsError(
            f"rhs shape {bv.shape} incompatible with matrix {av.shape}"
        )
    return av, bv


def jacobi(
    a, b, *, tol: float = 1e-10, max_iter: int = 10000, x0=None
) -> tuple[np.ndarray, int]:
    """Jacobi iteration; returns ``(x, iterations)``.

    Requires a non-zero diagonal; convergence is guaranteed for strictly
    diagonally dominant ``A`` and checked by relative residual.
    """
    av, bv = _system(a, b)
    d = np.diagonal(av).copy()
    if np.any(d == 0.0):
        raise NumericsError("jacobi requires a non-zero diagonal")
    r = av - np.diag(d)
    x = np.zeros_like(bv) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = float(np.linalg.norm(bv)) or 1.0
    for it in range(1, max_iter + 1):
        x = (bv - r @ x) / d
        res = float(np.linalg.norm(bv - av @ x))
        if res <= tol * bnorm:
            return x, it
    raise ConvergenceError("jacobi", max_iter, res)


def conjugate_gradient(
    a, b, *, tol: float = 1e-10, max_iter: int | None = None, x0=None
) -> tuple[np.ndarray, int]:
    """Conjugate gradients for SPD ``A``; returns ``(x, iterations)``.

    In exact arithmetic converges in at most ``n`` steps; the default
    iteration budget is ``10*n`` to absorb rounding.
    """
    av, bv = _system(a, b)
    n = av.shape[0]
    budget = max_iter if max_iter is not None else 10 * n
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = bv - av @ x
    p = r.copy()
    rs = float(r @ r)
    bnorm = float(np.linalg.norm(bv)) or 1.0
    if np.sqrt(rs) <= tol * bnorm:
        return x, 0
    for it in range(1, budget + 1):
        ap = av @ p
        denom = float(p @ ap)
        if denom <= 0.0:
            raise NumericsError(
                "conjugate_gradient: matrix is not positive definite"
            )
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) <= tol * bnorm:
            return x, it
        p = r + (rs_new / rs) * p
        rs = rs_new
    raise ConvergenceError("conjugate_gradient", budget, np.sqrt(rs))


def gmres(
    a,
    b,
    *,
    restart: int = 30,
    tol: float = 1e-10,
    max_outer: int = 100,
    x0=None,
) -> tuple[np.ndarray, int]:
    """Restarted GMRES(restart); returns ``(x, total_inner_iterations)``.

    Arnoldi with modified Gram-Schmidt; the small least-squares problem
    is solved incrementally with Givens rotations so the residual norm
    is available every step without forming ``x``.
    """
    av, bv = _system(a, b)
    n = av.shape[0]
    if restart <= 0:
        raise NumericsError("restart must be positive")
    m = min(restart, n)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    bnorm = float(np.linalg.norm(bv)) or 1.0
    total = 0
    for _outer in range(max_outer):
        r = bv - av @ x
        beta = float(np.linalg.norm(r))
        if beta <= tol * bnorm:
            return x, total
        v = np.zeros((m + 1, n))
        h = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        g[0] = beta
        v[0] = r / beta
        k_used = 0
        for k in range(m):
            total += 1
            w = av @ v[k]
            # modified Gram-Schmidt
            for i in range(k + 1):
                h[i, k] = float(w @ v[i])
                w -= h[i, k] * v[i]
            h[k + 1, k] = float(np.linalg.norm(w))
            if h[k + 1, k] > 1e-14:
                v[k + 1] = w / h[k + 1, k]
            # apply existing rotations to the new column
            for i in range(k):
                t = cs[i] * h[i, k] + sn[i] * h[i + 1, k]
                h[i + 1, k] = -sn[i] * h[i, k] + cs[i] * h[i + 1, k]
                h[i, k] = t
            # new rotation to zero h[k+1, k]
            denom = np.hypot(h[k, k], h[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = h[k, k] / denom, h[k + 1, k] / denom
            h[k, k] = cs[k] * h[k, k] + sn[k] * h[k + 1, k]
            h[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_used = k + 1
            if abs(g[k + 1]) <= tol * bnorm:
                break
        # solve the k_used x k_used triangular system
        y = np.zeros(k_used)
        for i in range(k_used - 1, -1, -1):
            y[i] = (g[i] - h[i, i + 1 : k_used] @ y[i + 1 : k_used]) / h[i, i]
        x = x + v[:k_used].T @ y
        if abs(g[k_used]) <= tol * bnorm:
            return x, total
    raise ConvergenceError("gmres", total, abs(g[k_used]))
