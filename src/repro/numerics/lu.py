"""LU factorization with partial pivoting (the DGETRF/DGETRS slice).

Right-looking blocked algorithm: factor a column panel with vectorized
rank-1 updates, apply its pivots to the trailing matrix, solve the
U-panel by forward substitution, then one ``gemm``-shaped update of the
trailing submatrix.  The panel width trades rank-1 overhead against
update locality; 64 is a good default for float64 on current caches.

Flop count: ``2/3*n^3`` to factor, ``2*n^2`` per right-hand side.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError, SingularMatrixError

__all__ = ["lu_factor", "lu_solve", "lu_det"]

_PANEL = 64


def _check_square(a) -> np.ndarray:
    arr = np.array(a, dtype=np.float64, order="C", copy=True)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise NumericsError(f"expected a square matrix, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise NumericsError("empty matrix")
    if not np.all(np.isfinite(arr)):
        raise NumericsError("matrix contains non-finite entries")
    return arr


def _factor_panel(a: np.ndarray, col0: int, col1: int, piv: np.ndarray) -> None:
    """Unblocked factorization of columns [col0, col1) of ``a`` in place.

    Operates on full rows (so row swaps fix up the already-factored L
    part too) but only eliminates within the panel columns.
    """
    n = a.shape[0]
    for j in range(col0, min(col1, n)):
        # pivot search over the active column
        p = j + int(np.argmax(np.abs(a[j:, j])))
        if a[p, j] == 0.0:
            raise SingularMatrixError(
                f"zero pivot at column {j}; matrix is singular"
            )
        piv[j] = p
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        if j + 1 < n:
            # multipliers, then rank-1 update restricted to the panel
            a[j + 1 :, j] /= a[j, j]
            upto = min(col1, n)
            if j + 1 < upto:
                a[j + 1 :, j + 1 : upto] -= np.outer(
                    a[j + 1 :, j], a[j, j + 1 : upto]
                )


def lu_factor(a, *, panel: int = _PANEL) -> tuple[np.ndarray, np.ndarray]:
    """Factor ``P @ A = L @ U``; returns ``(lu, piv)`` in LAPACK layout.

    ``lu`` packs unit-lower L below the diagonal and U on/above it;
    ``piv[k] = p`` records that row ``k`` was swapped with row ``p`` at
    step ``k`` (LAPACK IPIV, 0-based).
    """
    if panel <= 0:
        raise NumericsError("panel must be positive")
    a = _check_square(a)
    n = a.shape[0]
    piv = np.arange(n)
    for k0 in range(0, n, panel):
        k1 = min(k0 + panel, n)
        _factor_panel(a, k0, k1, piv)
        if k1 < n:
            # solve L11 @ U12 = A12 (unit lower triangular, forward subst.)
            l11 = a[k0:k1, k0:k1]
            u12 = a[k0:k1, k1:]
            for i in range(1, k1 - k0):
                u12[i] -= l11[i, :i] @ u12[:i]
            # trailing update A22 -= L21 @ U12
            a[k1:, k1:] -= a[k1:, k0:k1] @ u12
    return a, piv


def _apply_pivots(b: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the recorded row interchanges to ``b`` (forward order)."""
    for k, p in enumerate(piv):
        if p != k:
            b[[k, p]] = b[[p, k]]
    return b


def lu_solve(lu: np.ndarray, piv: np.ndarray, b) -> np.ndarray:
    """Solve ``A @ x = b`` given :func:`lu_factor` output.

    ``b`` may be a vector or a matrix of right-hand sides (columns).
    """
    n = lu.shape[0]
    bv = np.array(b, dtype=np.float64, copy=True)
    squeeze = bv.ndim == 1
    if squeeze:
        bv = bv[:, None]
    if bv.shape[0] != n:
        raise NumericsError(
            f"rhs has {bv.shape[0]} rows, matrix is {n}x{n}"
        )
    _apply_pivots(bv, piv)
    # forward substitution with unit-lower L
    for i in range(1, n):
        bv[i] -= lu[i, :i] @ bv[:i]
    # back substitution with U
    for i in range(n - 1, -1, -1):
        if lu[i, i] == 0.0:
            raise SingularMatrixError(f"zero diagonal in U at {i}")
        bv[i] -= lu[i, i + 1 :] @ bv[i + 1 :]
        bv[i] /= lu[i, i]
    return bv[:, 0] if squeeze else bv


def lu_det(lu: np.ndarray, piv: np.ndarray) -> float:
    """Determinant from a factorization: product of U's diagonal, signed
    by the parity of the row interchanges."""
    n = lu.shape[0]
    swaps = int(np.sum(piv != np.arange(n)))
    sign = -1.0 if swaps % 2 else 1.0
    # multiply via logs to dodge overflow, tracking signs explicitly
    diag = np.diagonal(lu)
    if np.any(diag == 0.0):
        return 0.0
    sign *= -1.0 if int(np.sum(diag < 0)) % 2 else 1.0
    log_mag = float(np.sum(np.log(np.abs(diag))))
    with np.errstate(over="ignore"):  # inf with the right sign is the answer
        return sign * float(np.exp(log_mag))
