"""Householder QR factorization and least squares (DGEQRF/DGELS slice).

Column-by-column Householder reflections with vectorized trailing
updates: each step is one matrix-vector product and one rank-1 update,
so no Python-level inner loops touch matrix elements.

Flops: ``2*m*n^2 - 2/3*n^3`` for the factorization (m >= n).
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError, SingularMatrixError

__all__ = ["qr_factor", "qr_solve_ls"]


def _check(a) -> np.ndarray:
    arr = np.array(a, dtype=np.float64, order="C", copy=True)
    if arr.ndim != 2:
        raise NumericsError(f"expected a matrix, got shape {arr.shape}")
    m, n = arr.shape
    if m == 0 or n == 0:
        raise NumericsError("empty matrix")
    if m < n:
        raise NumericsError(f"QR requires m >= n, got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise NumericsError("matrix contains non-finite entries")
    return arr


def _householder(x: np.ndarray) -> tuple[np.ndarray, float]:
    """Householder vector/beta zeroing x[1:]; v[0] normalized to 1."""
    alpha = x[0]
    sigma = float(x[1:] @ x[1:])
    v = x.copy()
    v[0] = 1.0
    if sigma == 0.0:
        return v, 0.0
    mu = np.sqrt(alpha * alpha + sigma)
    v0 = alpha - mu if alpha <= 0 else -sigma / (alpha + mu)
    beta = 2.0 * v0 * v0 / (sigma + v0 * v0)
    v[1:] = x[1:] / v0
    return v, beta


def qr_factor(a) -> tuple[np.ndarray, np.ndarray]:
    """Factor ``A = Q @ R`` with reduced ``Q`` (m x n) and ``R`` (n x n)."""
    arr = _check(a)
    m, n = arr.shape
    betas = np.empty(n)
    vs: list[np.ndarray] = []
    for j in range(n):
        v, beta = _householder(arr[j:, j].copy())
        betas[j] = beta
        vs.append(v)
        if beta != 0.0:
            # trailing update: A[j:, j:] -= beta * v (v^T A[j:, j:])
            w = beta * (v @ arr[j:, j:])
            arr[j:, j:] -= np.outer(v, w)
    r = np.triu(arr[:n, :n]).copy()
    # accumulate reduced Q by applying reflections to I (backwards)
    q = np.zeros((m, n))
    q[:n, :n] = np.eye(n)
    for j in range(n - 1, -1, -1):
        v, beta = vs[j], betas[j]
        if beta != 0.0:
            w = beta * (v @ q[j:, :])
            q[j:, :] -= np.outer(v, w)
    return q, r


def qr_solve_ls(a, b) -> np.ndarray:
    """Least-squares solution ``argmin ||A x - b||_2`` via QR.

    Flops: ``2*m*n^2`` dominated by the factorization.
    """
    arr = _check(a)
    bv = np.asarray(b, dtype=np.float64)
    squeeze = bv.ndim == 1
    if squeeze:
        bv = bv[:, None]
    if bv.shape[0] != arr.shape[0]:
        raise NumericsError(
            f"rhs has {bv.shape[0]} rows, matrix has {arr.shape[0]}"
        )
    q, r = qr_factor(arr)
    n = r.shape[0]
    rhs = q.T @ bv
    x = np.empty((n, bv.shape[1]))
    for i in range(n - 1, -1, -1):
        if r[i, i] == 0.0:
            raise SingularMatrixError("rank-deficient least-squares system")
        x[i] = (rhs[i] - r[i, i + 1 :] @ x[i + 1 :]) / r[i, i]
    return x[:, 0] if squeeze else x
