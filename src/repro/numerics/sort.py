"""Sorting and selection.

Included because the original server list advertised general-purpose
kernels alongside linear algebra; also exercises int64 objects on the
wire.

* :func:`merge_sort` — bottom-up iterative merge sort over NumPy
  arrays; each pass merges runs with vectorized ``np.minimum`` style
  two-pointer merges per run pair.  O(n log n), stable.
* :func:`quickselect` — k-th smallest by median-of-three quickselect
  with an explicit loop (expected O(n)).
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError

__all__ = ["merge_sort", "quickselect"]


def _vector(x) -> np.ndarray:
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise NumericsError(f"expected a vector, got shape {arr.shape}")
    if arr.dtype.kind not in "if":
        raise NumericsError(f"unsupported dtype {arr.dtype}")
    return arr


def _merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays (stable: ties favour ``a``)."""
    out = np.empty(a.size + b.size, dtype=a.dtype)
    # Positions of b's elements among a's: each b[j] goes after all a[i] <= b[j]
    pos_b = np.searchsorted(a, b, side="right") + np.arange(b.size)
    mask = np.zeros(out.size, dtype=bool)
    mask[pos_b] = True
    out[mask] = b
    out[~mask] = a
    return out


def merge_sort(x) -> np.ndarray:
    """Stable bottom-up merge sort; returns a new sorted array."""
    arr = _vector(x).copy()
    n = arr.size
    if n <= 1:
        return arr
    width = 1
    while width < n:
        next_arr = np.empty_like(arr)
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            if mid < hi:
                next_arr[lo:hi] = _merge(arr[lo:mid], arr[mid:hi])
            else:
                next_arr[lo:hi] = arr[lo:hi]
        arr = next_arr
        width *= 2
    return arr


def quickselect(x, k: int) -> float:
    """The k-th smallest element (0-based) in expected linear time."""
    arr = _vector(x).astype(np.float64, copy=True)
    n = arr.size
    if n == 0:
        raise NumericsError("quickselect of empty vector")
    if not 0 <= k < n:
        raise NumericsError(f"k={k} out of range for length {n}")
    lo, hi = 0, n  # active half-open window
    while True:
        if hi - lo == 1:
            return float(arr[lo])
        seg = arr[lo:hi]
        # median-of-three pivot resists sorted/reversed inputs
        cand = np.array([seg[0], seg[seg.size // 2], seg[-1]])
        pivot = float(np.partition(cand, 1)[1])
        less = seg[seg < pivot]
        equal = seg[seg == pivot]
        greater = seg[seg > pivot]
        idx = k - lo
        if idx < less.size:
            arr[lo : lo + less.size] = less
            hi = lo + less.size
        elif idx < less.size + equal.size:
            return pivot
        else:
            start = hi - greater.size
            arr[start:hi] = greater
            lo = start
