"""Cholesky factorization for symmetric positive definite systems
(the DPOTRF/DPOTRS slice).

Right-looking blocked algorithm mirroring :mod:`repro.numerics.lu`:
factor a diagonal block unblocked, triangular-solve the panel below it,
then one symmetric rank-k update of the trailing matrix.

Flops: ``1/3*n^3`` to factor, ``2*n^2`` per right-hand side.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError
from .linsys import solve_triangular

__all__ = ["cholesky_factor", "cholesky_solve", "is_spd"]

_PANEL = 64


def _check_symmetric(a) -> np.ndarray:
    arr = np.array(a, dtype=np.float64, order="C", copy=True)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise NumericsError(f"expected a square matrix, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise NumericsError("empty matrix")
    if not np.all(np.isfinite(arr)):
        raise NumericsError("matrix contains non-finite entries")
    if not np.allclose(arr, arr.T, atol=1e-10 * max(1.0, np.abs(arr).max())):
        raise NumericsError("matrix is not symmetric")
    return arr


def _factor_block(a: np.ndarray) -> None:
    """Unblocked lower Cholesky of a small block, in place."""
    n = a.shape[0]
    for j in range(n):
        diag = a[j, j] - a[j, :j] @ a[j, :j]
        if diag <= 0.0:
            raise NumericsError(
                "matrix is not positive definite "
                f"(pivot {diag:.3e} at column {j})"
            )
        a[j, j] = np.sqrt(diag)
        if j + 1 < n:
            a[j + 1 :, j] -= a[j + 1 :, :j] @ a[j, :j]
            a[j + 1 :, j] /= a[j, j]


def cholesky_factor(a, *, panel: int = _PANEL) -> np.ndarray:
    """Lower-triangular ``L`` with ``A = L @ L.T`` (SPD input required)."""
    if panel <= 0:
        raise NumericsError("panel must be positive")
    arr = _check_symmetric(a)
    n = arr.shape[0]
    for k0 in range(0, n, panel):
        k1 = min(k0 + panel, n)
        _factor_block(arr[k0:k1, k0:k1])
        if k1 < n:
            # panel solve: A21 <- A21 @ L11^{-T}
            l11 = arr[k0:k1, k0:k1]
            arr[k1:, k0:k1] = solve_triangular(
                l11, arr[k1:, k0:k1].T, lower=True
            ).T
            # trailing symmetric update: A22 -= L21 @ L21.T
            l21 = arr[k1:, k0:k1]
            arr[k1:, k1:] -= l21 @ l21.T
    return np.tril(arr)


def cholesky_solve(l: np.ndarray, b) -> np.ndarray:
    """Solve ``A x = b`` given ``L`` from :func:`cholesky_factor`."""
    y = solve_triangular(l, b, lower=True)
    return solve_triangular(l.T, y, lower=False)


def is_spd(a) -> bool:
    """True iff ``a`` is symmetric positive definite (by factorization)."""
    try:
        cholesky_factor(a)
        return True
    except NumericsError:
        return False
