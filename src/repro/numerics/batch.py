"""Batched kernels: one stacked call over k same-shaped operands.

The server's micro-batching lane coalesces queued same-problem requests
whose operands share a shape, then runs one kernel over the stack.  The
payoff is amortization: the panel LU spends its time in a Python column
loop whose cost is per-*column*, not per-*system*, and the radix-2 FFT's
stage loop is ``log2(n)`` deep regardless of how many sequences ride
through it.  Batching k small problems turns k passes through those
Python loops into one.

The contract that makes batching safe to enable by default is
**bit-identity**: every result produced here must equal the unbatched
kernel's result bit for bit, so a client cannot observe whether its
request was coalesced.  That constraint shapes the implementations:

* stages that are purely elementwise (pivot selection, row swaps,
  multiplier scaling, rank-1 updates, FFT butterflies) vectorize across
  the batch axis freely — identical scalar operations in identical
  order per item;
* stages built on ``@`` (panel substitution, trailing updates, the
  triangular solves) run per-item with the *exact* expressions of the
  unbatched code, because BLAS may reassociate sums differently for
  different operand ranks.

So for small systems (n at or under one panel) the whole factorization
vectorizes, which is where batching matters most; large systems fall
back to mostly per-item work, where per-call overhead was negligible
anyway.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError, SingularMatrixError
from .blas import gemm
from .fft import _bit_reverse
from .lu import _PANEL, lu_solve

__all__ = [
    "lu_factor_batched",
    "solve_batched",
    "fft_batched",
    "matmul_batched",
]


def _stack_square(mats) -> np.ndarray:
    """Validate and stack k same-shaped square matrices into (k, n, n)."""
    if not mats:
        raise NumericsError("empty batch")
    arrs = [np.asarray(m, dtype=np.float64) for m in mats]
    shape = arrs[0].shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise NumericsError(f"expected square matrices, got shape {shape}")
    if shape[0] == 0:
        raise NumericsError("empty matrix")
    for arr in arrs:
        if arr.shape != shape:
            raise NumericsError(
                f"batch shape mismatch: {arr.shape} vs {shape}"
            )
    stacked = np.ascontiguousarray(np.stack(arrs))
    if not np.all(np.isfinite(stacked)):
        raise NumericsError("matrix contains non-finite entries")
    return stacked


def _factor_panel_batched(
    a: np.ndarray, col0: int, col1: int, piv: np.ndarray
) -> None:
    """Vectorized-across-the-batch twin of ``lu._factor_panel``.

    ``a`` is (k, n, n); every arithmetic step is elementwise per item,
    so each item's panel comes out bit-identical to the unbatched
    factorization of that item alone.
    """
    k, n, _ = a.shape
    items = np.arange(k)
    for j in range(col0, min(col1, n)):
        p = j + np.argmax(np.abs(a[:, j:, j]), axis=1)
        pivots = a[items, p, j]
        if np.any(pivots == 0.0):
            raise SingularMatrixError(
                f"zero pivot at column {j}; a batch member is singular"
            )
        piv[:, j] = p
        # unconditional swap: items with p == j rewrite their own row
        row_j = a[items, j, :].copy()
        a[items, j, :] = a[items, p, :]
        a[items, p, :] = row_j
        if j + 1 < n:
            a[:, j + 1 :, j] /= a[:, j, j][:, None]
            upto = min(col1, n)
            if j + 1 < upto:
                # rank-1 update; np.outer is this same broadcast product
                a[:, j + 1 :, j + 1 : upto] -= (
                    a[:, j + 1 :, j, None] * a[:, j, None, j + 1 : upto]
                )


def lu_factor_batched(
    mats, *, panel: int = _PANEL
) -> tuple[np.ndarray, np.ndarray]:
    """Factor k same-shaped systems; returns ``(lus, pivs)`` stacks.

    ``lus[i], pivs[i]`` is bit-identical to ``lu_factor(mats[i])``.
    """
    if panel <= 0:
        raise NumericsError("panel must be positive")
    a = _stack_square(mats)
    k, n, _ = a.shape
    piv = np.tile(np.arange(n), (k, 1))
    for k0 in range(0, n, panel):
        k1 = min(k0 + panel, n)
        _factor_panel_batched(a, k0, k1, piv)
        if k1 < n:
            # substitution and trailing update use @: run the unbatched
            # expressions per item so BLAS sums in the identical order
            for i in range(k):
                ai = a[i]
                l11 = ai[k0:k1, k0:k1]
                u12 = ai[k0:k1, k1:]
                for r in range(1, k1 - k0):
                    u12[r] -= l11[r, :r] @ u12[:r]
                ai[k1:, k1:] -= ai[k1:, k0:k1] @ u12
    return a, piv


def solve_batched(mats, rhss) -> list[np.ndarray]:
    """Solve k same-shaped dense systems ``A_i @ x_i = b_i`` at once.

    The factorizations share one vectorized pass; each substitution runs
    per item, so ``solve_batched(As, bs)[i]`` is bit-identical to
    ``solve(As[i], bs[i])``.
    """
    if len(mats) != len(rhss):
        raise NumericsError(
            f"batch mismatch: {len(mats)} matrices, {len(rhss)} rhs"
        )
    lus, pivs = lu_factor_batched(mats)
    return [lu_solve(lus[i], pivs[i], rhss[i]) for i in range(len(rhss))]


def fft_batched(xs) -> list[np.ndarray]:
    """Forward FFT of k same-length power-of-two sequences.

    One stage loop services the whole stack; every butterfly is
    elementwise, so ``fft_batched(xs)[i]`` is bit-identical to
    ``fft(xs[i])``.
    """
    if not len(xs):
        raise NumericsError("empty batch")
    arrs = [np.asarray(x, dtype=np.complex128) for x in xs]
    n = arrs[0].shape[0] if arrs[0].ndim == 1 else -1
    for arr in arrs:
        if arr.ndim != 1:
            raise NumericsError(
                f"fft expects a vector, got shape {arr.shape}"
            )
        if arr.shape[0] != n:
            raise NumericsError(
                f"batch length mismatch: {arr.shape[0]} vs {n}"
            )
    if n == 0 or (n & (n - 1)) != 0:
        raise NumericsError(f"fft length must be a power of two, got {n}")
    stack = np.stack(arrs)
    if n == 1:
        return list(stack)
    stack = stack[:, _bit_reverse(n)]
    half = 1
    while half < n:
        step = half * 2
        tw = np.exp(-2j * np.pi * np.arange(half) / step)
        blocks = stack.reshape(len(arrs), n // step, step)
        even = blocks[:, :, :half].copy()
        odd = blocks[:, :, half:] * tw
        blocks[:, :, :half] = even + odd
        blocks[:, :, half:] = even - odd
        half = step
    return list(stack)


def matmul_batched(lhss, rhss) -> list[np.ndarray]:
    """Blocked matmul over k operand pairs.

    The product itself is per-item ``gemm`` (bit-identity is free); the
    batch lane's win for dgemm is coalescing server-side dispatch, not
    the arithmetic.
    """
    if len(lhss) != len(rhss):
        raise NumericsError(
            f"batch mismatch: {len(lhss)} lhs, {len(rhss)} rhs"
        )
    if not len(lhss):
        raise NumericsError("empty batch")
    return [gemm(a, b) for a, b in zip(lhss, rhss)]
