"""BLAS-flavoured kernels.

Level 1/2/3 building blocks with BLAS calling conventions (names, alpha/
beta scaling) implemented over NumPy.  ``gemm`` is blocked so large
products stay cache-friendly even when callers pass Fortran-ordered or
strided views; the block size follows the L2-sized panels classical DGEMM
implementations use.

Flop counts (advertised in the problem descriptions):

====== ==========================
axpy   ``2*n``
dot    ``2*n``
nrm2   ``2*n``
gemv   ``2*m*n``
gemm   ``2*m*n*k``
====== ==========================
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericsError

__all__ = ["axpy", "dot", "nrm2", "asum", "iamax", "scal", "gemv", "gemm"]

_GEMM_BLOCK = 256


def _as_vector(x, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise NumericsError(f"{name} must be a vector, got shape {arr.shape}")
    return arr


def _as_matrix(a, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=np.float64)
    if arr.ndim != 2:
        raise NumericsError(f"{name} must be a matrix, got shape {arr.shape}")
    return arr


def axpy(alpha: float, x, y) -> np.ndarray:
    """Return ``alpha*x + y`` (DAXPY)."""
    xv = _as_vector(x, "x")
    yv = _as_vector(y, "y")
    if xv.shape != yv.shape:
        raise NumericsError(f"axpy shape mismatch: {xv.shape} vs {yv.shape}")
    return alpha * xv + yv


def dot(x, y) -> float:
    """Inner product (DDOT)."""
    xv = _as_vector(x, "x")
    yv = _as_vector(y, "y")
    if xv.shape != yv.shape:
        raise NumericsError(f"dot shape mismatch: {xv.shape} vs {yv.shape}")
    return float(xv @ yv)


def nrm2(x) -> float:
    """Euclidean norm (DNRM2), with the classic overflow-safe scaling."""
    xv = _as_vector(x, "x")
    if xv.size == 0:
        return 0.0
    amax = float(np.max(np.abs(xv)))
    if amax == 0.0:
        return 0.0
    scaled = xv / amax
    return amax * float(np.sqrt(scaled @ scaled))


def asum(x) -> float:
    """Sum of absolute values (DASUM)."""
    return float(np.sum(np.abs(_as_vector(x, "x"))))


def iamax(x) -> int:
    """Index of the first element of maximum absolute value (IDAMAX)."""
    xv = _as_vector(x, "x")
    if xv.size == 0:
        raise NumericsError("iamax of empty vector")
    return int(np.argmax(np.abs(xv)))


def scal(alpha: float, x) -> np.ndarray:
    """Return ``alpha*x`` (DSCAL)."""
    return alpha * _as_vector(x, "x")


def gemv(a, x, *, alpha: float = 1.0, beta: float = 0.0, y=None) -> np.ndarray:
    """General matrix-vector product ``alpha*A@x + beta*y`` (DGEMV)."""
    av = _as_matrix(a, "a")
    xv = _as_vector(x, "x")
    if av.shape[1] != xv.shape[0]:
        raise NumericsError(
            f"gemv shape mismatch: A is {av.shape}, x has length {xv.shape[0]}"
        )
    out = alpha * (av @ xv)
    if beta != 0.0:
        if y is None:
            raise NumericsError("gemv: beta != 0 requires y")
        yv = _as_vector(y, "y")
        if yv.shape[0] != av.shape[0]:
            raise NumericsError(
                f"gemv: y has length {yv.shape[0]}, expected {av.shape[0]}"
            )
        out += beta * yv
    return out


def gemm(
    a,
    b,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
    c=None,
    block: int = _GEMM_BLOCK,
) -> np.ndarray:
    """Blocked general matrix-matrix product ``alpha*A@B + beta*C`` (DGEMM).

    The triple loop runs over ``block x block`` panels; each panel product
    is a contiguous ``@`` so NumPy's inner kernel does the flops.  For
    matrices at or under one block this degenerates to a single ``@``.
    """
    if block <= 0:
        raise NumericsError("gemm block must be positive")
    av = _as_matrix(a, "a")
    bv = _as_matrix(b, "b")
    m, k = av.shape
    k2, n = bv.shape
    if k != k2:
        raise NumericsError(f"gemm shape mismatch: {av.shape} @ {bv.shape}")
    out = np.zeros((m, n), dtype=np.float64)
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        a_panel = np.ascontiguousarray(av[i0:i1])
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            acc = out[i0:i1, j0:j1]
            for p0 in range(0, k, block):
                p1 = min(p0 + block, k)
                acc += a_panel[:, p0:p1] @ bv[p0:p1, j0:j1]
    if alpha != 1.0:
        out *= alpha
    if beta != 0.0:
        if c is None:
            raise NumericsError("gemm: beta != 0 requires c")
        cv = _as_matrix(c, "c")
        if cv.shape != (m, n):
            raise NumericsError(
                f"gemm: C has shape {cv.shape}, expected {(m, n)}"
            )
        out += beta * cv
    return out
