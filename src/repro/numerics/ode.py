"""ODE initial-value integrators (the ODEPACK-lite slice).

* :func:`rk4` — classical fixed-step Runge-Kutta 4; the complexity the
  problem description advertises is ``40*d*steps`` (4 stages x ~10 flops
  per component per stage, counting the combination).
* :func:`rkf45` — Runge-Kutta-Fehlberg 4(5) with PI-free step control:
  embedded 4th/5th-order pair, error-scaled step adaptation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["rk4", "rkf45"]

RHS = Callable[[float, np.ndarray], np.ndarray]


def _check_ivp(y0, t0: float, t1: float) -> np.ndarray:
    y = np.asarray(y0, dtype=np.float64).copy()
    if y.ndim != 1 or y.size == 0:
        raise NumericsError(f"y0 must be a non-empty vector, got shape {y.shape}")
    if not np.isfinite(t0) or not np.isfinite(t1):
        raise NumericsError("integration bounds must be finite")
    if t1 <= t0:
        raise NumericsError(f"need t1 > t0, got [{t0}, {t1}]")
    return y


def _eval_rhs(f: RHS, t: float, y: np.ndarray) -> np.ndarray:
    out = np.asarray(f(t, y), dtype=np.float64)
    if out.shape != y.shape:
        raise NumericsError(
            f"rhs returned shape {out.shape}, expected {y.shape}"
        )
    return out


def rk4(f: RHS, y0, t0: float, t1: float, steps: int) -> np.ndarray:
    """Integrate ``y' = f(t, y)`` from ``t0`` to ``t1`` in ``steps`` steps.

    Returns the state at ``t1``.  Global error is O(h^4).
    """
    if steps <= 0:
        raise NumericsError("steps must be positive")
    y = _check_ivp(y0, t0, t1)
    h = (t1 - t0) / steps
    t = t0
    for _ in range(steps):
        k1 = _eval_rhs(f, t, y)
        k2 = _eval_rhs(f, t + h / 2.0, y + (h / 2.0) * k1)
        k3 = _eval_rhs(f, t + h / 2.0, y + (h / 2.0) * k2)
        k4 = _eval_rhs(f, t + h, y + h * k3)
        y += (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        t += h
    return y


# Fehlberg tableau
_A = (
    (),
    (1 / 4,),
    (3 / 32, 9 / 32),
    (1932 / 2197, -7200 / 2197, 7296 / 2197),
    (439 / 216, -8.0, 3680 / 513, -845 / 4104),
    (-8 / 27, 2.0, -3544 / 2565, 1859 / 4104, -11 / 40),
)
_C = (0.0, 1 / 4, 3 / 8, 12 / 13, 1.0, 1 / 2)
_B5 = (16 / 135, 0.0, 6656 / 12825, 28561 / 56430, -9 / 50, 2 / 55)
_B4 = (25 / 216, 0.0, 1408 / 2565, 2197 / 4104, -1 / 5, 0.0)


def rkf45(
    f: RHS,
    y0,
    t0: float,
    t1: float,
    *,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    h0: float | None = None,
    max_steps: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Adaptive RKF4(5); returns ``(y(t1), accepted_steps)``.

    The 5th-order solution advances; the 4th-order embedded solution
    provides the local error estimate.  Steps shrink/grow by the usual
    0.84 * (tol/err)^(1/4) rule, clipped to [0.1, 4] per step.
    """
    y = _check_ivp(y0, t0, t1)
    span = t1 - t0
    h = span / 100.0 if h0 is None else float(h0)
    if h <= 0:
        raise NumericsError("h0 must be positive")
    t = t0
    accepted = 0
    for _attempt in range(max_steps):
        if t >= t1:
            return y, accepted
        h = min(h, t1 - t)
        k = []
        for stage in range(6):
            ts = t + _C[stage] * h
            ys = y.copy()
            for j, a in enumerate(_A[stage]):
                ys += h * a * k[j]
            k.append(_eval_rhs(f, ts, ys))
        y5 = y + h * sum(b * ki for b, ki in zip(_B5, k))
        y4 = y + h * sum(b * ki for b, ki in zip(_B4, k))
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        err = float(np.sqrt(np.mean(((y5 - y4) / scale) ** 2)))
        if err <= 1.0:
            t += h
            y = y5
            accepted += 1
        factor = 4.0 if err == 0.0 else min(4.0, max(0.1, 0.84 * err ** -0.25))
        h *= factor
        if h <= 1e-14 * span:
            raise ConvergenceError("rkf45", accepted, err)
    raise ConvergenceError("rkf45", max_steps)
