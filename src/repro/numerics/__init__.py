"""From-scratch numerical routines backing the computational servers.

The original NetSolve servers dispatched into LAPACK, LINPACK, ItPack,
FitPack and QuadPack.  This package reimplements the needed slice of
that functionality in vectorized NumPy — blocked LU with partial
pivoting, Householder QR, eigensolvers, Krylov/stationary iterative
methods, an iterative radix-2 FFT, Runge-Kutta ODE integrators, adaptive
quadrature, least-squares/spline fitting and sorting — each cross-checked
against ``numpy.linalg``/``scipy`` in the test suite and each annotated
with the flop-count formula its problem description advertises.
"""

from .blas import axpy, dot, nrm2, gemv, gemm, asum, iamax, scal
from .lu import lu_factor, lu_solve, lu_det
from .linsys import solve, solve_triangular, inverse, determinant
from .qr import qr_factor, qr_solve_ls
from .eigen import power_iteration, eig_symmetric, eigvals_general
from .iterative import jacobi, conjugate_gradient, gmres
from .fft import fft, ifft, rfft_convolve
from .ode import rk4, rkf45
from .quadrature import adaptive_simpson, composite_trapezoid
from .fit import polyfit_ls, linear_spline, cubic_smooth
from .sort import merge_sort, quickselect
from .cholesky import cholesky_factor, cholesky_solve, is_spd
from .svd import svd_values, svd_factor
from .sparse import (
    CsrMatrix,
    sparse_cg,
    sparse_jacobi,
    poisson_1d,
    poisson_2d,
)
from .tridiag import thomas_solve, tridiag_solve_pivoting, tridiag_matvec
from .gauss import gauss_legendre, legendre_nodes
from .batch import lu_factor_batched, solve_batched, fft_batched, matmul_batched

__all__ = [
    "axpy", "dot", "nrm2", "gemv", "gemm", "asum", "iamax", "scal",
    "lu_factor", "lu_solve", "lu_det",
    "solve", "solve_triangular", "inverse", "determinant",
    "qr_factor", "qr_solve_ls",
    "power_iteration", "eig_symmetric", "eigvals_general",
    "jacobi", "conjugate_gradient", "gmres",
    "fft", "ifft", "rfft_convolve",
    "rk4", "rkf45",
    "adaptive_simpson", "composite_trapezoid",
    "polyfit_ls", "linear_spline", "cubic_smooth",
    "merge_sort", "quickselect",
    "cholesky_factor", "cholesky_solve", "is_spd",
    "svd_values", "svd_factor",
    "CsrMatrix", "sparse_cg", "sparse_jacobi", "poisson_1d", "poisson_2d",
    "thomas_solve", "tridiag_solve_pivoting", "tridiag_matvec",
    "gauss_legendre", "legendre_nodes",
    "lu_factor_batched", "solve_batched", "fft_batched", "matmul_batched",
]
