"""Gauss-Legendre quadrature.

Nodes and weights computed from scratch by Newton iteration on the
Legendre polynomial (evaluated by its three-term recurrence), starting
from the Chebyshev-angle approximation — the classical Golub-Welsch
alternative that needs no eigen machinery.  An n-point rule integrates
polynomials of degree 2n-1 exactly.

Flops: ``30*points`` per integrand evaluation sweep (advertised cost of
the ``quad/gauss`` problem).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["legendre_nodes", "gauss_legendre"]

_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _legendre_and_derivative(n: int, x: np.ndarray):
    """P_n(x) and P_n'(x) via the three-term recurrence (vectorized)."""
    p_prev = np.ones_like(x)
    p = x.copy()
    for k in range(2, n + 1):
        p_prev, p = p, ((2 * k - 1) * x * p - (k - 1) * p_prev) / k
    # derivative identity: (1 - x^2) P_n' = n (P_{n-1} - x P_n)
    dp = n * (p_prev - x * p) / (1.0 - x * x)
    return p, dp


def legendre_nodes(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of the n-point Gauss-Legendre rule on [-1, 1]."""
    if n < 1:
        raise NumericsError("need at least one quadrature point")
    if n == 1:
        return np.zeros(1), np.full(1, 2.0)
    cached = _cache.get(n)
    if cached is not None:
        return cached[0].copy(), cached[1].copy()
    # Chebyshev-angle starting guesses, then Newton on P_n
    k = np.arange(1, n + 1)
    x = np.cos(np.pi * (k - 0.25) / (n + 0.5))
    for _ in range(100):
        p, dp = _legendre_and_derivative(n, x)
        dx = p / dp
        x -= dx
        if float(np.max(np.abs(dx))) < 1e-15:
            break
    else:  # pragma: no cover - Newton on Legendre converges in ~5 steps
        raise ConvergenceError("legendre_nodes", 100)
    _, dp = _legendre_and_derivative(n, x)
    w = 2.0 / ((1.0 - x * x) * dp * dp)
    order = np.argsort(x)
    x, w = x[order], w[order]
    _cache[n] = (x.copy(), w.copy())
    return x, w


def gauss_legendre(
    f: Callable[[float], float], a: float, b: float, points: int
) -> float:
    """Integrate ``f`` over [a, b] with an n-point Gauss-Legendre rule."""
    if not (np.isfinite(a) and np.isfinite(b)) or b <= a:
        raise NumericsError(f"bad interval [{a}, {b}]")
    x, w = legendre_nodes(points)
    mid = (a + b) / 2.0
    half = (b - a) / 2.0
    try:
        values = np.asarray([float(f(float(mid + half * xi))) for xi in x])
    except (ZeroDivisionError, OverflowError, ValueError) as exc:
        raise NumericsError(f"integrand failed: {exc}") from None
    if not np.all(np.isfinite(values)):
        raise NumericsError("integrand returned non-finite values")
    return float(half * (w @ values))
