"""Singular value decomposition by one-sided Jacobi (the DGESVD slice).

One-sided Jacobi rotates column pairs of a working copy of ``A`` until
all columns are mutually orthogonal; the column norms are then the
singular values and the normalized columns the left singular vectors.
Unconditionally convergent and embarrassingly vectorizable per rotation,
at ``O(m n^2)`` per sweep — the classic trade of robustness for flops
that made it a favourite for accuracy-critical solvers.

Flops: about ``6*m*n^2`` per sweep, typically < 10 sweeps.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, NumericsError

__all__ = ["svd_values", "svd_factor"]


def _check(a) -> np.ndarray:
    arr = np.array(a, dtype=np.float64, order="C", copy=True)
    if arr.ndim != 2:
        raise NumericsError(f"expected a matrix, got shape {arr.shape}")
    m, n = arr.shape
    if m == 0 or n == 0:
        raise NumericsError("empty matrix")
    if not np.all(np.isfinite(arr)):
        raise NumericsError("matrix contains non-finite entries")
    return arr


def _one_sided_jacobi(
    u: np.ndarray, *, tol: float, max_sweeps: int, accumulate_v: bool
):
    m, n = u.shape
    v = np.eye(n) if accumulate_v else None
    scale = float(np.linalg.norm(u, "fro")) or 1.0
    # columns this small are numerically in the null space; rotating
    # against them is noise chasing (their *direction* stays parallel to
    # everything, so a relative angle test would never converge)
    negligible = (tol * scale) ** 2
    for _sweep in range(max_sweeps):
        off = 0.0
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = float(u[:, p] @ u[:, q])
                if apq == 0.0:
                    continue
                app = float(u[:, p] @ u[:, p])
                aqq = float(u[:, q] @ u[:, q])
                if app <= negligible or aqq <= negligible:
                    continue
                off = max(off, abs(apq) / (np.sqrt(app * aqq) or 1.0))
                if abs(apq) <= tol * np.sqrt(app * aqq):
                    continue
                theta = (aqq - app) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.sqrt(theta * theta + 1.0))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c
                up = u[:, p].copy()
                u[:, p] = c * up - s * u[:, q]
                u[:, q] = s * up + c * u[:, q]
                if v is not None:
                    vp = v[:, p].copy()
                    v[:, p] = c * vp - s * v[:, q]
                    v[:, q] = s * vp + c * v[:, q]
        if off <= tol:
            return u, v
    raise ConvergenceError("svd_one_sided_jacobi", max_sweeps, off)


def svd_values(a, *, tol: float = 1e-12, max_sweeps: int = 60) -> np.ndarray:
    """Singular values of ``a``, descending."""
    arr = _check(a)
    if arr.shape[0] < arr.shape[1]:
        arr = np.ascontiguousarray(arr.T)  # values are transpose-invariant
    u, _ = _one_sided_jacobi(
        arr, tol=tol, max_sweeps=max_sweeps, accumulate_v=False
    )
    sigma = np.linalg.norm(u, axis=0)
    return np.sort(sigma)[::-1].copy()


def svd_factor(
    a, *, tol: float = 1e-12, max_sweeps: int = 60
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduced SVD ``A = U @ diag(s) @ Vt`` for ``m >= n``.

    Returns ``(U, s, Vt)`` with ``U`` m x n column-orthonormal, ``s``
    descending, ``Vt`` n x n orthogonal.
    """
    arr = _check(a)
    m, n = arr.shape
    if m < n:
        raise NumericsError("svd_factor requires m >= n (pass A.T and swap)")
    u, v = _one_sided_jacobi(
        arr, tol=tol, max_sweeps=max_sweeps, accumulate_v=True
    )
    sigma = np.linalg.norm(u, axis=0)
    order = np.argsort(sigma)[::-1]
    sigma = sigma[order]
    u = u[:, order]
    v = v[:, order]
    # normalize non-null columns; null space columns get arbitrary unit
    # vectors orthogonal to the range (left as-is: zero columns)
    nz = sigma > tol * (sigma[0] if sigma.size and sigma[0] > 0 else 1.0)
    u[:, nz] /= sigma[nz]
    return u, sigma, v.T.copy()
