"""Wire protocol: typed messages, binary codec, pluggable transports.

The NetSolve components speak a small message protocol; here it is
defined once (:mod:`repro.protocol.messages`), serialized by an explicit
XDR-spirited binary codec with no pickle anywhere
(:mod:`repro.protocol.codec`), and carried by either of two transports
implementing the same :class:`~repro.protocol.transport.Node` contract:

* :class:`~repro.protocol.transport.SimTransport` — virtual time over a
  :class:`~repro.simnet.network.Topology`; message size on the simulated
  wire is the *actual encoded byte count*, so protocol overhead is honest.
* :class:`~repro.protocol.tcp.TcpTransport` — real localhost sockets and
  threads, running the very same component state machines.
"""

from .messages import (
    Message,
    RegisterServer,
    RegisterAck,
    WorkloadReport,
    QueryRequest,
    QueryReply,
    Candidate,
    DescribeProblem,
    ProblemDescription,
    ListProblems,
    ProblemList,
    SolveRequest,
    SolveReply,
    FailureReport,
    Ping,
    Pong,
)
from .codec import (
    encode_message,
    encode_message_iov,
    decode_message,
    encode_value,
    decode_value,
    encoded_size,
    frame_size,
)
from .transport import Node, Promise, SimTransport, SimNode, Component

__all__ = [
    "Message",
    "RegisterServer",
    "RegisterAck",
    "WorkloadReport",
    "QueryRequest",
    "QueryReply",
    "Candidate",
    "DescribeProblem",
    "ProblemDescription",
    "ListProblems",
    "ProblemList",
    "SolveRequest",
    "SolveReply",
    "FailureReport",
    "Ping",
    "Pong",
    "encode_message",
    "encode_message_iov",
    "decode_message",
    "encode_value",
    "decode_value",
    "encoded_size",
    "frame_size",
    "Node",
    "Promise",
    "Component",
    "SimTransport",
    "SimNode",
]
