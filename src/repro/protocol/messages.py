"""Typed protocol messages.

Every message is a frozen dataclass with a unique ``TYPE_CODE`` used by
the codec's frame header.  Field values are restricted to what the codec
can carry: None, bool, int, float, complex, str, bytes, ndarray, and
(possibly nested) tuples/lists/dicts of those.

Protocol summary::

    server -> agent : RegisterServer(pdl for its problems) -> RegisterAck
    server -> agent : WorkloadReport (hysteretic policy)
    client -> agent : DescribeProblem -> ProblemDescription (PDL text)
    client -> agent : ListProblems -> ProblemList
    client -> agent : QueryRequest(sizes) -> QueryReply(ranked Candidates;
                      or, on an agent-cache digest hit, the cached
                      outputs directly — no server touched)
    client -> server: SolveRequest(inputs) -> SolveReply(outputs | error;
                      cached=True when answered from the result cache)
    server -> client: Busy (admission cap hit; retry on another server)
    server -> agent : CacheInsert (small hot result published for the
                      agent's one-RTT cache)
    client -> server: FetchResult -> ResultStatus (recover a finished
                      result by request id from the persistent store)
    client -> server: FetchObject -> ObjectPayload (pull the bytes of a
                      server-resident object named by a DataHandle)
    client -> server: SubmitDag(nodes) -> DagNodeDone per node ->
                      DagReply (dependency graph executed server-side;
                      each node's inputs resolve from its predecessors'
                      resident results)
    client -> agent : FailureReport (server misbehaved; agent marks
                      suspect — or, for kind="busy", applies a decaying
                      workload penalty instead)
    agent  -> agent : RegisterServer/WorkloadReport/FailureReport/
                      TransferReport/CacheInsert with forwarded=True
                      (ground-truth mirror; never re-forwarded)
    agent  -> agent : QueryRequest with forwarded=True (shard non-owner
                      hops a query once to the owner, who replies
                      directly to the client via reply_to)
    agent  -> agent : SyncDigest -> SyncPull -> SyncState (anti-entropy:
                      periodic fingerprint exchange of each agent's
                      directly-registered servers; a peer that missed a
                      mirror pulls the full entries and heals)
    any    -> any   : Ping -> Pong (liveness)
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar

from ..errors import ProtocolError

__all__ = [
    "Message",
    "MESSAGE_TYPES",
    "RegisterServer",
    "RegisterAck",
    "WorkloadReport",
    "QueryRequest",
    "Candidate",
    "QueryReply",
    "DescribeProblem",
    "ProblemDescription",
    "ListProblems",
    "ProblemList",
    "SolveRequest",
    "SolveReply",
    "FetchResult",
    "ResultStatus",
    "CacheInsert",
    "Busy",
    "FailureReport",
    "TransferReport",
    "SyncDigest",
    "SyncPull",
    "SyncState",
    "ObjectRef",
    "DataHandle",
    "NodeOutput",
    "StoreObject",
    "StoreAck",
    "DeleteObject",
    "FetchObject",
    "ObjectPayload",
    "SubmitDag",
    "DagNodeDone",
    "DagReply",
    "Ping",
    "Pong",
]


@dataclass(frozen=True)
class Message:
    """Base class; subclasses must define a unique TYPE_CODE."""

    TYPE_CODE: ClassVar[int] = -1

    def to_fields(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_fields(cls, data: dict[str, Any]) -> "Message":
        names = {f.name for f in fields(cls)}
        extra = set(data) - names
        missing = names - set(data)
        if extra or missing:
            raise ProtocolError(
                f"{cls.__name__}: bad field set "
                f"(extra={sorted(extra)}, missing={sorted(missing)})"
            )
        # tuples flatten to lists on the wire; restore declared tuples
        coerced = {}
        for f in fields(cls):
            value = data[f.name]
            if isinstance(value, list):
                value = tuple(value)
            coerced[f.name] = value
        return cls(**coerced)


MESSAGE_TYPES: dict[int, type[Message]] = {}


def _register(cls: type[Message]) -> type[Message]:
    code = cls.TYPE_CODE
    if code < 0:
        raise ProtocolError(f"{cls.__name__} has no TYPE_CODE")
    if code in MESSAGE_TYPES:
        raise ProtocolError(
            f"duplicate TYPE_CODE {code}: {cls.__name__} vs "
            f"{MESSAGE_TYPES[code].__name__}"
        )
    MESSAGE_TYPES[code] = cls
    return cls


# ----------------------------------------------------------------------
# server <-> agent
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class RegisterServer(Message):
    """Server announces itself and uploads its problem descriptions."""

    TYPE_CODE: ClassVar[int] = 1

    server_id: str
    host: str
    mflops: float
    #: PDL text describing every problem this server can solve
    problems_pdl: str
    #: set on agent-to-agent mirror copies (never re-forwarded)
    forwarded: bool = False
    #: the server's own address (mirror copies carry it because the
    #: transport-level src is the forwarding agent, not the server)
    server_address: str = ""
    #: dialable endpoint of the server for cross-process federations
    server_endpoint: str = ""
    #: executor worker count (concurrent compute slots) on this server
    slots: int = 1


@_register
@dataclass(frozen=True)
class RegisterAck(Message):
    TYPE_CODE: ClassVar[int] = 2

    ok: bool
    detail: str = ""


@_register
@dataclass(frozen=True)
class WorkloadReport(Message):
    """Periodic (hysteretic) workload broadcast; w = 100 x load average."""

    TYPE_CODE: ClassVar[int] = 3

    server_id: str
    workload: float
    #: set on agent-to-agent mirror copies (never re-forwarded)
    forwarded: bool = False
    #: requests currently executing on the server's worker slots
    inflight: int = 0


# ----------------------------------------------------------------------
# client <-> agent
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class QueryRequest(Message):
    """Ask the agent for servers able to solve ``problem`` at ``sizes``."""

    TYPE_CODE: ClassVar[int] = 4

    problem: str
    #: size-symbol bindings from the client's actual arguments
    sizes: dict
    client_host: str
    #: server ids the client has already seen fail for this request
    exclude: tuple = ()
    #: client-chosen tag echoed in the reply (correlates concurrent queries)
    tag: int = 0
    #: content digest of (problem, inputs, env) — "" when the client is
    #: not digesting; lets the agent answer repeats from its hot cache
    digest: str = ""
    #: set on agent-to-agent forwarded copies: a shard non-owner hops a
    #: query once to the problem's owner (never re-forwarded)
    forwarded: bool = False
    #: the querying client's address (forwarded copies carry it because
    #: the transport-level src is the forwarding agent); the owner
    #: replies directly to the client
    reply_to: str = ""
    #: dialable endpoint of the client for cross-process federations
    reply_endpoint: str = ""
    #: server_id -> input bytes already resident there (from DataHandle
    #: inputs); the MCT ranking charges transfer cost only for bytes a
    #: candidate does *not* hold, homing chains onto the data's host
    resident: dict = field(default_factory=dict)
    #: QoS class of the request being placed ("interactive" / "batch" /
    #: "background"; "" = batch) — agents count per-class traffic and
    #: forward it with the eventual SolveRequest
    qos: str = ""


@dataclass(frozen=True)
class Candidate:
    """One ranked server candidate (plain record, nested inside replies)."""

    server_id: str
    address: str
    host: str
    predicted_seconds: float
    #: dialable "ip:port" for cross-process transports ("" when the
    #: logical address suffices, e.g. in simulation)
    endpoint: str = ""

    def to_fields(self) -> dict[str, Any]:
        return {
            "server_id": self.server_id,
            "address": self.address,
            "host": self.host,
            "predicted_seconds": self.predicted_seconds,
            "endpoint": self.endpoint,
        }

    @classmethod
    def from_fields(cls, data: dict[str, Any]) -> "Candidate":
        return cls(**data)


@_register
@dataclass(frozen=True)
class QueryReply(Message):
    TYPE_CODE: ClassVar[int] = 5

    ok: bool
    #: tuple of Candidate field-dicts, best first (codec carries dicts)
    candidates: tuple = ()
    detail: str = ""
    #: echo of QueryRequest.tag
    tag: int = 0
    #: failure may clear up (empty pool) vs never will (unknown problem)
    retryable: bool = False
    #: True when the agent answered from its result cache: ``outputs``
    #: holds the solution and ``candidates`` is empty
    cached: bool = False
    #: cached outputs (only when ``cached``)
    outputs: tuple = ()

    def candidate_list(self) -> list[Candidate]:
        return [Candidate.from_fields(c) for c in self.candidates]

    @staticmethod
    def from_candidates(cands: list[Candidate], tag: int = 0) -> "QueryReply":
        return QueryReply(
            ok=True, candidates=tuple(c.to_fields() for c in cands), tag=tag
        )


@_register
@dataclass(frozen=True)
class DescribeProblem(Message):
    TYPE_CODE: ClassVar[int] = 6

    problem: str


@_register
@dataclass(frozen=True)
class ProblemDescription(Message):
    TYPE_CODE: ClassVar[int] = 7

    ok: bool
    #: echo of the requested problem name
    problem: str = ""
    #: PDL text of the problem (exactly one block) when ok
    pdl: str = ""
    detail: str = ""


@_register
@dataclass(frozen=True)
class ListProblems(Message):
    TYPE_CODE: ClassVar[int] = 8

    prefix: str = ""


@_register
@dataclass(frozen=True)
class ProblemList(Message):
    TYPE_CODE: ClassVar[int] = 9

    names: tuple = ()
    #: echo of ListProblems.prefix
    prefix: str = ""


# ----------------------------------------------------------------------
# client <-> server
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class SolveRequest(Message):
    TYPE_CODE: ClassVar[int] = 10

    request_id: int
    problem: str
    #: coerced input objects, in spec order; entries may be
    #: :class:`ObjectRef`/:class:`DataHandle` references to objects
    #: already resident on the target server instead of payloads
    inputs: tuple
    reply_to: str = ""
    #: True: leave the outputs resident on the server and reply with
    #: :class:`DataHandle` references instead of payloads — the
    #: reference half of the locality path (``fetch`` pulls bytes later)
    keep_result: bool = False
    #: QoS class ("interactive" / "batch" / "background"; "" = batch):
    #: orders server admission by deadline and selects the per-class
    #: shed limit when the queue is saturated
    qos: str = ""


@_register
@dataclass(frozen=True)
class SolveReply(Message):
    TYPE_CODE: ClassVar[int] = 11

    request_id: int
    ok: bool
    outputs: tuple = ()
    detail: str = ""
    #: virtual/wall seconds the computation took on the server
    compute_seconds: float = 0.0
    #: provenance: True when answered from the result cache (or joined
    #: to an identical in-flight compute) instead of a fresh kernel run
    cached: bool = False
    #: machine-readable failure class ("" = unclassified); currently
    #: "missing_object": a referenced key is not resident (e.g. a crash
    #: wiped the store) — retryable by re-submitting with the payload
    error_kind: str = ""
    #: the keys that failed to resolve (only with error_kind set)
    missing: tuple = ()


@_register
@dataclass(frozen=True)
class FetchResult(Message):
    """Client -> server: recover a finished result from the job store.

    ``client`` names the reply address the original solve carried
    (``SolveRequest.reply_to``); "" means "me" — the server keys the
    lookup on the transport-level source.  A reconnecting client whose
    address changed passes its old address explicitly.
    """

    TYPE_CODE: ClassVar[int] = 20

    request_id: int
    client: str = ""


@_register
@dataclass(frozen=True)
class ResultStatus(Message):
    """Server -> client: job-store lookup outcome for one request id.

    ``status`` is one of "done" (outputs carried), "failed" (the solve
    completed with an error; detail carried), "unknown" (no record) or
    "unsupported" (server runs without a persistent store).
    """

    TYPE_CODE: ClassVar[int] = 21

    request_id: int
    status: str = "unknown"
    outputs: tuple = ()
    detail: str = ""
    compute_seconds: float = 0.0


@_register
@dataclass(frozen=True)
class CacheInsert(Message):
    """Server -> agent: publish a small hot result for the agent cache.

    Sent after a fresh compute when the encoded outputs fit the server's
    ``cache_publish_bytes`` budget, so repeat solves can be answered by
    the agent in one round trip without touching any server.
    """

    TYPE_CODE: ClassVar[int] = 22

    digest: str
    problem: str = ""
    outputs: tuple = ()
    #: encoded size of ``outputs`` (the agent bounds per-entry cost)
    nbytes: int = 0
    #: set on agent-to-agent mirror copies (never re-forwarded); only
    #: size-capped inserts mirror, so every agent's hot cache can answer
    #: the repeat query in one RTT
    forwarded: bool = False


# ----------------------------------------------------------------------
# agent <-> agent anti-entropy replication
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class SyncDigest(Message):
    """Agent -> peer: fingerprints of the sender's own ground truth.

    ``entries`` maps server id -> registration fingerprint for every
    server that registered *directly* with the sender (its shard of the
    ground truth).  A receiver whose view disagrees — entry missing, or
    fingerprint mismatch after a rejected/lost mirror — answers with a
    :class:`SyncPull` for the divergent ids.  Sent every
    ``AgentConfig.sync_interval`` seconds; an empty digest still flows,
    doubling as the fleet's peer-liveness heartbeat.
    """

    TYPE_CODE: ClassVar[int] = 23

    entries: dict = field(default_factory=dict)


@_register
@dataclass(frozen=True)
class SyncPull(Message):
    """Agent -> peer: request full registration state for these ids."""

    TYPE_CODE: ClassVar[int] = 24

    server_ids: tuple = ()


@_register
@dataclass(frozen=True)
class SyncState(Message):
    """Agent -> peer: authoritative registration state, one dict per
    server (id, address, endpoint, host, mflops, slots, problems_pdl,
    plus current workload/inflight/alive).  The home agent — the one the
    server registered with directly — is authoritative for its own
    servers, so applying this needs no conflict resolution."""

    TYPE_CODE: ClassVar[int] = 25

    entries: tuple = ()


# ----------------------------------------------------------------------
# failure handling / liveness
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class Busy(Message):
    """Server -> client: admission refused, the request was *not* queued.

    Sent instead of queueing when the FIFO queue already holds
    ``ServerConfig.max_queue`` requests.  Always retryable: the client
    falls through to its next candidate and tells the agent via
    ``FailureReport(kind="busy")`` so the ranking re-balances without
    the server being marked dead.
    """

    TYPE_CODE: ClassVar[int] = 19

    request_id: int
    #: waiting requests at refusal time (observability / backoff hints)
    queue_depth: int = 0
    detail: str = ""


@_register
@dataclass(frozen=True)
class FailureReport(Message):
    """Client tells the agent a server failed it (crash/timeout/error).

    ``kind`` classifies the failure: "" (default) means the server is
    unresponsive or erroring and gets marked suspect; "busy" means it
    answered — with an admission refusal — and only receives a decaying
    workload penalty in the ranking.
    """

    TYPE_CODE: ClassVar[int] = 12

    server_id: str
    problem: str
    detail: str = ""
    #: "" = suspect the server; "busy" = overloaded, penalise only
    kind: str = ""
    #: set on agent-to-agent mirror copies (never re-forwarded)
    forwarded: bool = False


@dataclass(frozen=True)
class ObjectRef:
    """Placeholder for an operand previously stored on the target server.

    Appears *inside* ``SolveRequest.inputs``; the server swaps it for the
    cached object before validation.  This is the data-locality half of
    request sequencing: ship a large operand once, reference it in every
    later request of the sequence.
    """

    key: str

    def __post_init__(self) -> None:
        if not self.key or len(self.key) > 128:
            raise ProtocolError(f"bad object key {self.key!r}")


@dataclass(frozen=True)
class DataHandle:
    """First-class reference to a server-resident object.

    Where :class:`ObjectRef` is a bare pinned-store key, a handle also
    names *where* the object lives (``server_id``/``address``), *what*
    it is (``digest`` of the stored value's canonical encoding,
    ``nbytes`` of its wire form, array ``shape``/``dtype`` metadata) —
    enough for a client to validate and size a request, and for the
    agent to charge transfer cost only for non-resident operands,
    without anyone shipping the payload.  Appears inside
    ``SolveRequest.inputs`` and, with ``keep_result=True``, inside
    ``SolveReply.outputs``.
    """

    key: str
    #: blake2b hex of the stored value's canonical encoding; folded into
    #: request digests so handle-bearing repeats hit the result cache
    digest: str = ""
    #: encoded (wire) size of the resident value
    nbytes: int = 0
    #: home server (registry id) and its logical address
    server_id: str = ""
    address: str = ""
    #: array metadata ("" / () for non-array values): lets the client
    #: bind size symbols without the data in hand
    shape: tuple = ()
    dtype: str = ""

    def __post_init__(self) -> None:
        if not self.key or len(self.key) > 128:
            raise ProtocolError(f"bad handle key {self.key!r}")
        if len(self.digest) > 64:
            raise ProtocolError(f"bad handle digest {self.digest!r}")


@dataclass(frozen=True)
class NodeOutput:
    """Inside ``SubmitDag`` node inputs: output ``index`` of DAG node
    ``node`` — the server substitutes the predecessor's resident result
    when the edge's downstream node starts."""

    node: str
    index: int = 0

    def __post_init__(self) -> None:
        if not self.node or len(self.node) > 128:
            raise ProtocolError(f"bad node reference {self.node!r}")
        if self.index < 0:
            raise ProtocolError(f"bad node output index {self.index!r}")


@_register
@dataclass(frozen=True)
class StoreObject(Message):
    """Client -> server: cache ``value`` under ``key`` for later reference."""

    TYPE_CODE: ClassVar[int] = 16

    key: str
    value: object = None


@_register
@dataclass(frozen=True)
class StoreAck(Message):
    TYPE_CODE: ClassVar[int] = 17

    key: str
    ok: bool
    nbytes: int = 0
    detail: str = ""
    #: on a successful store, the :class:`DataHandle` naming the now-
    #: resident object (digest/size/shape metadata included), so the
    #: client can reference or fetch it without another round trip
    handle: object = None


@_register
@dataclass(frozen=True)
class DeleteObject(Message):
    """Client -> server: drop a cached object (StoreAck replies)."""

    TYPE_CODE: ClassVar[int] = 18

    key: str


@_register
@dataclass(frozen=True)
class FetchObject(Message):
    """Client -> server: pull the bytes of a resident object on demand
    (the deferred-payload half of ``keep_result``/``DataHandle``)."""

    TYPE_CODE: ClassVar[int] = 26

    key: str
    reply_to: str = ""


@_register
@dataclass(frozen=True)
class ObjectPayload(Message):
    """Server -> client: FetchObject outcome (value carried when ok)."""

    TYPE_CODE: ClassVar[int] = 27

    key: str
    ok: bool
    value: object = None
    detail: str = ""
    #: mirrors SolveReply.error_kind ("missing_object" when the key is
    #: not resident — e.g. expired, deleted, or lost to a crash)
    error_kind: str = ""


@_register
@dataclass(frozen=True)
class SubmitDag(Message):
    """Client -> server: a dependency graph of solves in one message.

    ``nodes`` is a tuple of plain dicts, each::

        {"id": str, "problem": str, "inputs": tuple,
         "keep": bool, "emit": bool}

    Node inputs may carry payloads, :class:`ObjectRef`/:class:`DataHandle`
    references, or :class:`NodeOutput` edges naming a predecessor's
    output.  The server executes nodes in dependency order through its
    normal admission machinery, resolving each edge from the
    predecessor's result without the data ever leaving the server;
    ``DagNodeDone`` streams per-node progress and ``DagReply`` carries
    the outputs of every ``emit`` node (default: the terminal nodes).
    """

    TYPE_CODE: ClassVar[int] = 28

    dag_id: str
    nodes: tuple = ()
    reply_to: str = ""


@_register
@dataclass(frozen=True)
class DagNodeDone(Message):
    """Server -> client: one DAG node finished (progress stream)."""

    TYPE_CODE: ClassVar[int] = 29

    dag_id: str
    node: str
    ok: bool
    detail: str = ""
    compute_seconds: float = 0.0
    #: True when the node was answered from the result cache
    cached: bool = False
    #: nodes still unfinished after this one (0 = DagReply follows)
    remaining: int = 0


@_register
@dataclass(frozen=True)
class DagReply(Message):
    """Server -> client: the whole DAG's outcome.

    On success ``outputs`` concatenates the outputs of every node marked
    ``emit`` (in node order; values, or :class:`DataHandle` references
    for nodes marked ``keep``).  On failure ``failed_node`` names the
    first node that failed; unfinished successors are abandoned.
    """

    TYPE_CODE: ClassVar[int] = 30

    dag_id: str
    ok: bool
    outputs: tuple = ()
    detail: str = ""
    failed_node: str = ""
    error_kind: str = ""
    missing: tuple = ()


@_register
@dataclass(frozen=True)
class TransferReport(Message):
    """Client feedback after a successful request: realized transfer
    performance on the client-host <-> server-host path.  Feeds the
    agent's learned network table (the NWS-style measurement loop)."""

    TYPE_CODE: ClassVar[int] = 15

    client_host: str
    server_host: str
    #: payload bytes moved in each direction (model-level object sizes)
    nbytes: int
    #: seconds spent moving them (attempt round trip minus server compute)
    seconds: float
    #: set on agent-to-agent mirror copies (never re-forwarded); keeps
    #: every agent's learned network table — and MCT ranking — agreeing
    forwarded: bool = False


@_register
@dataclass(frozen=True)
class Ping(Message):
    TYPE_CODE: ClassVar[int] = 13

    nonce: int = 0


@_register
@dataclass(frozen=True)
class Pong(Message):
    TYPE_CODE: ClassVar[int] = 14

    nonce: int = 0
