"""Transport abstraction and the simulated transport.

The NetSolve components (agent, server, client) are *sans-IO state
machines*: they hold no sockets and no clocks, only a :class:`Node`
handle offering ``send``/``call_after``/``compute``/``now``.  Whatever
drives the node — virtual time here, real sockets in
:mod:`repro.protocol.tcp` — the component logic is byte-for-byte the
same, which is what makes simulated performance results honest about
protocol behaviour.

``SimNode.send`` charges the simulated wire with the *analytic* frame
size (:func:`~repro.protocol.codec.frame_size` — exact, but no payload
is serialized), then runs every delivered message through the
scatter/gather encode → zero-copy decode round trip — so codec bugs
surface in every simulation and message sizes are real, not modelled,
while lost or undeliverable messages cost no serialization at all.
``SimTransport(codec_roundtrip=False)`` skips even the delivered-path
materialization for huge farming runs (sender and receiver then share
the same payload objects; virtual timing is unchanged).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import NetSolveError, SimulationError, TransportClosed, TransportError
from ..simnet.kernel import EventKernel, Timer
from ..simnet.network import Topology
from ..trace.instruments import BYTES_BUCKETS, MetricsRegistry
from .codec import decode_message, encode_message_iov, frame_size
from .messages import Message

__all__ = [
    "Component",
    "Promise",
    "Node",
    "SimNode",
    "SimTransport",
    "set_promise_callback_error_handler",
]


class _WireMetrics:
    """Pre-resolved wire instruments shared by both transports."""

    __slots__ = ("messages", "bytes", "delivered", "dropped", "lost",
                 "frame_bytes")

    def __init__(self, registry: MetricsRegistry):
        self.messages = registry.counter("wire.messages", "frames sent")
        self.bytes = registry.counter("wire.bytes", "payload bytes sent")
        self.delivered = registry.counter(
            "wire.delivered", "frames handed to a live component")
        self.dropped = registry.counter(
            "wire.dropped", "frames to dead or unknown nodes")
        self.lost = registry.counter(
            "wire.lost", "frames dropped by injected message loss")
        self.frame_bytes = registry.histogram(
            "wire.frame_bytes", BYTES_BUCKETS, help="frame size distribution")


class Component:
    """Base class for protocol participants."""

    node: "Node | None" = None

    def bind(self, node: "Node") -> None:
        if self.node is not None:
            raise TransportError("component already bound to a node")
        self.node = node
        self.on_bind()

    def on_bind(self) -> None:
        """Hook run once the node is attached (register timers here)."""

    def on_restart(self) -> None:
        """Hook run when a crashed node is revived (the daemon's restart
        path): re-arm timers, re-register, drop in-flight state."""

    def on_shutdown(self) -> None:
        """Hook run when the node is torn down (crash or transport
        close): release executors, close stores, drop OS resources.
        Must be idempotent and restart-safe — a revived component may be
        shut down again later."""

    def on_message(self, src: str, msg: Message) -> None:
        raise NotImplementedError


#: observer for exceptions escaping ``Promise.on_settled`` callbacks;
#: installed process-wide (tests, daemons).  The default re-raises,
#: which in practice surfaces the bug at the resolver's call site.
_callback_error_handler: Callable[["Promise", BaseException], None] | None = None


def set_promise_callback_error_handler(
    handler: Callable[["Promise", BaseException], None] | None,
) -> Callable[["Promise", BaseException], None] | None:
    """Install (or clear, with None) the settle-callback error observer.

    Returns the previous handler so callers can restore it.
    """
    global _callback_error_handler
    previous = _callback_error_handler
    _callback_error_handler = handler
    return previous


class Promise:
    """One-shot result container resolvable with a value or an error.

    The waiting side is transport-specific: the simulated transport runs
    the event loop until resolution; the TCP transport blocks a thread.

    **Callback error policy** — a raising ``on_settled`` callback must
    not corrupt the settle: by the time callbacks run the promise is
    already done, every registered callback runs exactly once, and only
    then is the first callback error re-raised into the resolver's frame
    (or handed to the process-wide observer installed via
    :func:`set_promise_callback_error_handler`, which suppresses the
    re-raise).  A callback registered *after* settlement runs
    immediately and raises straight to its registrar — there is no
    resolver frame to protect.
    """

    __slots__ = ("_done", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: list[Callable[["Promise"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def resolve(self, value: Any) -> None:
        self._settle(value, None)

    def reject(self, error: BaseException) -> None:
        if not isinstance(error, BaseException):  # pragma: no cover
            raise TransportError("reject requires an exception instance")
        self._settle(None, error)

    def _settle(self, value: Any, error: Optional[BaseException]) -> None:
        if self._done:
            raise TransportError("promise settled twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        first_failure: Optional[BaseException] = None
        for cb in callbacks:
            try:
                cb(self)
            except BaseException as exc:  # noqa: BLE001 - isolate observers
                if _callback_error_handler is not None:
                    _callback_error_handler(self, exc)
                elif first_failure is None:
                    first_failure = exc
        if first_failure is not None:
            raise first_failure

    def on_settled(self, cb: Callable[["Promise"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def result(self) -> Any:
        if not self._done:
            raise TransportError("promise not yet settled")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error


class Node:
    """Abstract runtime handle given to a component.

    Subclasses provide the five primitives; everything else in the
    system is built from them.
    """

    address: str
    #: name of the machine this node runs on (the predictor's host key)
    host_name: str

    def now(self) -> float:
        raise NotImplementedError

    def send(self, dest: str, msg: Message) -> None:
        raise NotImplementedError

    def call_after(self, delay: float, fn: Callable[[], None]):
        """Schedule ``fn``; returns a handle with ``cancel()``."""
        raise NotImplementedError

    def compute(
        self,
        flops: float,
        thunk: Callable[[], Any],
        done: Callable[[Any, float], None],
    ) -> None:
        """Run ``thunk`` as a CPU job costing ``flops``.

        ``done(result, elapsed_seconds)`` is called on completion;
        ``result`` is the thunk's return value or the exception it
        raised (exceptions are passed, not raised, so the component can
        turn them into error replies).
        """
        raise NotImplementedError

    def sample_workload(self) -> float:
        """Current workload of this node's host (100 x load average)."""
        raise NotImplementedError

    def post(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the node's serialized lane.

        The escape hatch for completions that arrive on *foreign*
        threads (e.g. a process-pool executor): ``fn`` runs under the
        same serialization discipline as message dispatch and compute
        completions, and is dropped if the node is down.  Single-threaded
        transports run it inline.
        """
        fn()

    def endpoint_of(self, address: str) -> str:
        """Dialable endpoint for ``address`` ("" when logical addresses
        route directly, as in simulation)."""
        return ""

    def learn_endpoint(self, address: str, endpoint: str) -> None:
        """Record a dialable endpoint for a logical address (no-op in
        simulation)."""

    def promise(self) -> Promise:
        return Promise()


class SimNode(Node):
    """A node placed on a simulated host."""

    def __init__(
        self, transport: "SimTransport", address: str, host_name: str
    ):
        self.transport = transport
        self.address = address
        self.host_name = host_name
        self.alive = True
        self.component: Component | None = None
        self._timers: list[Timer] = []
        self._jobs: list = []
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- Node API ------------------------------------------------------
    def now(self) -> float:
        return self.transport.kernel.now

    def send(self, dest: str, msg: Message) -> None:
        if not self.alive:
            return  # a crashed node emits nothing
        self.transport._deliver(self, dest, msg)

    def call_after(self, delay: float, fn: Callable[[], None]) -> Timer:
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")

        def guarded() -> None:
            if self.alive:
                fn()

        timer = self.transport.kernel.call_after(delay, guarded)
        self._timers.append(timer)
        if len(self._timers) > 64:  # keep the teardown list bounded
            self._timers = [t for t in self._timers if not t.cancelled]
        return timer

    def compute(
        self,
        flops: float,
        thunk: Callable[[], Any],
        done: Callable[[Any, float], None],
    ) -> None:
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")
        host = self.transport.topology.host(self.host_name)
        # run the real computation now (real time is cheap); deliver the
        # result when the virtual CPU job finishes.
        try:
            result: Any = thunk()
        except NetSolveError as exc:
            result = exc
        except Exception as exc:  # handler bug: still reply, don't wedge
            result = exc
        job = host.submit_job(flops, name=self.address)
        self._jobs.append(job)

        def finish(elapsed: float) -> None:
            if self.alive:
                done(result, elapsed)

        job.done.add_callback(finish)

    def sample_workload(self) -> float:
        return self.transport.topology.host(self.host_name).workload

    # -- lifecycle -----------------------------------------------------
    def _shutdown(self) -> None:
        self.alive = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()
        for job in self._jobs:
            job.cancel()
        self._jobs.clear()
        if self.component is not None:
            self.component.on_shutdown()


class SimTransport:
    """Routes encoded messages between :class:`SimNode`\\ s over a
    :class:`~repro.simnet.network.Topology`."""

    def __init__(
        self,
        topology: Topology,
        *,
        codec_roundtrip: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.topology = topology
        self.kernel: EventKernel = topology.kernel
        #: encode→decode every delivered message (the fidelity default);
        #: False skips materialization and hands the receiver the
        #: sender's message object — timing identical, payloads shared
        self.codec_roundtrip = codec_roundtrip
        self._metrics = _WireMetrics(metrics) if metrics is not None else None
        self.nodes: dict[str, SimNode] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_lost = 0
        self._loss_rate = 0.0
        self._loss_rng = None

    def set_message_loss(self, rate: float, rng) -> None:
        """Drop each message independently with probability ``rate``.

        Models a lossy path without transport-level retransmission — the
        stress case for the request-level retry loop.  Deterministic
        under the supplied generator.
        """
        if not 0.0 <= rate < 1.0:
            raise SimulationError("loss rate must be in [0, 1)")
        if rate > 0.0 and rng is None:
            raise SimulationError("message loss needs an rng")
        self._loss_rate = float(rate)
        self._loss_rng = rng

    # ------------------------------------------------------------------
    def add_node(
        self, address: str, host_name: str, component: Component
    ) -> SimNode:
        """Place ``component`` at ``address`` on host ``host_name``."""
        if address in self.nodes:
            raise SimulationError(f"duplicate node address {address!r}")
        self.topology.host(host_name)  # validate early
        node = SimNode(self, address, host_name)
        node.component = component
        self.nodes[address] = node
        component.bind(node)
        return node

    def node(self, address: str) -> SimNode:
        try:
            return self.nodes[address]
        except KeyError:
            raise SimulationError(f"unknown node {address!r}") from None

    # ------------------------------------------------------------------
    def _deliver(self, src: SimNode, dest: str, msg: Message) -> None:
        dest_node = self.nodes.get(dest)
        lost = (
            dest_node is not None
            and self._loss_rate > 0.0
            and self._loss_rng.random() < self._loss_rate
        )
        if dest_node is None or lost:
            # dropped or lost messages never pay for serialization: the
            # analytic size charges the sender's counters without
            # materializing a byte
            src.messages_sent += 1
            nbytes = frame_size(msg)
            src.bytes_sent += nbytes
            if self._metrics is not None:
                self._metrics.messages.inc()
                self._metrics.bytes.inc(nbytes)
                self._metrics.frame_bytes.observe(nbytes)
            if dest_node is None:
                self.messages_dropped += 1
                if self._metrics is not None:
                    self._metrics.dropped.inc()
            else:
                self.messages_lost += 1
                if self._metrics is not None:
                    self._metrics.lost.inc()
            return
        if self.codec_roundtrip:
            # gather into one writable buffer so delivery can decode
            # zero-copy (arrays alias the wire bytearray); the frame
            # itself is the byte count — no separate sizing walk
            parts = encode_message_iov(msg)
            sizes = [len(p) for p in parts]
            nbytes = sum(sizes)
            # left-pad the buffer so the first (dominant) array payload
            # sits 8-byte aligned: the decoder then aliases it instead
            # of paying an alignment memcpy
            off = pad = 0
            for part, size in zip(parts, sizes):
                if isinstance(part, memoryview):
                    pad = -off % 8
                    break
                off += size
            wire = memoryview(bytearray(pad + nbytes))[pad:]
            pos = 0
            for part, size in zip(parts, sizes):
                wire[pos:pos + size] = part
                pos += size
        else:
            wire = None
            nbytes = frame_size(msg)
        src.messages_sent += 1
        src.bytes_sent += nbytes
        if self._metrics is not None:
            self._metrics.messages.inc()
            self._metrics.bytes.inc(nbytes)
            self._metrics.frame_bytes.observe(nbytes)
        transfer = self.topology.transfer(
            src.host_name, dest_node.host_name, nbytes
        )

        def arrive(_plan) -> None:
            node = self.nodes.get(dest)
            if node is None or not node.alive or node.component is None:
                self.messages_dropped += 1
                if self._metrics is not None:
                    self._metrics.dropped.inc()
                return
            self.messages_delivered += 1
            if self._metrics is not None:
                self._metrics.delivered.inc()
            delivered = msg if wire is None else decode_message(wire)
            node.component.on_message(src.address, delivered)

        transfer.add_callback(arrive)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash(self, address: str) -> None:
        """Kill a node: timers cancelled, CPU jobs aborted, messages to
        and from it silently dropped — exactly what a machine crash
        looks like from the network."""
        self.node(address)._shutdown()

    def revive(self, address: str) -> None:
        """Bring a crashed node back: the component's ``on_restart`` runs
        so the daemon re-arms timers and re-registers."""
        node = self.node(address)
        if node.alive:
            raise SimulationError(f"node {address!r} is not down")
        node.alive = True
        if node.component is not None:
            node.component.on_restart()

    def is_alive(self, address: str) -> bool:
        return self.node(address).alive

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run_until(self, promise: Promise, *, limit: float | None = None) -> Any:
        """Run virtual time forward until ``promise`` settles.

        Returns the promise's value or raises its error; raises
        :class:`SimulationError` on deadlock or when ``limit`` passes
        first.
        """
        self.kernel.run(until=limit, stop=lambda: promise.done)
        if not promise.done:
            raise SimulationError(
                f"promise never settled (now={self.kernel.now:.3f})"
            )
        return promise.result()
