"""Real-socket transport: the same components over localhost TCP.

Each node owns a listening socket and an accept thread.  Outbound
traffic rides a per-destination **persistent connection pool**: the
first message to a peer dials it, later messages reuse the socket (idle
connections expire, dead ones are detected and redialed, the pool is
bounded).  A connection carries any number of messages, each framed as
an envelope (sender's logical address + return endpoint) followed by
one codec frame — the envelope bytes are precomputed once per node, and
each message goes out with a single ``socket.sendmsg()`` scatter/gather
call straight from the codec's iov parts, so large ndarray payloads are
never concatenated into one big buffer.  Component entry points
(message dispatch, timers, compute completions, and user-thread calls
like ``client.submit``) are serialized by a per-node re-entrant lock,
so the sans-IO state machines need no thread awareness of their own.

This transport exists to prove the protocol is real: the integration
tests run a full agent/server/client deployment over actual sockets and
get bit-identical results to the simulated runs.
"""

from __future__ import annotations

import os
import select
import socket
import struct
import threading
import time
from typing import Any, Callable, Optional

from ..core.executors import WorkerPool
from ..errors import TransportClosed, TransportError
from ..trace.instruments import MetricsRegistry
from .codec import HEADER, MAX_BODY, decode_message, encode_message_iov
from .messages import Message
from .transport import Component, Node, Promise, _WireMetrics

__all__ = ["TcpNode", "TcpTransport", "ThreadPromise", "TcpSession"]

_ENVELOPE = struct.Struct("<I")
#: addresses and return endpoints are short strings; an envelope length
#: beyond this is a hostile or corrupt peer, dropped before allocating
_MAX_ENVELOPE = 4096
_ACCEPT_BACKLOG = 64
_CONNECT_TIMEOUT = 5.0
#: outbound sockets unused this long are closed instead of reused
_POOL_IDLE_TIMEOUT = 30.0
#: pooled outbound sockets per node; least-recently-used beyond this close
_POOL_MAX = 32
#: keep sendmsg iov counts well under the kernel's IOV_MAX
_SENDMSG_MAX_BUFFERS = 256
#: compute-pool threads per node unless the deployment says otherwise
_DEFAULT_COMPUTE_WORKERS = 4
#: resolved once: ``os.getloadavg`` does not exist on non-UNIX builds,
#: and the periodic workload sampler should not re-discover that (or
#: re-run the import machinery) every tick
_HAS_LOADAVG = hasattr(os, "getloadavg")


class ThreadPromise(Promise):
    """Promise with a thread-blocking ``wait``."""

    def __init__(self) -> None:
        super().__init__()
        self._event = threading.Event()
        self.on_settled(lambda _p: self._event.set())

    def wait(self, timeout: float | None = None) -> Any:
        """Block the calling thread until settled; returns the value or
        raises the stored error (or TransportError on timeout)."""
        if not self._event.wait(timeout):
            raise TransportError(f"promise wait timed out after {timeout}s")
        return self.result()


def _read_exact_into(conn: socket.socket, view: memoryview) -> None:
    while view.nbytes:
        got = conn.recv_into(view, view.nbytes)
        if not got:
            raise TransportError("peer closed mid-frame")
        view = view[got:]


def _read_exact(conn: socket.socket, n: int) -> bytearray:
    buf = bytearray(n)
    _read_exact_into(conn, memoryview(buf))
    return buf


def _sendmsg_all(conn: socket.socket, parts: list) -> None:
    """Drain a buffer list through ``sendmsg``, handling short writes."""
    buffers = [memoryview(p).cast("B") if not isinstance(p, memoryview) else p
               for p in parts]
    while buffers:
        sent = conn.sendmsg(buffers[:_SENDMSG_MAX_BUFFERS])
        while sent:
            head = buffers[0]
            if head.nbytes <= sent:
                sent -= head.nbytes
                buffers.pop(0)
            else:
                buffers[0] = head[sent:]
                sent = 0


class _ConnPool:
    """Per-node cache of outbound sockets keyed by (ip, port).

    ``acquire`` checks a socket *out* (concurrent sends to one peer get
    their own connections; surplus ones close on release), verifies the
    peer has not hung up — on these one-way links readability can only
    mean EOF or reset — and discards idle-expired entries.
    """

    def __init__(self, idle_timeout: float, max_size: int):
        self.idle_timeout = idle_timeout
        self.max_size = max_size
        self._lock = threading.Lock()
        self._conns: dict[tuple[str, int], tuple[socket.socket, float]] = {}
        self.dials = 0
        self.reuses = 0

    def acquire(self, key: tuple[str, int]) -> socket.socket | None:
        with self._lock:
            entry = self._conns.pop(key, None)
        if entry is None:
            return None
        conn, last_used = entry
        if time.monotonic() - last_used > self.idle_timeout or not self._alive(conn):
            _close_quietly(conn)
            return None
        self.reuses += 1
        return conn

    @staticmethod
    def _alive(conn: socket.socket) -> bool:
        try:
            readable, _, _ = select.select([conn], [], [], 0)
        except (OSError, ValueError):
            return False
        return not readable  # peers never talk back: readable == closed

    def release(self, key: tuple[str, int], conn: socket.socket) -> None:
        with self._lock:
            if key in self._conns:
                extra = [conn]  # a concurrent send already parked one
            else:
                self._conns[key] = (conn, time.monotonic())
                extra = []
                while len(self._conns) > self.max_size:
                    oldest_key = min(
                        self._conns, key=lambda k: self._conns[k][1]
                    )
                    old, _t = self._conns.pop(oldest_key)
                    extra.append(old)
        for old in extra:
            _close_quietly(old)

    def close(self) -> None:
        with self._lock:
            conns = [c for c, _t in self._conns.values()]
            self._conns.clear()
        for conn in conns:
            _close_quietly(conn)


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class TcpNode(Node):
    """A component endpoint on a real socket."""

    #: a real-socket node runs completions on OS threads, so a server
    #: may opt into the process-executor lane (the sim node cannot: its
    #: virtual clock would not account for child-process work)
    supports_process_pool = True

    def __init__(
        self,
        transport: "TcpTransport",
        address: str,
        port: int,
        *,
        compute_workers: int = _DEFAULT_COMPUTE_WORKERS,
    ):
        self.transport = transport
        self.address = address
        self.host_name = transport.host_name
        self.component: Component | None = None
        self.alive = True
        self.lock = threading.RLock()
        self.compute_workers = max(1, int(compute_workers))
        #: bounded compute pool, created on first compute() — most nodes
        #: (clients, agents) never run one
        self._compute_pool: WorkerPool | None = None
        self._timers: list[threading.Timer] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((transport.bind_ip, port))
        self._listener.listen(_ACCEPT_BACKLOG)
        self.port = self._listener.getsockname()[1]
        self._pool = _ConnPool(transport.pool_idle_timeout, transport.pool_max)
        self._inbound: set[socket.socket] = set()
        self._inbound_lock = threading.Lock()
        # envelope prefix (our logical address + dial-back endpoint) is
        # identical on every message: build it exactly once
        src = self.address.encode("utf-8")
        ret = f"{transport.advertise_ip}:{self.port}".encode("ascii")
        self._envelope = b"".join(
            (_ENVELOPE.pack(len(src)), src, _ENVELOPE.pack(len(ret)), ret)
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{address}", daemon=True
        )

    def start(self) -> None:
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Node API
    # ------------------------------------------------------------------
    def now(self) -> float:
        return time.monotonic() - self.transport.epoch

    def send(self, dest: str, msg: Message) -> None:
        if not self.alive:
            return
        try:
            key = self.transport.resolve(dest)
        except TransportError:
            return  # unknown destination: drop, like a bad DNS name
        parts = [self._envelope, *encode_message_iov(msg)]
        conn = self._pool.acquire(key)
        if conn is not None:
            try:
                _sendmsg_all(conn, parts)
            except OSError:
                _close_quietly(conn)  # stale peer: redial below
            else:
                self._pool.release(key, conn)
                self._count_sent(parts)
                return
        try:
            conn = socket.create_connection(key, timeout=_CONNECT_TIMEOUT)
            self._pool.dials += 1
            _sendmsg_all(conn, parts)
        except OSError:
            if conn is not None:
                _close_quietly(conn)
            if self.transport._metrics is not None:
                self.transport._metrics.dropped.inc()
            return  # unreachable peer == dropped message
        self._pool.release(key, conn)
        self._count_sent(parts)

    def _count_sent(self, parts: list) -> None:
        metrics = self.transport._metrics
        if metrics is None:
            return  # the byte-sizing walk only happens when observed
        nbytes = sum(len(p) for p in parts)
        metrics.messages.inc()
        metrics.bytes.inc(nbytes)
        metrics.frame_bytes.observe(nbytes)

    def call_after(self, delay: float, fn: Callable[[], None]):
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")

        def guarded() -> None:
            with self.lock:
                if self.alive:
                    fn()

        timer = threading.Timer(delay, guarded)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.is_alive()]
        return _TimerHandle(timer)

    def compute(
        self,
        flops: float,
        thunk: Callable[[], Any],
        done: Callable[[Any, float], None],
    ) -> None:
        """Run ``thunk`` on the node's bounded compute pool.

        Replaces the old thread-per-request spawn: a burst now queues on
        ``compute_workers`` pool threads instead of forking an unbounded
        number of OS threads, and a submission that finds every worker
        busy ticks ``server.pool_saturated`` so the pressure is visible.
        """
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")

        def run() -> None:
            t0 = time.perf_counter()
            try:
                result: Any = thunk()
            except Exception as exc:
                result = exc
            elapsed = time.perf_counter() - t0
            with self.lock:
                if self.alive:
                    done(result, elapsed)

        pool = self._compute_pool
        if pool is None:
            pool = WorkerPool(
                self.compute_workers,
                name=f"compute-{self.address}",
                on_saturated=self.transport._on_pool_saturated,
            )
            self._compute_pool = pool
        pool.submit(run)

    def post(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` under the node lock (foreign-thread completions)."""
        with self.lock:
            if self.alive:
                fn()

    def sample_workload(self) -> float:
        """100 x the 1-minute UNIX load average of this machine."""
        if _HAS_LOADAVG:
            try:
                return 100.0 * os.getloadavg()[0]
            except OSError:  # pragma: no cover - sampling hiccup
                return 0.0
        return 0.0  # pragma: no cover - non-UNIX

    def endpoint_of(self, address: str) -> str:
        try:
            ip, port = self.transport.resolve(address)
        except TransportError:
            return ""
        return f"{ip}:{port}"

    def restart_component(self) -> None:
        """Drive the component's restart path on a live daemon.

        Runs ``on_restart`` under the node lock, serialized against
        message delivery and timer fires — the operational "the daemon
        hiccuped, reset it" path.  Old ``threading.Timer``\\ s armed
        before the restart may still fire afterwards; restart-safe
        periodics supersede them by generation, which is exactly what
        the crash/revive lifecycle tests pin down.
        """
        with self.lock:
            if not self.alive:
                raise TransportClosed(f"node {self.address!r} is down")
            if self.component is None:
                raise TransportError(f"node {self.address!r} has no component")
            self.component.on_restart()

    def learn_endpoint(self, address: str, endpoint: str) -> None:
        try:
            ip, port_text = endpoint.rsplit(":", 1)
            self.transport.learn_peer(address, ip, int(port_text))
        except ValueError:
            pass  # malformed endpoint: keep whatever we had

    def promise(self) -> ThreadPromise:
        return ThreadPromise()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self.alive:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._inbound_lock:
                if not self.alive:
                    _close_quietly(conn)
                    return
                self._inbound.add(conn)
            threading.Thread(
                target=self._serve_conn,
                args=(conn,),
                name=f"tcp-conn-{self.address}",
                daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            with conn:
                # a connection now carries a message stream: loop until
                # the sender hangs up (or its pool expires the socket)
                while True:
                    try:
                        # idle between messages is normal for a pooled
                        # sender; allow well past its idle timeout
                        conn.settimeout(
                            self.transport.pool_idle_timeout * 2 + 1.0
                        )
                        first = conn.recv(_ENVELOPE.size)
                    except (OSError, TransportError):
                        return
                    if not first:
                        return  # clean close between messages
                    try:
                        head = bytearray(first)
                        if len(head) < _ENVELOPE.size:
                            head += _read_exact(
                                conn, _ENVELOPE.size - len(head)
                            )
                        conn.settimeout(_CONNECT_TIMEOUT)
                        (src_len,) = _ENVELOPE.unpack(head)
                        if src_len > _MAX_ENVELOPE:
                            return  # hostile length: never allocate it
                        src = bytes(_read_exact(conn, src_len)).decode("utf-8")
                        (ret_len,) = _ENVELOPE.unpack(
                            _read_exact(conn, _ENVELOPE.size)
                        )
                        if ret_len > _MAX_ENVELOPE:
                            return
                        ret = bytes(_read_exact(conn, ret_len)).decode("ascii")
                        frame = bytearray(HEADER.size)
                        _read_exact_into(conn, memoryview(frame))
                        _magic, _ver, _type, length = HEADER.unpack_from(frame)
                        if length > MAX_BODY:
                            return  # hostile length: never allocate it
                        # grow with the data so a hostile length field
                        # costs at most one spare chunk, not 16 GiB
                        remaining = length
                        while remaining:
                            chunk = min(remaining, 1 << 22)
                            start = len(frame)
                            frame += bytes(chunk)
                            _read_exact_into(conn, memoryview(frame)[start:])
                            remaining -= chunk
                        # decode straight off the writable receive buffer:
                        # ndarray payloads alias it, no copy
                        msg = decode_message(frame)
                    except (TransportError, OSError, Exception):
                        return  # malformed peer: drop the connection, stay up
                    # learn the sender's return path (no-op for
                    # same-process nodes)
                    try:
                        ip, port_text = ret.rsplit(":", 1)
                        self.transport.learn_peer(src, ip, int(port_text))
                    except ValueError:
                        return  # malformed return endpoint: drop
                    with self.lock:
                        if not self.alive or self.component is None:
                            return
                        if self.transport._metrics is not None:
                            self.transport._metrics.delivered.inc()
                        self.component.on_message(src, msg)
        finally:
            with self._inbound_lock:
                self._inbound.discard(conn)

    def shutdown(self) -> None:
        with self.lock:
            self.alive = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()
        if self.component is not None:
            # release component-owned resources (executor pools, stores)
            # before the transport's own; on_shutdown is idempotent
            self.component.on_shutdown()
        if self._compute_pool is not None:
            self._compute_pool.shutdown()
        self._pool.close()
        try:
            # wake the blocked accept() so the close isn't deferred by
            # the interpreter's in-use fd protection (the port must be
            # genuinely free for an immediate restart)
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._inbound_lock:
            inbound = list(self._inbound)
            self._inbound.clear()
        for conn in inbound:
            try:
                # abortive close: no TIME_WAIT holding the port, and
                # senders' pooled sockets see the death instead of
                # hanging half-open
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            except OSError:  # pragma: no cover
                pass
            try:
                conn.shutdown(socket.SHUT_RDWR)  # wake the serve thread
            except OSError:
                pass
            _close_quietly(conn)


class _TimerHandle:
    __slots__ = ("_timer",)

    def __init__(self, timer: threading.Timer):
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class TcpTransport:
    """A directory of TCP nodes on this machine."""

    def __init__(
        self,
        *,
        bind_ip: str = "127.0.0.1",
        host_name: str | None = None,
        advertise_ip: str | None = None,
        pool_idle_timeout: float = _POOL_IDLE_TIMEOUT,
        pool_max: int = _POOL_MAX,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.bind_ip = bind_ip
        self._metrics = _WireMetrics(metrics) if metrics is not None else None
        self._pool_saturated = (
            metrics.counter(
                "server.pool_saturated",
                "compute submissions that found every pool worker busy",
            )
            if metrics is not None
            else None
        )
        #: the IP peers should dial back; defaults to the bind address
        self.advertise_ip = advertise_ip or bind_ip
        self.host_name = host_name or socket.gethostname()
        if pool_idle_timeout <= 0:
            raise TransportError("pool_idle_timeout must be positive")
        if pool_max < 1:
            raise TransportError("pool_max must be >= 1")
        self.pool_idle_timeout = pool_idle_timeout
        self.pool_max = pool_max
        self.epoch = time.monotonic()
        self.nodes: dict[str, TcpNode] = {}
        self._directory: dict[str, tuple[str, int]] = {}
        self._lock = threading.Lock()

    def _on_pool_saturated(self) -> None:
        if self._pool_saturated is not None:
            self._pool_saturated.inc()

    # ------------------------------------------------------------------
    def add_node(
        self,
        address: str,
        component: Component,
        *,
        port: int = 0,
        compute_workers: int = _DEFAULT_COMPUTE_WORKERS,
    ) -> TcpNode:
        with self._lock:
            if address in self.nodes:
                raise TransportError(f"duplicate node address {address!r}")
            node = TcpNode(self, address, port, compute_workers=compute_workers)
            self.nodes[address] = node
            self._directory[address] = (self.bind_ip, node.port)
        node.component = component
        node.start()
        with node.lock:
            component.bind(node)
        return node

    def register_remote(self, address: str, ip: str, port: int) -> None:
        """Add a node living in another process to the directory."""
        with self._lock:
            self._directory[address] = (ip, port)

    def learn_peer(self, address: str, ip: str, port: int) -> None:
        """Record a sender's return path, never shadowing local nodes or
        explicit ``register_remote`` entries for local addresses."""
        with self._lock:
            if address in self.nodes:
                return  # local node: the directory entry is already right
            self._directory[address] = (ip, port)

    def resolve(self, address: str) -> tuple[str, int]:
        with self._lock:
            try:
                return self._directory[address]
            except KeyError:
                raise TransportError(f"unknown address {address!r}") from None

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            nodes = list(self.nodes.values())
        for node in nodes:
            node.shutdown()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _describe_waited(promise) -> str:
    """Human-readable identity of a waited-on promise for timeout errors.

    A client :class:`RequestHandle` names its request id and problem;
    anything else falls back to the object's class name.
    """
    record = getattr(promise, "record", None)
    if record is not None:
        return (
            f"request {record.request_id} ({record.problem!r}, "
            f"status {record.status.name.lower()})"
        )
    return type(promise).__name__


class TcpSession:
    """:class:`repro.capi.Session` flavour for TCP deployments."""

    def __init__(self, client_node: TcpNode, timeout: float = 60.0):
        from ..core.client import NetSolveClient

        if not isinstance(client_node.component, NetSolveClient):
            raise TransportError("node does not host a NetSolveClient")
        self.node = client_node
        self.client = client_node.component
        self.timeout = timeout

    def submit(self, problem: str, args: list, *, qos: str = "") -> Any:
        """Thread-safe submit through the node lock."""
        with self.node.lock:
            return self.client.submit(problem, args, qos=qos)

    def list_problems(self, prefix: str = "") -> Any:
        with self.node.lock:
            return self.client.list_problems(prefix)

    def drive_result(self, promise) -> Any:
        """Wait on a promise and return its value (CLI convenience)."""
        self.drive(promise)
        return promise.result()

    def drive(self, promise) -> None:
        """Block until ``promise`` settles or the session timeout passes.

        Accepts a bare :class:`~repro.protocol.transport.Promise` (any
        flavour, not just :class:`ThreadPromise`) or a client
        :class:`~repro.core.client.RequestHandle`.  The wait parks the
        calling thread on a condition variable armed through
        ``on_settled`` — no polling loop — and a timeout names the
        request being waited on.
        """
        target = getattr(promise, "promise", promise)
        settled = threading.Event()
        target.on_settled(lambda _p: settled.set())
        if not settled.wait(self.timeout):
            raise TransportError(
                f"timed out after {self.timeout:g}s waiting on "
                f"{_describe_waited(promise)}"
            )
