"""Real-socket transport: the same components over localhost TCP.

Each node owns a listening socket and an accept thread; every message is
one short-lived connection carrying an envelope (sender's logical
address) followed by one codec frame — the per-request-connection style
of the original system.  Component entry points (message dispatch,
timers, compute completions, and user-thread calls like
``client.submit``) are serialized by a per-node re-entrant lock, so the
sans-IO state machines need no thread awareness of their own.

This transport exists to prove the protocol is real: the integration
tests run a full agent/server/client deployment over actual sockets and
get bit-identical results to the simulated runs.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Callable, Optional

from ..errors import TransportClosed, TransportError
from .codec import HEADER, decode_message, encode_message
from .messages import Message
from .transport import Component, Node, Promise

__all__ = ["TcpNode", "TcpTransport", "ThreadPromise", "TcpSession"]

_ENVELOPE = struct.Struct("<I")
_ACCEPT_BACKLOG = 64
_CONNECT_TIMEOUT = 5.0


class ThreadPromise(Promise):
    """Promise with a thread-blocking ``wait``."""

    def __init__(self) -> None:
        super().__init__()
        self._event = threading.Event()
        self.on_settled(lambda _p: self._event.set())

    def wait(self, timeout: float | None = None) -> Any:
        """Block the calling thread until settled; returns the value or
        raises the stored error (or TransportError on timeout)."""
        if not self._event.wait(timeout):
            raise TransportError(f"promise wait timed out after {timeout}s")
        return self.result()


def _read_exact(conn: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = conn.recv(min(remaining, 1 << 16))
        if not chunk:
            raise TransportError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class TcpNode(Node):
    """A component endpoint on a real socket."""

    def __init__(self, transport: "TcpTransport", address: str, port: int):
        self.transport = transport
        self.address = address
        self.host_name = transport.host_name
        self.component: Component | None = None
        self.alive = True
        self.lock = threading.RLock()
        self._timers: list[threading.Timer] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((transport.bind_ip, port))
        self._listener.listen(_ACCEPT_BACKLOG)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{address}", daemon=True
        )

    def start(self) -> None:
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Node API
    # ------------------------------------------------------------------
    def now(self) -> float:
        return time.monotonic() - self.transport.epoch

    def send(self, dest: str, msg: Message) -> None:
        if not self.alive:
            return
        try:
            ip, port = self.transport.resolve(dest)
        except TransportError:
            return  # unknown destination: drop, like a bad DNS name
        frame = encode_message(msg)
        src = self.address.encode("utf-8")
        # advertise our own listening endpoint so a peer in another
        # process learns the return path without manual directory setup
        ret = f"{self.transport.advertise_ip}:{self.port}".encode("ascii")
        payload = (
            _ENVELOPE.pack(len(src)) + src + _ENVELOPE.pack(len(ret)) + ret + frame
        )
        try:
            with socket.create_connection(
                (ip, port), timeout=_CONNECT_TIMEOUT
            ) as conn:
                conn.sendall(payload)
        except OSError:
            return  # unreachable peer == dropped message

    def call_after(self, delay: float, fn: Callable[[], None]):
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")

        def guarded() -> None:
            with self.lock:
                if self.alive:
                    fn()

        timer = threading.Timer(delay, guarded)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if t.is_alive()]
        return _TimerHandle(timer)

    def compute(
        self,
        flops: float,
        thunk: Callable[[], Any],
        done: Callable[[Any, float], None],
    ) -> None:
        if not self.alive:
            raise TransportClosed(f"node {self.address!r} is down")

        def run() -> None:
            t0 = time.perf_counter()
            try:
                result: Any = thunk()
            except Exception as exc:
                result = exc
            elapsed = time.perf_counter() - t0
            with self.lock:
                if self.alive:
                    done(result, elapsed)

        worker = threading.Thread(
            target=run, name=f"compute-{self.address}", daemon=True
        )
        worker.start()

    def sample_workload(self) -> float:
        """100 x the 1-minute UNIX load average of this machine."""
        try:
            import os

            return 100.0 * os.getloadavg()[0]
        except (OSError, AttributeError):  # pragma: no cover - non-UNIX
            return 0.0

    def endpoint_of(self, address: str) -> str:
        try:
            ip, port = self.transport.resolve(address)
        except TransportError:
            return ""
        return f"{ip}:{port}"

    def learn_endpoint(self, address: str, endpoint: str) -> None:
        try:
            ip, port_text = endpoint.rsplit(":", 1)
            self.transport.learn_peer(address, ip, int(port_text))
        except ValueError:
            pass  # malformed endpoint: keep whatever we had

    def promise(self) -> ThreadPromise:
        return ThreadPromise()

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self.alive:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._serve_conn,
                args=(conn,),
                name=f"tcp-conn-{self.address}",
                daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(_CONNECT_TIMEOUT)
                (src_len,) = _ENVELOPE.unpack(_read_exact(conn, _ENVELOPE.size))
                src = _read_exact(conn, src_len).decode("utf-8")
                (ret_len,) = _ENVELOPE.unpack(_read_exact(conn, _ENVELOPE.size))
                ret = _read_exact(conn, ret_len).decode("ascii")
                header = _read_exact(conn, HEADER.size)
                _magic, _ver, _type, length = HEADER.unpack(header)
                body = _read_exact(conn, length)
                msg = decode_message(header + body)
        except (TransportError, OSError, Exception):
            return  # malformed peer: drop the connection, stay up
        # learn the sender's return path (no-op for same-process nodes)
        try:
            ip, port_text = ret.rsplit(":", 1)
            self.transport.learn_peer(src, ip, int(port_text))
        except ValueError:
            return  # malformed return endpoint: drop
        with self.lock:
            if self.alive and self.component is not None:
                self.component.on_message(src, msg)

    def shutdown(self) -> None:
        with self.lock:
            self.alive = False
        for t in self._timers:
            t.cancel()
        self._timers.clear()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass


class _TimerHandle:
    __slots__ = ("_timer",)

    def __init__(self, timer: threading.Timer):
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class TcpTransport:
    """A directory of TCP nodes on this machine."""

    def __init__(
        self,
        *,
        bind_ip: str = "127.0.0.1",
        host_name: str | None = None,
        advertise_ip: str | None = None,
    ):
        self.bind_ip = bind_ip
        #: the IP peers should dial back; defaults to the bind address
        self.advertise_ip = advertise_ip or bind_ip
        self.host_name = host_name or socket.gethostname()
        self.epoch = time.monotonic()
        self.nodes: dict[str, TcpNode] = {}
        self._directory: dict[str, tuple[str, int]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_node(
        self, address: str, component: Component, *, port: int = 0
    ) -> TcpNode:
        with self._lock:
            if address in self.nodes:
                raise TransportError(f"duplicate node address {address!r}")
            node = TcpNode(self, address, port)
            self.nodes[address] = node
            self._directory[address] = (self.bind_ip, node.port)
        node.component = component
        node.start()
        with node.lock:
            component.bind(node)
        return node

    def register_remote(self, address: str, ip: str, port: int) -> None:
        """Add a node living in another process to the directory."""
        with self._lock:
            self._directory[address] = (ip, port)

    def learn_peer(self, address: str, ip: str, port: int) -> None:
        """Record a sender's return path, never shadowing local nodes or
        explicit ``register_remote`` entries for local addresses."""
        with self._lock:
            if address in self.nodes:
                return  # local node: the directory entry is already right
            self._directory[address] = (ip, port)

    def resolve(self, address: str) -> tuple[str, int]:
        with self._lock:
            try:
                return self._directory[address]
            except KeyError:
                raise TransportError(f"unknown address {address!r}") from None

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            nodes = list(self.nodes.values())
        for node in nodes:
            node.shutdown()

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TcpSession:
    """:class:`repro.capi.Session` flavour for TCP deployments."""

    def __init__(self, client_node: TcpNode, timeout: float = 60.0):
        from ..core.client import NetSolveClient

        if not isinstance(client_node.component, NetSolveClient):
            raise TransportError("node does not host a NetSolveClient")
        self.node = client_node
        self.client = client_node.component
        self.timeout = timeout

    def submit(self, problem: str, args: list) -> Any:
        """Thread-safe submit through the node lock."""
        with self.node.lock:
            return self.client.submit(problem, args)

    def list_problems(self, prefix: str = "") -> Any:
        with self.node.lock:
            return self.client.list_problems(prefix)

    def drive_result(self, promise) -> Any:
        """Wait on a promise and return its value (CLI convenience)."""
        self.drive(promise)
        return promise.result()

    def drive(self, promise) -> None:
        if isinstance(promise, ThreadPromise):
            promise.wait(self.timeout)
        else:  # pragma: no cover - defensive
            deadline = time.monotonic() + self.timeout
            while not promise.done:
                if time.monotonic() > deadline:
                    raise TransportError("promise wait timed out")
                time.sleep(0.005)
