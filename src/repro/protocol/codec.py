"""Binary wire codec.

Explicit little-endian framing in the XDR spirit — type-tagged values,
raw ndarray buffers with dtype/shape headers, **no pickle anywhere** —
so a malicious peer can at worst produce a :class:`CodecError`, never
code execution.

Frame layout::

    magic   4 bytes  b"NSRV"
    version u16      PROTOCOL_VERSION
    type    u16      Message.TYPE_CODE
    length  u64      body byte count
    body    ...      encoded field dict

Value encoding is a tagged union (tag u8 + payload); containers nest.
Tuples encode as lists; dataclass messages restore declared tuple fields
on decode.

Zero-copy discipline.  The encoder is scatter/gather at heart:
:func:`encode_message_iov` returns a list of buffers — small fields
packed into one shared scratch ``bytearray``, large ndarray payloads
referenced as ``memoryview``\\ s of the (C-contiguous) array — so a
megabyte matrix is never duplicated just to frame it.  ``b"".join`` of
the parts is byte-identical to the single-buffer encoding, which
:func:`encode_message` produces with exactly one payload copy.
:func:`frame_size` walks the value tree summing tag/header/``nbytes``
analytically, materializing nothing, so the simulated wire can charge a
frame without serializing it.  On decode, frames held in a *writable*
buffer (``bytearray``) yield ndarrays aliasing that buffer — no payload
copy; read-only input (``bytes``) still copies so decoded arrays stay
writable either way.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from ..errors import CodecError
from .messages import MESSAGE_TYPES, DataHandle, Message, NodeOutput, ObjectRef

__all__ = [
    "PROTOCOL_VERSION",
    "encode_value",
    "decode_value",
    "encode_message",
    "encode_message_iov",
    "decode_message",
    "encoded_parts",
    "encoded_size",
    "frame_size",
    "MAGIC",
    "HEADER",
    "MAX_BODY",
]

PROTOCOL_VERSION = 1
MAGIC = b"NSRV"
HEADER = struct.Struct("<4sHHQ")

_T_NONE = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_STR = 4
_T_BYTES = 5
_T_LIST = 6
_T_DICT = 7
_T_NDARRAY = 8
_T_COMPLEX = 9
_T_OBJREF = 10
_T_HANDLE = 11
_T_NODEOUT = 12

_ALLOWED_DTYPES = {"float64", "int64", "complex128", "float32", "int32", "bool"}

# guards against absurd allocations from hostile length fields
_MAX_CONTAINER = 1_000_000
_MAX_NDIM = 8
_MAX_BODY = 1 << 34  # 16 GiB

#: public alias so transports can bound receive buffers before allocating
MAX_BODY = _MAX_BODY

#: payloads at least this large ride as their own iov entry instead of
#: being copied into the scratch buffer (below it, locality wins)
_IOV_PAYLOAD_MIN = 1024

_pack_i64 = struct.Struct("<q").pack
_pack_f64 = struct.Struct("<d").pack
_pack_c128 = struct.Struct("<dd").pack
_pack_u64 = struct.Struct("<Q").pack


def _pack_u32(n: int) -> bytes:
    return struct.pack("<I", n)


class _IovBuilder:
    """Accumulates an encoding as scratch-buffer runs + payload views.

    Scratch offsets are recorded as ``(start, end, None)`` and sliced
    only in :meth:`finish` — taking a ``memoryview`` of the scratch
    earlier would lock the bytearray against further appends.
    """

    __slots__ = ("scratch", "_segments", "_run_start")

    def __init__(self) -> None:
        self.scratch = bytearray()
        self._segments: list[tuple[int, int, Any]] = []
        self._run_start = 0

    def add_payload(self, buf) -> None:
        """Emit ``buf`` (bytes or a C-contiguous memoryview) in place."""
        end = len(self.scratch)
        if end > self._run_start:
            self._segments.append((self._run_start, end, None))
        self._segments.append((0, 0, buf))
        self._run_start = end

    def finish(self) -> list:
        end = len(self.scratch)
        if end > self._run_start:
            self._segments.append((self._run_start, end, None))
            self._run_start = end
        view = memoryview(self.scratch)
        return [
            view[s:e] if buf is None else buf
            for s, e, buf in self._segments
        ]


def _encode_iov(value: Any, b: _IovBuilder) -> None:
    """Append the tagged encoding of ``value`` to the builder."""
    out = b.scratch
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        iv = int(value)
        if not -(2**63) <= iv < 2**63:
            raise CodecError(f"integer out of i64 range: {iv}")
        out.append(_T_INT)
        out += _pack_i64(iv)
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += _pack_f64(float(value))
    elif isinstance(value, (complex, np.complexfloating)):
        out.append(_T_COMPLEX)
        cv = complex(value)
        out += _pack_c128(cv.real, cv.imag)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        if isinstance(value, memoryview) and not (
            value.c_contiguous and value.format == "B"
        ):
            value = bytes(value)
        nbytes = value.nbytes if isinstance(value, memoryview) else len(value)
        out.append(_T_BYTES)
        out += _pack_u32(nbytes)
        if nbytes >= _IOV_PAYLOAD_MIN:
            b.add_payload(bytes(value) if isinstance(value, bytearray) else value)
        else:
            out += value
    elif isinstance(value, np.ndarray):
        name = value.dtype.name
        if name not in _ALLOWED_DTYPES:
            raise CodecError(f"unsupported ndarray dtype {name!r}")
        if value.ndim > _MAX_NDIM:
            raise CodecError(f"ndarray rank {value.ndim} exceeds {_MAX_NDIM}")
        contig = np.ascontiguousarray(value)
        out.append(_T_NDARRAY)
        dname = name.encode("ascii")
        out.append(len(dname))
        out += dname
        out.append(contig.ndim)
        for dim in contig.shape:
            out += _pack_i64(dim)
        out += _pack_u64(contig.nbytes)
        if contig.nbytes >= _IOV_PAYLOAD_MIN:
            # the memoryview keeps ``contig`` alive until the parts are
            # consumed; no byte materialization happens here
            b.add_payload(memoryview(contig).cast("B"))
        elif contig.nbytes:
            out += memoryview(contig).cast("B")
    elif isinstance(value, ObjectRef):
        raw = value.key.encode("utf-8")
        out.append(_T_OBJREF)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, DataHandle):
        if len(value.shape) > _MAX_NDIM:
            raise CodecError(f"handle rank {len(value.shape)} exceeds {_MAX_NDIM}")
        out.append(_T_HANDLE)
        for text in (value.key, value.digest, value.server_id,
                     value.address, value.dtype):
            raw = text.encode("utf-8")
            out += _pack_u32(len(raw))
            out += raw
        out += _pack_u64(value.nbytes)
        out.append(len(value.shape))
        for dim in value.shape:
            out += _pack_i64(int(dim))
    elif isinstance(value, NodeOutput):
        raw = value.node.encode("utf-8")
        out.append(_T_NODEOUT)
        out += _pack_u32(len(raw))
        out += raw
        out += _pack_i64(value.index)
    elif isinstance(value, (list, tuple)):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        for item in value:
            _encode_iov(item, b)
    elif isinstance(value, dict):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        out.append(_T_DICT)
        out += _pack_u32(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            _encode_iov(key, b)
            _encode_iov(item, b)
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


def encode_value(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    b = _IovBuilder()
    _encode_iov(value, b)
    for part in b.finish():
        out += part


def encoded_parts(value: Any) -> list:
    """The tagged encoding of ``value`` as scatter/gather parts.

    Small fields share one scratch bytearray; each large ndarray payload
    is a ``memoryview`` of the (C-contiguous) array's own memory, so
    consumers that only *read* the encoding — content digests, checksums
    — never pay a serialization copy.  ``b"".join(parts)`` equals
    :func:`encode_value` byte for byte.
    """
    b = _IovBuilder()
    _encode_iov(value, b)
    return b.finish()


def encoded_size(value: Any) -> int:
    """Exact byte count :func:`encode_value` would produce — computed
    analytically, with the same validation, materializing no payloads."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 2
    if isinstance(value, (int, np.integer)):
        iv = int(value)
        if not -(2**63) <= iv < 2**63:
            raise CodecError(f"integer out of i64 range: {iv}")
        return 9
    if isinstance(value, (float, np.floating)):
        return 9
    if isinstance(value, (complex, np.complexfloating)):
        return 17
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, memoryview):
        return 5 + value.nbytes
    if isinstance(value, np.ndarray):
        name = value.dtype.name
        if name not in _ALLOWED_DTYPES:
            raise CodecError(f"unsupported ndarray dtype {name!r}")
        if value.ndim > _MAX_NDIM:
            raise CodecError(f"ndarray rank {value.ndim} exceeds {_MAX_NDIM}")
        # ascontiguousarray promotes 0-d to shape (1,) on the wire
        ndim = value.ndim or 1
        return 1 + 1 + len(name) + 1 + 8 * ndim + 8 + value.nbytes
    if isinstance(value, ObjectRef):
        return 5 + len(value.key.encode("utf-8"))
    if isinstance(value, DataHandle):
        if len(value.shape) > _MAX_NDIM:
            raise CodecError(f"handle rank {len(value.shape)} exceeds {_MAX_NDIM}")
        texts = sum(
            len(t.encode("utf-8"))
            for t in (value.key, value.digest, value.server_id,
                      value.address, value.dtype)
        )
        return 1 + 5 * 4 + texts + 8 + 1 + 8 * len(value.shape)
    if isinstance(value, NodeOutput):
        return 1 + 4 + len(value.node.encode("utf-8")) + 8
    if isinstance(value, (list, tuple)):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        return 5 + sum(encoded_size(item) for item in value)
    if isinstance(value, dict):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        total = 5
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            total += 5 + len(key.encode("utf-8")) + encoded_size(item)
        return total
    raise CodecError(f"cannot encode {type(value).__name__}")


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data):
        # a memoryview keeps per-``take`` slices copy-free whether the
        # frame arrived as bytes, bytearray or another view
        self.data = data if isinstance(data, memoryview) else memoryview(data)
        self.pos = 0

    def take(self, n: int) -> memoryview:
        if n < 0 or self.pos + n > len(self.data):
            raise CodecError("truncated frame")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise CodecError("truncated frame")
        byte = self.data[self.pos]
        self.pos += 1
        return byte

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def done(self) -> bool:
        return self.pos == len(self.data)


def _decode(reader: _Reader, depth: int = 0) -> Any:
    if depth > 32:
        raise CodecError("nesting too deep")
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        flag = reader.u8()
        if flag not in (0, 1):
            raise CodecError(f"bad bool byte {flag}")
        return bool(flag)
    if tag == _T_INT:
        return reader.i64()
    if tag == _T_FLOAT:
        return reader.f64()
    if tag == _T_COMPLEX:
        re_, im = struct.unpack("<dd", reader.take(16))
        return complex(re_, im)
    if tag == _T_STR:
        raw = reader.take(reader.u32())
        try:
            return bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad utf-8: {exc}") from None
    if tag == _T_BYTES:
        return bytes(reader.take(reader.u32()))
    if tag == _T_NDARRAY:
        try:
            dname = bytes(reader.take(reader.u8())).decode("ascii")
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad dtype name bytes: {exc}") from None
        if dname not in _ALLOWED_DTYPES:
            raise CodecError(f"unsupported ndarray dtype {dname!r}")
        ndim = reader.u8()
        if ndim > _MAX_NDIM:
            raise CodecError(f"ndarray rank {ndim} exceeds {_MAX_NDIM}")
        shape = tuple(reader.i64() for _ in range(ndim))
        if any(d < 0 for d in shape):
            raise CodecError(f"negative dimension in {shape}")
        nbytes = reader.u64()
        dtype = np.dtype(dname)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise CodecError(
                f"ndarray payload {nbytes} bytes, shape {shape} "
                f"implies {expected}"
            )
        raw = reader.take(nbytes)
        arr = np.frombuffer(raw, dtype=dtype).reshape(shape)
        if not arr.flags.writeable or not arr.flags.aligned:
            # copy only when forced: a read-only source buffer (bytes)
            # must not leak into mutable decoded arrays, and an array at
            # a misaligned frame offset would poison every downstream
            # BLAS call (unaligned loads are ~2x slower than one memcpy)
            arr = arr.copy()
        return arr
    if tag == _T_OBJREF:
        raw = reader.take(reader.u32())
        try:
            return ObjectRef(bytes(raw).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad utf-8 in object key: {exc}") from None
    if tag == _T_HANDLE:
        texts = []
        for _ in range(5):
            raw = reader.take(reader.u32())
            try:
                texts.append(bytes(raw).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise CodecError(f"bad utf-8 in handle: {exc}") from None
        key, digest, server_id, address, dtype = texts
        nbytes = reader.u64()
        ndim = reader.u8()
        if ndim > _MAX_NDIM:
            raise CodecError(f"handle rank {ndim} exceeds {_MAX_NDIM}")
        shape = tuple(reader.i64() for _ in range(ndim))
        if any(d < 0 for d in shape):
            raise CodecError(f"negative dimension in {shape}")
        return DataHandle(
            key=key, digest=digest, nbytes=nbytes, server_id=server_id,
            address=address, shape=shape, dtype=dtype,
        )
    if tag == _T_NODEOUT:
        raw = reader.take(reader.u32())
        try:
            node = bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad utf-8 in node reference: {exc}") from None
        return NodeOutput(node=node, index=reader.i64())
    if tag == _T_LIST:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CodecError("container too large")
        return [_decode(reader, depth + 1) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CodecError("container too large")
        out: dict[str, Any] = {}
        for _ in range(count):
            key = _decode(reader, depth + 1)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            out[key] = _decode(reader, depth + 1)
        return out
    raise CodecError(f"unknown tag {tag}")


def decode_value(data) -> Any:
    """Decode a single tagged value; the buffer must be fully consumed.

    ``data`` may be bytes, bytearray or a memoryview; ndarrays decoded
    from a *writable* buffer alias it instead of copying.
    """
    reader = _Reader(data)
    value = _decode(reader)
    if not reader.done():
        raise CodecError(
            f"{len(reader.data) - reader.pos} trailing byte(s) after value"
        )
    return value


# ----------------------------------------------------------------------
# message framing
# ----------------------------------------------------------------------
def encode_message_iov(msg: Message) -> list:
    """Scatter/gather encoding: header + body as a list of buffers.

    Small fields share one scratch bytearray; each large ndarray payload
    is a ``memoryview`` of the array's own memory.  ``b"".join(parts)``
    equals :func:`encode_message` byte for byte.  The views pin their
    arrays, so the parts stay valid as long as the list is referenced —
    but mutating a source array before the parts are consumed mutates
    the wire bytes.
    """
    if type(msg).TYPE_CODE not in MESSAGE_TYPES:
        raise CodecError(f"unregistered message type {type(msg).__name__}")
    b = _IovBuilder()
    b.scratch += bytes(HEADER.size)  # reserved; patched once sizes are known
    _encode_iov(msg.to_fields(), b)
    parts = b.finish()
    body_len = sum(
        part.nbytes if isinstance(part, memoryview) else len(part)
        for part in parts
    ) - HEADER.size
    HEADER.pack_into(
        b.scratch, 0, MAGIC, PROTOCOL_VERSION, type(msg).TYPE_CODE, body_len
    )
    return parts


def encode_message(msg: Message) -> bytes:
    """Encode a message into one framed byte string (a single payload
    copy — the join; the scatter/gather path avoids even that)."""
    return b"".join(encode_message_iov(msg))


def decode_message(data) -> Message:
    """Decode one framed message; the buffer must hold exactly one frame.

    Accepts bytes, bytearray or a memoryview.  When the buffer is
    writable (a ``bytearray``), decoded ndarrays alias it zero-copy; the
    arrays keep the buffer alive, so only hand in a buffer you will not
    recycle — or pass ``bytes`` to force owning copies.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    if len(view) < HEADER.size:
        raise CodecError(f"frame shorter than header ({len(view)} bytes)")
    magic, version, type_code, length = HEADER.unpack_from(view)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise CodecError(f"protocol version {version}, expected {PROTOCOL_VERSION}")
    if length > _MAX_BODY:
        raise CodecError(f"body length {length} exceeds limit")
    if len(view) != HEADER.size + length:
        raise CodecError(
            f"frame length mismatch: header says {length}, "
            f"got {len(view) - HEADER.size}"
        )
    cls = MESSAGE_TYPES.get(type_code)
    if cls is None:
        raise CodecError(f"unknown message type code {type_code}")
    fields = decode_value(view[HEADER.size :])
    if not isinstance(fields, dict):
        raise CodecError("message body is not a field dict")
    return cls.from_fields(fields)


def frame_size(msg: Message) -> int:
    """Byte count of the encoded frame (what the simulated wire charges),
    computed analytically — no payload is serialized or copied."""
    if type(msg).TYPE_CODE not in MESSAGE_TYPES:
        raise CodecError(f"unregistered message type {type(msg).__name__}")
    return HEADER.size + encoded_size(msg.to_fields())
