"""Binary wire codec.

Explicit little-endian framing in the XDR spirit — type-tagged values,
raw ndarray buffers with dtype/shape headers, **no pickle anywhere** —
so a malicious peer can at worst produce a :class:`CodecError`, never
code execution.

Frame layout::

    magic   4 bytes  b"NSRV"
    version u16      PROTOCOL_VERSION
    type    u16      Message.TYPE_CODE
    length  u64      body byte count
    body    ...      encoded field dict

Value encoding is a tagged union (tag u8 + payload); containers nest.
Tuples encode as lists; dataclass messages restore declared tuple fields
on decode.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from ..errors import CodecError
from .messages import MESSAGE_TYPES, Message, ObjectRef

__all__ = [
    "PROTOCOL_VERSION",
    "encode_value",
    "decode_value",
    "encode_message",
    "decode_message",
    "frame_size",
    "MAGIC",
    "HEADER",
]

PROTOCOL_VERSION = 1
MAGIC = b"NSRV"
HEADER = struct.Struct("<4sHHQ")

_T_NONE = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_STR = 4
_T_BYTES = 5
_T_LIST = 6
_T_DICT = 7
_T_NDARRAY = 8
_T_COMPLEX = 9
_T_OBJREF = 10

_ALLOWED_DTYPES = {"float64", "int64", "complex128", "float32", "int32", "bool"}

# guards against absurd allocations from hostile length fields
_MAX_CONTAINER = 1_000_000
_MAX_NDIM = 8
_MAX_BODY = 1 << 34  # 16 GiB


def _pack_u32(n: int) -> bytes:
    return struct.pack("<I", n)


def encode_value(value: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, (int, np.integer)):
        iv = int(value)
        if not -(2**63) <= iv < 2**63:
            raise CodecError(f"integer out of i64 range: {iv}")
        out.append(_T_INT)
        out += struct.pack("<q", iv)
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += struct.pack("<d", float(value))
    elif isinstance(value, (complex, np.complexfloating)):
        out.append(_T_COMPLEX)
        cv = complex(value)
        out += struct.pack("<dd", cv.real, cv.imag)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, np.ndarray):
        name = value.dtype.name
        if name not in _ALLOWED_DTYPES:
            raise CodecError(f"unsupported ndarray dtype {name!r}")
        if value.ndim > _MAX_NDIM:
            raise CodecError(f"ndarray rank {value.ndim} exceeds {_MAX_NDIM}")
        contig = np.ascontiguousarray(value)
        out.append(_T_NDARRAY)
        dname = name.encode("ascii")
        out.append(len(dname))
        out += dname
        out.append(contig.ndim)
        for dim in contig.shape:
            out += struct.pack("<q", dim)
        raw = contig.tobytes()
        out += struct.pack("<Q", len(raw))
        out += raw
    elif isinstance(value, ObjectRef):
        raw = value.key.encode("utf-8")
        out.append(_T_OBJREF)
        out += _pack_u32(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        out.append(_T_LIST)
        out += _pack_u32(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        if len(value) > _MAX_CONTAINER:
            raise CodecError("container too large")
        out.append(_T_DICT)
        out += _pack_u32(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            encode_value(key, out)
            encode_value(item, out)
    else:
        raise CodecError(f"cannot encode {type(value).__name__}")


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise CodecError("truncated frame")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def done(self) -> bool:
        return self.pos == len(self.data)


def _decode(reader: _Reader, depth: int = 0) -> Any:
    if depth > 32:
        raise CodecError("nesting too deep")
    tag = reader.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_BOOL:
        flag = reader.u8()
        if flag not in (0, 1):
            raise CodecError(f"bad bool byte {flag}")
        return bool(flag)
    if tag == _T_INT:
        return reader.i64()
    if tag == _T_FLOAT:
        return reader.f64()
    if tag == _T_COMPLEX:
        re_, im = struct.unpack("<dd", reader.take(16))
        return complex(re_, im)
    if tag == _T_STR:
        raw = reader.take(reader.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad utf-8: {exc}") from None
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_NDARRAY:
        try:
            dname = reader.take(reader.u8()).decode("ascii")
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad dtype name bytes: {exc}") from None
        if dname not in _ALLOWED_DTYPES:
            raise CodecError(f"unsupported ndarray dtype {dname!r}")
        ndim = reader.u8()
        if ndim > _MAX_NDIM:
            raise CodecError(f"ndarray rank {ndim} exceeds {_MAX_NDIM}")
        shape = tuple(reader.i64() for _ in range(ndim))
        if any(d < 0 for d in shape):
            raise CodecError(f"negative dimension in {shape}")
        nbytes = reader.u64()
        dtype = np.dtype(dname)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise CodecError(
                f"ndarray payload {nbytes} bytes, shape {shape} "
                f"implies {expected}"
            )
        raw = reader.take(nbytes)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == _T_OBJREF:
        raw = reader.take(reader.u32())
        try:
            return ObjectRef(raw.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise CodecError(f"bad utf-8 in object key: {exc}") from None
    if tag == _T_LIST:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CodecError("container too large")
        return [_decode(reader, depth + 1) for _ in range(count)]
    if tag == _T_DICT:
        count = reader.u32()
        if count > _MAX_CONTAINER:
            raise CodecError("container too large")
        out: dict[str, Any] = {}
        for _ in range(count):
            key = _decode(reader, depth + 1)
            if not isinstance(key, str):
                raise CodecError("dict key is not a string")
            out[key] = _decode(reader, depth + 1)
        return out
    raise CodecError(f"unknown tag {tag}")


def decode_value(data: bytes) -> Any:
    """Decode a single tagged value; the buffer must be fully consumed."""
    reader = _Reader(data)
    value = _decode(reader)
    if not reader.done():
        raise CodecError(
            f"{len(data) - reader.pos} trailing byte(s) after value"
        )
    return value


# ----------------------------------------------------------------------
# message framing
# ----------------------------------------------------------------------
def encode_message(msg: Message) -> bytes:
    """Encode a message into one framed byte string."""
    if type(msg).TYPE_CODE not in MESSAGE_TYPES:
        raise CodecError(f"unregistered message type {type(msg).__name__}")
    body = bytearray()
    encode_value(msg.to_fields(), body)
    header = HEADER.pack(MAGIC, PROTOCOL_VERSION, type(msg).TYPE_CODE, len(body))
    return header + bytes(body)


def decode_message(data: bytes) -> Message:
    """Decode one framed message; the buffer must hold exactly one frame."""
    if len(data) < HEADER.size:
        raise CodecError(f"frame shorter than header ({len(data)} bytes)")
    magic, version, type_code, length = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise CodecError(f"protocol version {version}, expected {PROTOCOL_VERSION}")
    if length > _MAX_BODY:
        raise CodecError(f"body length {length} exceeds limit")
    if len(data) != HEADER.size + length:
        raise CodecError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - HEADER.size}"
        )
    cls = MESSAGE_TYPES.get(type_code)
    if cls is None:
        raise CodecError(f"unknown message type code {type_code}")
    fields = decode_value(data[HEADER.size :])
    if not isinstance(fields, dict):
        raise CodecError("message body is not a field dict")
    return cls.from_fields(fields)


def frame_size(msg: Message) -> int:
    """Byte count of the encoded frame (what the simulated wire charges)."""
    return len(encode_message(msg))
