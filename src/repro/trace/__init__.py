"""Structured event tracing, live metrics/spans, and experiment stats."""

from .events import EventLog, TraceEvent
from .gantt import render_gantt, server_busy_intervals
from .instruments import (
    BYTES_BUCKETS,
    Counter,
    ERROR_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    SECONDS_BUCKETS,
    render_snapshot,
)
from .metrics import (
    format_table,
    percentile,
    request_stats,
    RequestStats,
    time_average,
    mean_abs_error_vs_truth,
)
from .spans import RequestSpan, SpanLog, SpanPhase

__all__ = [
    "EventLog",
    "TraceEvent",
    "render_gantt",
    "server_busy_intervals",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "render_snapshot",
    "SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "ERROR_SECONDS_BUCKETS",
    "RequestSpan",
    "SpanLog",
    "SpanPhase",
    "format_table",
    "percentile",
    "request_stats",
    "RequestStats",
    "time_average",
    "mean_abs_error_vs_truth",
]
