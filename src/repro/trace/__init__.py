"""Structured event tracing and experiment metrics."""

from .events import EventLog, TraceEvent
from .gantt import render_gantt, server_busy_intervals
from .metrics import (
    format_table,
    percentile,
    request_stats,
    RequestStats,
    time_average,
    mean_abs_error_vs_truth,
)

__all__ = [
    "EventLog",
    "TraceEvent",
    "render_gantt",
    "server_busy_intervals",
    "format_table",
    "percentile",
    "request_stats",
    "RequestStats",
    "time_average",
    "mean_abs_error_vs_truth",
]
