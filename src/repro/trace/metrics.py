"""Experiment metrics and table rendering.

Small, dependency-free helpers the benchmark harness shares: request
statistics (makespan, percentiles), time-averaging of step signals,
tracking-error between a ground-truth signal and a sampled belief, and
fixed-width table formatting so every bench prints paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.request import RequestRecord, RequestStatus

__all__ = [
    "percentile",
    "RequestStats",
    "request_stats",
    "time_average",
    "mean_abs_error_vs_truth",
    "format_table",
]


def percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


@dataclass(frozen=True)
class RequestStats:
    count: int
    completed: int
    failed: int
    makespan: float
    mean_seconds: float
    median_seconds: float
    p95_seconds: float
    total_retries: int

    def row(self) -> list:
        return [
            self.count,
            self.completed,
            self.failed,
            f"{self.makespan:.2f}",
            f"{self.mean_seconds:.2f}",
            f"{self.p95_seconds:.2f}",
            self.total_retries,
        ]


def request_stats(records: Iterable[RequestRecord]) -> RequestStats:
    """Aggregate a batch of finished request records."""
    recs = list(records)
    if not recs:
        raise ValueError("no records")
    done = [r for r in recs if r.status is RequestStatus.DONE]
    failed = [r for r in recs if r.status is RequestStatus.FAILED]
    times = [r.total_seconds for r in done if r.total_seconds is not None]
    if times:
        makespan = max(r.t_done - min(x.t_submit for x in recs) for r in done)
        mean = float(np.mean(times))
        median = float(np.median(times))
        p95 = percentile(times, 95)
    else:
        makespan = mean = median = p95 = float("nan")
    return RequestStats(
        count=len(recs),
        completed=len(done),
        failed=len(failed),
        makespan=makespan,
        mean_seconds=mean,
        median_seconds=median,
        p95_seconds=p95,
        total_retries=sum(r.retries for r in recs),
    )


def time_average(
    history: Sequence[tuple[float, float]], t0: float, t1: float
) -> float:
    """Time-average of a right-continuous step signal over [t0, t1]."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    if not history:
        raise ValueError("empty history")
    total = 0.0
    # value in effect at t0
    current = None
    for when, value in history:
        if when <= t0:
            current = value
        else:
            break
    cursor = t0
    for when, value in history:
        if when <= t0:
            continue
        if when >= t1:
            break
        if current is not None:
            total += current * (when - cursor)
        cursor = when
        current = value
    if current is not None:
        total += current * (t1 - cursor)
    return total / (t1 - t0)


def mean_abs_error_vs_truth(
    truth: Sequence[tuple[float, float]],
    belief: Sequence[tuple[float, float]],
    t0: float,
    t1: float,
    *,
    samples: int = 2000,
) -> float:
    """Mean |truth(t) - belief(t)| over [t0, t1], sampled densely.

    Both signals are step functions given as (time, value) points; the
    belief before its first point counts as its first value.
    """
    if not truth or not belief:
        raise ValueError("empty signal")
    ts = np.linspace(t0, t1, samples, endpoint=False)

    def step_at(sig: Sequence[tuple[float, float]], t: float) -> float:
        value = sig[0][1]
        for when, v in sig:
            if when <= t:
                value = v
            else:
                break
        return value

    errs = [abs(step_at(truth, t) - step_at(belief, t)) for t in ts]
    return float(np.mean(errs))


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str = ""
) -> str:
    """Fixed-width ASCII table (right-aligned numeric-ish columns)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
