"""Operational metrics: counters, gauges and fixed-bucket histograms.

This is the *live* half of the trace package.  :mod:`repro.trace.metrics`
computes post-hoc experiment statistics from finished request records;
the :class:`MetricsRegistry` here is attached to running components
(client, agent, server, transports) and accumulates counts as the system
executes — the request-lifecycle observability layer.

Design constraints, in order:

* **zero-cost when absent** — components hold pre-resolved instrument
  bundles and guard every hook with one ``is not None`` check; no name
  lookup, no dict churn, no allocation on the hot paths;
* **snapshot-friendly** — :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-able dict, :func:`render_snapshot` turns any snapshot
  (live or loaded from disk) into the same fixed-width text report;
* **dependency-free** — instruments are plain Python with ``bisect``;
  nothing here imports numpy or the core components.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterator, Optional

from ..errors import NetSolveError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "render_snapshot",
    "SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "ERROR_SECONDS_BUCKETS",
]

#: latency-flavoured buckets (seconds), spanning sim RTTs to batch runs
SECONDS_BUCKETS = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0, 3600.0,
)
#: wire-frame sizes (bytes): header-only control messages to big operands
BYTES_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 1 << 20, 1 << 24)
#: signed predicted-vs-actual completion error (seconds); negative means
#: the predictor overestimated
ERROR_SECONDS_BUCKETS = (
    -60.0, -10.0, -1.0, -0.1, 0.0, 0.1, 1.0, 10.0, 60.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depths, in-flight requests)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with count/total/min/max.

    ``bounds`` are ascending upper bucket edges (``le`` semantics); one
    implicit overflow bucket catches everything beyond the last edge.
    """

    __slots__ = ("name", "help", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: tuple = SECONDS_BUCKETS,
                 help: str = ""):
        if not bounds or list(bounds) != sorted(bounds):
            raise NetSolveError(
                f"histogram {name!r}: bounds must be ascending and non-empty"
            )
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    A name belongs to exactly one instrument type for the registry's
    lifetime; re-requesting it returns the same object, so several
    components may share (say) one ``wire.bytes_sent`` counter.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, kind, name: str, *args, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise NetSolveError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        instrument = kind(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, bounds: tuple = SECONDS_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get(Histogram, name, bounds, help)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def get(self, name: str):
        """Look an instrument up by name (None when absent)."""
        return self._instruments.get(name)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able view of every instrument, names sorted."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.value
            elif isinstance(inst, Gauge):
                gauges[name] = inst.value
            else:
                assert isinstance(inst, Histogram)
                histograms[name] = {
                    "count": inst.count,
                    "total": inst.total,
                    "min": inst.min,
                    "max": inst.max,
                    "mean": inst.mean,
                    "buckets": [
                        {"le": le, "count": c}
                        for le, c in zip(inst.bounds, inst.counts)
                    ],
                    "overflow": inst.counts[-1],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def report(self) -> str:
        return render_snapshot(self.snapshot())


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_snapshot(snapshot: dict) -> str:
    """Fixed-width text report from a :meth:`MetricsRegistry.snapshot`
    dict (works equally on one loaded back from JSON)."""
    from .metrics import format_table  # table renderer lives with the stats

    sections: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        sections.append(format_table(
            ["counter", "value"],
            [[k, v] for k, v in counters.items()],
            title="counters",
        ))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        sections.append(format_table(
            ["gauge", "value"],
            [[k, _fmt(v)] for k, v in gauges.items()],
            title="gauges",
        ))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, h in histograms.items():
            rows.append([
                name, h["count"], _fmt(h["mean"]), _fmt(h["min"]),
                _fmt(h["max"]), _fmt(h["total"]),
            ])
        sections.append(format_table(
            ["histogram", "count", "mean", "min", "max", "total"],
            rows,
            title="histograms",
        ))
        detail = []
        for name, h in histograms.items():
            if not h["count"]:
                continue
            cells = [
                f"le{b['le']:g}:{b['count']}"
                for b in h["buckets"] if b["count"]
            ]
            if h["overflow"]:
                cells.append(f"inf:{h['overflow']}")
            detail.append(f"  {name}: " + " ".join(cells))
        if detail:
            sections.append("bucket detail (non-empty buckets)\n"
                            + "\n".join(detail))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)


class Observability:
    """One bundle wiring a deployment for metrics *and* spans.

    Pass an instance to :func:`repro.testbed.build_testbed` (or hand
    ``.metrics`` / ``.spans`` to components directly) and every role
    reports into it; ``snapshot()``/``report()`` dump the whole run.
    """

    def __init__(self) -> None:
        from .spans import SpanLog

        self.metrics = MetricsRegistry()
        self.spans = SpanLog()

    def snapshot(self, *, max_spans: int | None = None) -> dict:
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.snapshot(limit=max_spans),
        }

    def to_json(self, *, indent: int = 2, max_spans: int | None = None) -> str:
        return json.dumps(self.snapshot(max_spans=max_spans), indent=indent)

    def report(self, *, max_spans: int = 0) -> str:
        """Text report; ``max_spans`` > 0 appends span timelines."""
        out = self.metrics.report()
        if max_spans:
            timelines = self.spans.render(limit=max_spans)
            if timelines:
                out += "\n\nrequest spans\n" + timelines
        return out
