"""ASCII Gantt rendering of request timelines.

Turns a batch of :class:`~repro.core.request.RequestRecord`\\ s into a
terminal-width occupancy chart — one row per server, one glyph per time
bucket — so examples and postmortems can *see* how a farm spread, where
a crash opened a hole, and which server carried the tail.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.request import RequestRecord

__all__ = ["render_gantt", "server_busy_intervals"]

_GLYPHS = "▁▂▃▄▅▆▇█"


def server_busy_intervals(
    records: Iterable[RequestRecord],
) -> dict[str, list[tuple[float, float]]]:
    """Per-server ``(start, end)`` intervals of attempt activity.

    Every attempt with both endpoints counts, including failed ones —
    a timeout still occupied the wire and (maybe) the server.
    """
    out: dict[str, list[tuple[float, float]]] = {}
    for record in records:
        for attempt in record.attempts:
            if attempt.t_end is None:
                continue
            out.setdefault(attempt.server_id, []).append(
                (attempt.t_sent, attempt.t_end)
            )
    for intervals in out.values():
        intervals.sort()
    return out


def render_gantt(
    records: Sequence[RequestRecord],
    *,
    width: int = 72,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Render per-server occupancy over [t0, t1] as ASCII art.

    Each column is a time bucket; the glyph height encodes how many
    request-attempts overlapped that server in that bucket (saturating
    at 8).  Returns a multi-line string.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    intervals = server_busy_intervals(records)
    if not intervals:
        return "(no completed attempts to render)"
    all_points = [t for iv in intervals.values() for pair in iv for t in pair]
    lo = min(all_points) if t0 is None else t0
    hi = max(all_points) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    bucket = (hi - lo) / width

    lines = []
    label_width = max(len(s) for s in intervals) + 1
    for server_id in sorted(intervals):
        counts = [0] * width
        for start, end in intervals[server_id]:
            first = max(0, int((start - lo) / bucket))
            last = min(width - 1, int((end - lo) / bucket))
            for i in range(first, last + 1):
                counts[i] += 1
        row = "".join(
            " " if c == 0 else _GLYPHS[min(c, len(_GLYPHS)) - 1]
            for c in counts
        )
        lines.append(f"{server_id.rjust(label_width)} |{row}|")
    axis = f"{'':>{label_width}} +{'-' * width}+"
    scale = (
        f"{'':>{label_width}}  {lo:<12.2f}{'':^{max(0, width - 24)}}{hi:>12.2f}"
    )
    return "\n".join([*lines, axis, scale])
