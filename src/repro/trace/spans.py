"""Per-request spans: the lifecycle of one request as timed phases.

A :class:`RequestSpan` is opened when the client accepts a request and
closed when its promise settles; in between the client opens one phase
at a time — ``describe`` → ``query`` → ``attempt`` (repeated on retry)
— so the span reads as a timeline of where the request's wall-clock
went.  Phases carry free-form fields (server id, predicted seconds,
outcome) and at most one phase is open per span, mirroring the client's
own single-threaded request state machine.

Like the :class:`~repro.trace.events.EventLog`, nothing on a hot path
ever *reads* a span; recording appends to lists and assigns floats.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Any, Iterator, Optional

__all__ = ["SpanPhase", "RequestSpan", "SpanLog"]


class SpanPhase:
    """One timed slice of a request's life."""

    __slots__ = ("name", "t_start", "t_end", "fields")

    def __init__(self, name: str, t_start: float, fields: dict):
        self.name = name
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.fields = fields

    @property
    def elapsed(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            **({"fields": self.fields} if self.fields else {}),
        }


class RequestSpan:
    """Timeline of one request, from acceptance to settlement."""

    __slots__ = ("request_id", "problem", "source", "t_start", "t_end",
                 "status", "error", "phases", "_open")

    def __init__(
        self, request_id: int, problem: str, source: str, t_start: float
    ):
        self.request_id = request_id
        self.problem = problem
        #: which client (or component) owns the request
        self.source = source
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.status = "active"
        self.error = ""
        self.phases: list[SpanPhase] = []
        self._open: Optional[SpanPhase] = None

    # ------------------------------------------------------------------
    def begin_phase(self, name: str, t: float, **fields: Any) -> SpanPhase:
        """Open a phase, closing any phase still open at the same time."""
        if self._open is not None:
            self.end_phase(t)
        phase = SpanPhase(name, t, fields)
        self.phases.append(phase)
        self._open = phase
        return phase

    def end_phase(self, t: float, **fields: Any) -> None:
        if self._open is None:
            return
        self._open.t_end = t
        if fields:
            self._open.fields.update(fields)
        self._open = None

    def finish(self, t: float, status: str, *, error: str = "") -> None:
        self.end_phase(t)
        self.t_end = t
        self.status = status
        self.error = error

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.t_end is not None

    @property
    def total_seconds(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "problem": self.problem,
            "source": self.source,
            "status": self.status,
            "t_start": self.t_start,
            "t_end": self.t_end,
            **({"error": self.error} if self.error else {}),
            "phases": [p.to_dict() for p in self.phases],
        }

    def timeline(self) -> str:
        """Human-readable per-phase rendering (times relative to start)."""
        total = self.total_seconds
        head = (
            f"req {self.request_id} {self.problem} [{self.source}] "
            f"{self.status}"
            + (f" total={total:.3f}s" if total is not None else "")
            + (f" error={self.error!r}" if self.error else "")
        )
        lines = [head]
        for phase in self.phases:
            start = phase.t_start - self.t_start
            end = (
                f"{phase.t_end - self.t_start:8.3f}"
                if phase.t_end is not None else "    ... "
            )
            fields = "".join(
                f" {k}={v!r}" if isinstance(v, str) else f" {k}={v}"
                for k, v in phase.fields.items()
            )
            lines.append(f"  {start:8.3f} -> {end}  {phase.name}{fields}")
        return "\n".join(lines)


class SpanLog:
    """Append-only collection of request spans.

    Two load knobs keep span recording cheap at million-request scale
    (both default off, preserving record-everything behaviour):

    * ``sample_every=N`` records one request span in every N ``begin``
      calls and returns ``None`` for the rest — recorders already guard
      on the returned span, so a sampled-out request costs one counter
      increment and nothing else;
    * ``max_spans=N`` bounds the log to the newest N spans (a ring:
      old spans fall off the front as new ones arrive).
    """

    def __init__(self, *, sample_every: int = 1, max_spans: int = 0) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if max_spans < 0:
            raise ValueError("max_spans must be >= 0")
        # a bounded log is a deque ring: appends past the cap evict the
        # oldest span in O(1) instead of shifting a list
        self.spans = (
            deque(maxlen=max_spans) if max_spans else []
        )  # type: ignore[assignment]
        self.sample_every = sample_every
        self.max_spans = max_spans
        #: ``begin`` calls seen, recorded or not (the sampling base)
        self.offered = 0

    def begin(
        self, request_id: int, problem: str, source: str, t: float
    ) -> Optional[RequestSpan]:
        self.offered += 1
        if self.sample_every > 1 and (self.offered - 1) % self.sample_every:
            return None
        span = RequestSpan(request_id, problem, source, t)
        self.spans.append(span)
        return span

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[RequestSpan]:
        return iter(self.spans)

    def find(self, request_id: int, *, source: str | None = None):
        """The span for one request id (newest first on collisions)."""
        for span in reversed(self.spans):
            if span.request_id != request_id:
                continue
            if source is not None and span.source != source:
                continue
            return span
        return None

    def snapshot(self, *, limit: int | None = None) -> list[dict]:
        spans = self.spans if limit is None else islice(self.spans, limit)
        return [s.to_dict() for s in spans]

    def render(self, *, limit: int | None = None) -> str:
        spans = self.spans if limit is None else islice(self.spans, limit)
        return "\n".join(s.timeline() for s in spans)

    def clear(self) -> None:
        self.spans.clear()
