"""Structured event log.

Components emit typed events (``kind`` + free-form fields) into a shared
append-only log.  Benchmarks and tests filter it instead of scraping
stdout; nothing in the system ever *reads* the log on its hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "EventLog"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    source: str
    kind: str
    fields: dict

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class EventLog:
    """Append-only event collection with simple filtering."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def log(self, time: float, source: str, kind: str, **fields: Any) -> None:
        self.events.append(TraceEvent(time, source, kind, fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(
        self,
        *,
        kind: str | None = None,
        source: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if source is not None and ev.source != source:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for ev in self.events if ev.kind == kind)

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        self.events.clear()
