"""Request farming: embarrassingly parallel fan-out over the server pool.

The original system's MATLAB users "farmed" independent problem
instances — parameter sweeps, Monte-Carlo batches — by firing
non-blocking requests and collecting them later; the agent's MCT
scheduling then spread the batch over every capable server.  This module
packages that pattern: submit a batch, wait, slice results, aggregate
statistics.  It is pure client-side sugar: one ``submit`` per instance,
no new protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .core.client import NetSolveClient, RequestHandle
from .core.request import RequestRecord, RequestStatus
from .errors import BadArgumentsError, FarmNotFinished, RequestFailed
from .trace.metrics import RequestStats, request_stats

__all__ = ["FarmResult", "submit_farm"]


@dataclass
class FarmResult:
    """Handles and records of one farmed batch."""

    problem: str
    handles: list[RequestHandle]

    # ------------------------------------------------------------------
    @property
    def records(self) -> list[RequestRecord]:
        return [h.record for h in self.handles]

    @property
    def done(self) -> bool:
        return all(h.done for h in self.handles)

    @property
    def completed(self) -> list[RequestHandle]:
        return [h for h in self.handles if h.status is RequestStatus.DONE]

    @property
    def failed(self) -> list[RequestHandle]:
        return [h for h in self.handles if h.status is RequestStatus.FAILED]

    def results(self) -> list[tuple]:
        """Output tuples in submission order.

        Raises :class:`RequestFailed` if any instance failed — use
        :attr:`completed`/:attr:`failed` for partial collection.
        """
        out = []
        for h in self.handles:
            if h.status is not RequestStatus.DONE:
                raise RequestFailed(
                    h.request_id,
                    f"farm instance {h.request_id} is "
                    f"{h.status.value}: {h.record.error}",
                )
            out.append(h.result())
        return out

    def stats(self) -> RequestStats:
        return request_stats(self.records)

    def servers_used(self) -> dict[str, int]:
        """How many instances each server completed (load-spread view)."""
        counts: dict[str, int] = {}
        for record in self.records:
            sid = record.server_id
            if sid is not None:
                counts[sid] = counts.get(sid, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def makespan(self) -> float:
        """Submission of the first to completion of the last (virtual s).

        Raises :class:`FarmNotFinished` (carrying the still-pending
        request ids) when any instance has not completed yet.
        """
        records = self.records
        still_pending = tuple(
            h.request_id for h in self.handles if h.record.t_done is None
        )
        if still_pending:
            raise FarmNotFinished(still_pending)
        start = min(r.t_submit for r in records)
        return max(r.t_done for r in records) - start


def submit_farm(
    client: NetSolveClient,
    problem: str,
    args_list: Iterable[Sequence[Any]],
) -> FarmResult:
    """Fire one request per argument tuple; returns immediately.

    Drive completion with ``Testbed.wait_all(result.handles)`` in
    simulation, or by waiting each handle's promise on a live transport.

    Raises :class:`~repro.errors.BadArgumentsError` on an empty
    ``args_list`` — a caller error, detected *before* anything is
    submitted (no request, no fabricated request id).
    """
    batch = list(args_list)
    if not batch:
        raise BadArgumentsError(
            f"farm over {problem!r}: args_list is empty"
        )
    handles = [client.submit(problem, args) for args in batch]
    return FarmResult(problem=problem, handles=handles)
