"""Configuration dataclasses for agents, servers, clients and the simulator.

All configs are frozen dataclasses validated at construction time, so an
invalid deployment fails fast with :class:`repro.errors.ConfigError` rather
than deep inside the event loop.  Defaults correspond to the mid-1990s
environment the paper describes: Ethernet-class links, workstation-class
hosts rated in Mflop/s, UNIX load averages sampled on the order of tens of
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .errors import ConfigError

__all__ = [
    "WorkloadPolicy",
    "AgentConfig",
    "ServerConfig",
    "ClientConfig",
    "SimConfig",
]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigError(message)


@dataclass(frozen=True)
class WorkloadPolicy:
    """Hysteretic workload-broadcast policy of a computational server.

    Every ``time_step`` seconds the server samples its load average and
    broadcasts it to the agent *only if* it moved by more than
    ``threshold`` (absolute load-average units, scaled by 100 as in the
    original: a load of 1.0 is reported as 100) since the last broadcast.
    A ``forced_interval`` acts as a liveness floor: even an unchanged
    workload is re-broadcast at least that often so the agent can detect
    silent death.
    """

    time_step: float = 10.0
    threshold: float = 10.0
    forced_interval: float = 300.0

    def __post_init__(self) -> None:
        _require(self.time_step > 0, "workload time_step must be positive")
        _require(self.threshold >= 0, "workload threshold must be >= 0")
        _require(
            self.forced_interval >= self.time_step,
            "forced_interval must be >= time_step",
        )


@dataclass(frozen=True)
class AgentConfig:
    """Agent behaviour knobs."""

    #: how many ranked candidate servers to return per query
    candidate_list_length: int = 3
    #: seconds with no workload report before a server is marked suspect
    liveness_timeout: float = 900.0
    #: scheduling policy name, resolved via :mod:`repro.core.scheduler`
    policy: str = "mct"
    #: assumed workload (0-100 scale) for servers that never reported
    default_workload: float = 0.0
    #: ping suspect servers this often so false suspects (e.g. a lost
    #: reply blamed on the server) rejoin quickly; 0 disables probing
    suspect_probe_interval: float = 30.0
    #: workload units (100 = 1.0 load average) added to a server's view
    #: when a client reports it Busy — re-balances the MCT ranking away
    #: from saturated servers without marking them dead
    busy_penalty_workload: float = 100.0
    #: seconds a busy penalty stays in force before it decays; 0 turns
    #: busy reports into pure telemetry (no ranking effect)
    busy_penalty_seconds: float = 30.0
    #: hot result-cache entries (answers repeat solves at one RTT from
    #: servers' CacheInsert publications); 0 disables the cache
    cache_entries: int = 0
    #: seconds before a hot cache entry expires; 0 = LRU bound only
    cache_ttl: float = 0.0
    #: per-entry size cap (encoded output bytes) for accepted inserts —
    #: the agent must stay cheap per query, so only small results qualify
    cache_entry_bytes: int = 64 * 1024
    #: consistent-hash query sharding across a peered agent fleet: a
    #: query landing on a non-owner hops once to the problem's shard
    #: owner (False keeps every agent answering every query locally)
    shard: bool = False
    #: anti-entropy interval (seconds) between peered agents: each agent
    #: periodically sends fingerprints of its directly-registered
    #: servers so peers that missed a mirror pull the entries and heal;
    #: 0 disables replication repair entirely
    sync_interval: float = 60.0
    #: seconds to wait for a peer to answer a SyncPull before resending
    sync_pull_timeout: float = 15.0
    #: SyncPull attempts per digest round before giving up (harmless:
    #: the next digest round starts a fresh pull)
    sync_pull_retries: int = 2

    def __post_init__(self) -> None:
        _require(self.candidate_list_length >= 1, "candidate_list_length must be >= 1")
        _require(self.liveness_timeout > 0, "liveness_timeout must be positive")
        _require(self.default_workload >= 0, "default_workload must be >= 0")
        _require(
            self.suspect_probe_interval >= 0,
            "suspect_probe_interval must be >= 0",
        )
        _require(
            self.busy_penalty_workload >= 0,
            "busy_penalty_workload must be >= 0",
        )
        _require(
            self.busy_penalty_seconds >= 0,
            "busy_penalty_seconds must be >= 0",
        )
        _require(self.cache_entries >= 0, "cache_entries must be >= 0")
        _require(self.cache_ttl >= 0, "cache_ttl must be >= 0")
        _require(self.cache_entry_bytes >= 0, "cache_entry_bytes must be >= 0")
        _require(self.sync_interval >= 0, "sync_interval must be >= 0")
        _require(
            self.sync_pull_timeout > 0, "sync_pull_timeout must be positive"
        )
        _require(self.sync_pull_retries >= 1, "sync_pull_retries must be >= 1")


@dataclass(frozen=True)
class ServerConfig:
    """Computational-server behaviour knobs."""

    workload: WorkloadPolicy = field(default_factory=WorkloadPolicy)
    #: maximum requests executing concurrently — the server's *slot*
    #: count, advertised to the agent and bounding in-flight admissions
    #: (1 = the paper's fork model serialized; >1 a multi-CPU server)
    max_concurrent: int = 1
    #: admission cap on the FIFO queue: past this many waiting requests
    #: the server sheds with a retryable ``Busy`` reply instead of
    #: queueing unboundedly; 0 = unbounded (the pre-overload behaviour).
    #: Total admitted work is therefore max_queue + max_concurrent.
    max_queue: int = 0
    #: re-register with the agent at this interval (seconds); 0 disables
    reregister_interval: float = 0.0
    #: byte budget of the request-sequencing object cache
    object_cache_bytes: int = 256 * 1024 * 1024
    #: compute-pool threads on threaded transports; 0 = match
    #: max_concurrent (the pool never needs more threads than slots)
    workers: int = 0
    #: execution lane: "thread" (kernels release the GIL in BLAS) or
    #: "process" (opt-in for GIL-bound handlers; threaded transports only)
    executor: str = "thread"
    #: micro-batching: while all slots are busy, up to this many queued
    #: same-problem shape-compatible requests coalesce into one stacked
    #: kernel call; <= 1 disables batching entirely
    batch_max: int = 1
    #: content-addressed result-cache entries; a repeat request whose
    #: digest hits skips admission, the queue and the kernel entirely.
    #: 0 disables caching (no digests are even computed)
    cache_entries: int = 0
    #: seconds before a cached result expires; 0 = LRU bound only
    cache_ttl: float = 0.0
    #: publish fresh results whose encoded outputs are at most this many
    #: bytes to the agent's hot cache (CacheInsert); 0 = never publish
    cache_publish_bytes: int = 0
    #: SQLite file backing the persistent job store (results survive
    #: restarts; FetchResult recovers them by request id); "" disables
    store_path: str = ""
    #: seconds to wait for a RegisterAck before rotating to the next
    #: agent address (only armed when the server was given more than one)
    register_timeout: float = 30.0
    #: seconds an *unpinned* resident object (``keep_result`` outputs,
    #: DAG intermediates) lives after its last reference is released;
    #: 0 = no expiry (byte budget only).  Pinned ``store``d operands
    #: never expire.
    handle_ttl: float = 600.0
    #: admission cap on SubmitDag graphs (nodes per DAG); a larger graph
    #: is rejected outright with a non-retryable DagReply
    dag_max_nodes: int = 64
    #: per-class deadline offsets (seconds past arrival), indexed by
    #: :data:`repro.core.qos.QOS_CLASSES` — the queue drains earliest
    #: deadline first, so a tighter offset is a stronger claim on the
    #: next free slot.  Equal offsets degenerate to plain FIFO.
    qos_deadlines: tuple = (5.0, 60.0, 600.0)
    #: per-class queue shares in (0, 1], same indexing: under a bounded
    #: queue (``max_queue > 0``) a class may occupy at most
    #: ``ceil(max_queue * share)`` waiting entries before *its* requests
    #: shed Busy — background traffic sheds before it can crowd out
    #: interactive traffic
    qos_shed: tuple = (1.0, 1.0, 0.5)

    def __post_init__(self) -> None:
        _require(self.max_concurrent >= 1, "max_concurrent must be >= 1")
        _require(self.max_queue >= 0, "max_queue must be >= 0")
        _require(self.reregister_interval >= 0, "reregister_interval must be >= 0")
        _require(self.object_cache_bytes >= 0, "object_cache_bytes must be >= 0")
        _require(self.workers >= 0, "workers must be >= 0")
        _require(
            self.executor in ("thread", "process"),
            "executor must be 'thread' or 'process'",
        )
        _require(self.batch_max >= 0, "batch_max must be >= 0")
        _require(self.cache_entries >= 0, "cache_entries must be >= 0")
        _require(self.cache_ttl >= 0, "cache_ttl must be >= 0")
        _require(
            self.cache_publish_bytes >= 0, "cache_publish_bytes must be >= 0"
        )
        _require(
            self.register_timeout > 0, "register_timeout must be positive"
        )
        _require(self.handle_ttl >= 0, "handle_ttl must be >= 0")
        _require(self.dag_max_nodes >= 1, "dag_max_nodes must be >= 1")
        _require(
            len(self.qos_deadlines) == 3,
            "qos_deadlines must have one entry per class",
        )
        _require(
            all(d > 0 for d in self.qos_deadlines),
            "qos_deadlines entries must be positive",
        )
        _require(
            len(self.qos_shed) == 3,
            "qos_shed must have one entry per class",
        )
        _require(
            all(0 < s <= 1 for s in self.qos_shed),
            "qos_shed entries must be in (0, 1]",
        )


@dataclass(frozen=True)
class ClientConfig:
    """Client-library behaviour knobs."""

    #: total attempts per request across the candidate list
    max_retries: int = 3
    #: seconds before an unanswered agent query counts as failure
    agent_timeout: float = 60.0
    #: times to re-send an unanswered agent message (describe/query)
    #: before giving up — the protocol has no transport retransmission,
    #: so control messages need their own retry
    agent_retries: int = 3
    #: hard ceiling on the per-attempt server timeout (seconds)
    server_timeout: float = 3600.0
    #: per-attempt timeout = clamp(timeout_factor * predicted, timeout_floor,
    #: server_timeout) — a crashed server is declared dead once the attempt
    #: has overshot its prediction by this factor
    timeout_factor: float = 4.0
    timeout_floor: float = 10.0
    #: re-query the agent for a fresh candidate list after exhausting one
    requery_agent: bool = True
    #: send a TransferReport after each success (feeds the agent's
    #: learned network table; harmless when the agent does not learn)
    report_transfers: bool = True
    #: compute a content digest per request and carry it in the agent
    #: query, enabling one-RTT answers from the agent's hot cache.
    #: Off by default: an undigested query is byte-identical whether or
    #: not any cache exists downstream
    cache_digest: bool = False
    #: QoS class stamped on submits that don't pass one explicitly
    #: ("" = batch); see :mod:`repro.core.qos`
    default_qos: str = ""

    def __post_init__(self) -> None:
        _require(self.max_retries >= 1, "max_retries must be >= 1")
        _require(self.agent_timeout > 0, "agent_timeout must be positive")
        _require(self.agent_retries >= 1, "agent_retries must be >= 1")
        _require(self.server_timeout > 0, "server_timeout must be positive")
        _require(self.timeout_factor >= 1.0, "timeout_factor must be >= 1")
        _require(self.timeout_floor > 0, "timeout_floor must be positive")
        _require(
            self.timeout_floor <= self.server_timeout,
            "timeout_floor must be <= server_timeout",
        )
        _require(
            self.default_qos in ("", "interactive", "batch", "background"),
            "default_qos must be '', 'interactive', 'batch' or 'background'",
        )


@dataclass(frozen=True)
class SimConfig:
    """Global knobs of a simulated deployment."""

    seed: int = 0
    #: stop the event loop at this virtual time (seconds); None = run dry
    horizon: float | None = None
    #: per-message fixed software overhead added to every transfer (seconds);
    #: models protocol stack cost on 1996-era hosts
    per_message_overhead: float = 1e-3
    #: encode→decode every delivered message through the real codec (the
    #: fidelity invariant: codec bugs surface in every run).  False skips
    #: the materialization for huge farming sweeps — virtual time and all
    #: tables are unchanged, but sender and receiver share payload objects
    codec_roundtrip: bool = True

    def __post_init__(self) -> None:
        _require(self.seed >= 0, "seed must be >= 0")
        if self.horizon is not None:
            _require(self.horizon > 0, "horizon must be positive")
        _require(self.per_message_overhead >= 0, "per_message_overhead must be >= 0")


def replace_validated(cfg, **changes):
    """``dataclasses.replace`` that re-runs ``__post_init__`` validation.

    Frozen dataclasses re-validate automatically on replace; this helper
    exists so call sites read clearly and to centralise the import.
    """
    import dataclasses

    return dataclasses.replace(cfg, **changes)


def config_summary(cfg) -> str:
    """One-line ``key=value`` rendering of any config dataclass."""
    parts = [f"{f.name}={getattr(cfg, f.name)!r}" for f in fields(cfg)]
    return f"{type(cfg).__name__}({', '.join(parts)})"
