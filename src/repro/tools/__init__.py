"""Command-line daemons for live TCP deployments.

Each tool runs one NetSolve component in this process, mirroring the
original's ``netsolve_agent`` / ``netsolve_server`` binaries:

* ``python -m repro.tools.agent --port 7700``
* ``python -m repro.tools.server --agent HOST:PORT --mflops 200``
* ``python -m repro.tools.demo --agent HOST:PORT`` (a smoke-test client)
* ``python -m repro.tools.metrics sim`` (observability report from a
  simulated farm; ``show`` re-renders saved snapshots)

Components in different processes find each other through explicit
``host:port`` addresses (the directory entries the simulated transport
gets for free).
"""

from .common import parse_endpoint, run_forever

__all__ = ["parse_endpoint", "run_forever"]
