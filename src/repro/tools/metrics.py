"""``python -m repro.tools.metrics`` — the observability layer's CLI.

Two subcommands:

* ``sim`` runs a small simulated farm with an
  :class:`~repro.trace.instruments.Observability` bundle attached and
  prints the metrics report plus per-request span timelines — the
  quickest way to see what the layer records (and the source of the CI
  sample-snapshot artifact via ``--json``);
* ``show`` renders a previously saved JSON snapshot back into the same
  text report, so dumps from daemons (``--metrics-json``) or CI
  artifacts stay readable without the process that produced them.

Example::

    python -m repro.tools.metrics sim --requests 12 --spans 4
    python -m repro.tools.metrics sim --json snapshot.json
    python -m repro.tools.metrics show snapshot.json
"""

from __future__ import annotations

import argparse
import json

from ..errors import NetSolveError
from ..trace.instruments import Observability, render_snapshot
from ..trace.spans import RequestSpan

__all__ = ["main", "build_parser", "run_sim_farm", "cache_stats",
           "fleet_stats"]


#: (layer, hits counter, misses counter) pairs the derived stats cover
_CACHE_LAYERS = (
    ("server", "server.cache_hits", "server.cache_misses"),
    ("agent", "agent.cache_hits", "agent.cache_misses"),
)


def cache_stats(metrics: dict) -> list[list]:
    """Derived result-cache rows from a metrics snapshot dict.

    Returns ``[layer, hits, misses, hit_rate, extra]`` rows for every
    cache layer whose counters appear in the snapshot (empty list when
    the run never had a cache — ``show`` then prints nothing extra).
    """
    counters = metrics.get("counters") or {}
    rows: list[list] = []
    for layer, hits_key, misses_key in _CACHE_LAYERS:
        if hits_key not in counters and misses_key not in counters:
            continue
        hits = int(counters.get(hits_key, 0))
        misses = int(counters.get(misses_key, 0))
        lookups = hits + misses
        rate = f"{hits / lookups:.1%}" if lookups else "-"
        if layer == "server":
            saved = int(counters.get("server.cache_bytes_saved", 0))
            extra = f"{saved} B saved"
        else:
            inserts = int(counters.get("agent.cache_inserts", 0))
            extra = f"{inserts} inserts"
        rows.append([layer, hits, misses, rate, extra])
    return rows


#: (label, counter, health note) rows the fleet table covers.  The notes
#: matter operationally: drops and rejects are *divergence signals* — a
#: registry entry one agent has that a peer refused or could not place.
_FLEET_ROWS = (
    ("queries forwarded", "agent.query_forwards",
     "shard-owner hops (sharding on)"),
    ("mirror drops", "agent.mirror_drops",
     "mirrored reports for unknown servers"),
    ("mirror register rejects", "agent.mirror_register_rejects",
     "peer refused a mirrored registration"),
    ("sync digests", "agent.sync_digests",
     "anti-entropy rounds initiated"),
    ("sync repairs", "agent.sync_repairs",
     "registry entries healed from peers"),
    ("client failovers", "client.agent_failovers",
     "clients rotated to a backup agent"),
    ("server failovers", "server.agent_failovers",
     "servers re-registered with a backup agent"),
)


def fleet_stats(metrics: dict) -> list[list]:
    """Derived agent-fleet rows from a metrics snapshot dict.

    Returns ``[what, count, note]`` rows for every fleet counter in the
    snapshot (empty list for single-agent runs, which never touch these
    counters — ``show`` then prints nothing extra).
    """
    counters = metrics.get("counters") or {}
    return [
        [label, int(counters[key]), note]
        for label, key, note in _FLEET_ROWS
        if key in counters
    ]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description="inspect the request-lifecycle observability layer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser(
        "sim", help="run an observed simulated farm and print the report"
    )
    sim.add_argument("--servers", type=int, default=4)
    sim.add_argument("--requests", type=int, default=8,
                     help="linsys requests to farm")
    sim.add_argument("--size", type=int, default=120,
                     help="dense system size per request")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--crash", action="store_true",
                     help="crash the fastest server mid-farm so retries, "
                          "failovers and failure reports show up")
    sim.add_argument("--spans", type=int, default=0,
                     help="append this many request span timelines")
    sim.add_argument("--json", metavar="PATH", default=None,
                     help="also dump the snapshot (metrics + spans) as JSON")

    show = sub.add_parser("show", help="render a saved JSON snapshot")
    show.add_argument("path", help="snapshot file written by sim --json "
                                   "or a daemon's --metrics-json")
    show.add_argument("--spans", type=int, default=0,
                      help="append this many span timelines (when present)")
    return parser


def run_sim_farm(
    *,
    n_servers: int = 4,
    n_requests: int = 8,
    size: int = 120,
    seed: int = 0,
    crash: bool = False,
) -> Observability:
    """Farm ``n_requests`` dense solves through an observed testbed and
    return the populated observability bundle."""
    import numpy as np

    from ..testbed import server_address, standard_testbed

    obs = Observability()
    tb = standard_testbed(
        n_servers=n_servers, seed=seed, observability=obs
    )
    tb.settle()
    rng = np.random.default_rng(seed)
    handles = []
    for _ in range(n_requests):
        a = rng.standard_normal((size, size)) + size * np.eye(size)
        b = rng.standard_normal(size)
        handles.append(tb.submit("c0", "linsys/dgesv", [a, b]))
    if crash:
        # take out the fastest machine before any attempt lands: the
        # scheduler still ranks it first, so the farm has to discover
        # the death the hard way — timeouts, failure reports, failovers
        tb.transport.crash(server_address(f"s{n_servers - 1}"))
    tb.wait_all(handles, limit=tb.kernel.now + 48 * 3600.0)
    return obs


def _render_spans(span_dicts: list[dict], limit: int) -> str:
    spans = []
    for d in span_dicts[:limit]:
        span = RequestSpan(
            d["request_id"], d["problem"], d["source"], d["t_start"]
        )
        for p in d.get("phases", ()):
            span.begin_phase(p["name"], p["t_start"], **p.get("fields", {}))
            if p["t_end"] is not None:
                span.end_phase(p["t_end"])
        span.t_end = d.get("t_end")
        span.status = d.get("status", "?")
        span.error = d.get("error", "")
        spans.append(span.timeline())
    return "\n".join(spans)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sim":
        obs = run_sim_farm(
            n_servers=args.servers,
            n_requests=args.requests,
            size=args.size,
            seed=args.seed,
            crash=args.crash,
        )
        print(obs.report(max_spans=args.spans))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(obs.to_json())
            print(f"\nsnapshot written to {args.json}")
        return 0

    assert args.command == "show"
    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read snapshot {args.path!r}: {exc}")
        return 2
    if not isinstance(snapshot, dict):
        print(f"snapshot {args.path!r} is not a JSON object")
        return 2
    # daemons dump a bare registry snapshot; sim dumps {metrics, spans}
    metrics = snapshot.get("metrics", snapshot)
    try:
        print(render_snapshot(metrics))
    except (KeyError, TypeError, NetSolveError) as exc:
        print(f"snapshot {args.path!r} is malformed: {exc}")
        return 2
    rows = cache_stats(metrics)
    if rows:
        from ..trace.metrics import format_table

        print()
        print(format_table(
            ["layer", "hits", "misses", "hit rate", ""],
            rows,
            title="result caches (derived)",
        ))
    fleet_rows = fleet_stats(metrics)
    if fleet_rows:
        from ..trace.metrics import format_table

        print()
        print(format_table(
            ["what", "count", ""],
            fleet_rows,
            title="agent fleet (derived)",
        ))
    if args.spans:
        timelines = _render_spans(snapshot.get("spans") or [], args.spans)
        if timelines:
            print("\nrequest spans\n" + timelines)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
