"""``python -m repro.tools.agent`` — run a NetSolve agent daemon.

Example::

    python -m repro.tools.agent --port 7700 --policy mct --learn-network

Servers register against ``AGENT_HOST:7700``; clients query it.  With
``--learn-network`` the agent folds client transfer reports into a
learned per-path bandwidth table instead of trusting the static default.
"""

from __future__ import annotations

import argparse

from ..config import AgentConfig
from ..core.agent import Agent
from ..core.predictor import (
    LearnedNetworkInfo,
    LinkEstimate,
    StaticNetworkInfo,
)
from ..protocol.tcp import TcpTransport
from ..trace.instruments import MetricsRegistry
from .common import run_forever

__all__ = ["main", "build_parser"]

AGENT_NODE = "agent"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-agent", description="NetSolve agent daemon"
    )
    parser.add_argument("--bind", default="127.0.0.1", help="IP to listen on")
    parser.add_argument("--port", type=int, default=7700)
    parser.add_argument(
        "--policy", default="mct",
        choices=["mct", "random", "roundrobin", "fastestpeak"],
    )
    parser.add_argument("--candidates", type=int, default=3,
                        help="ranked candidate list length")
    parser.add_argument("--liveness-timeout", type=float, default=900.0)
    parser.add_argument("--default-latency", type=float, default=1e-4,
                        help="assumed path latency (seconds)")
    parser.add_argument("--default-bandwidth", type=float, default=100e6,
                        help="assumed path bandwidth (bytes/second)")
    parser.add_argument("--learn-network", action="store_true",
                        help="learn per-path bandwidth from transfer reports")
    parser.add_argument("--cache-entries", type=int, default=0,
                        help="hot result-cache entries answering repeat "
                             "solves in one RTT (0 = off)")
    parser.add_argument("--cache-ttl", type=float, default=0.0,
                        help="seconds before a hot cache entry expires "
                             "(0 = LRU bound only)")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="attach a metrics registry and dump its "
                             "snapshot to PATH at shutdown")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    import numpy as np

    network = StaticNetworkInfo(
        default=LinkEstimate(
            latency=args.default_latency, bandwidth=args.default_bandwidth
        )
    )
    if args.learn_network:
        network = LearnedNetworkInfo(network)
    metrics = MetricsRegistry() if args.metrics_json else None
    agent = Agent(
        network=network,
        cfg=AgentConfig(
            policy=args.policy,
            candidate_list_length=args.candidates,
            liveness_timeout=args.liveness_timeout,
            cache_entries=args.cache_entries,
            cache_ttl=args.cache_ttl,
        ),
        rng=np.random.default_rng(),
        metrics=metrics,
    )
    with TcpTransport(bind_ip=args.bind, metrics=metrics) as transport:
        node = transport.add_node(AGENT_NODE, agent, port=args.port)
        run_forever(
            f"netsolve agent listening on {args.bind}:{node.port} "
            f"(policy={args.policy}, learn_network={args.learn_network})"
        )
    if metrics is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_json())
        print(f"metrics snapshot written to {args.metrics_json}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
