"""``python -m repro.tools.agent`` — run a NetSolve agent daemon.

Example::

    python -m repro.tools.agent --port 7700 --policy mct --learn-network

Servers register against ``AGENT_HOST:7700``; clients query it.  With
``--learn-network`` the agent folds client transfer reports into a
learned per-path bandwidth table instead of trusting the static default.
"""

from __future__ import annotations

import argparse

from ..config import AgentConfig
from ..core.agent import Agent
from ..core.predictor import (
    LearnedNetworkInfo,
    LinkEstimate,
    StaticNetworkInfo,
)
from ..protocol.tcp import TcpTransport
from ..trace.instruments import MetricsRegistry
from .common import parse_named_endpoint, run_forever

__all__ = ["main", "build_parser"]

AGENT_NODE = "agent"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-agent", description="NetSolve agent daemon"
    )
    parser.add_argument("--bind", default="127.0.0.1", help="IP to listen on")
    parser.add_argument("--port", type=int, default=7700)
    parser.add_argument("--name", default=AGENT_NODE,
                        help="this agent's fleet name; peers and servers "
                             "address it by this name, so it must match "
                             "what their --peer/--agent flags say")
    parser.add_argument("--peer", action="append", default=[],
                        metavar="NAME=HOST:PORT",
                        help="sibling agent to mirror and sync with "
                             "(repeatable); NAME must be the peer's --name, "
                             "bare HOST:PORT means the default name 'agent'")
    parser.add_argument("--shard", action="store_true",
                        help="consistent-hash the problem space across the "
                             "fleet: non-owner agents forward a query one "
                             "hop to the shard owner")
    parser.add_argument("--sync-interval", type=float, default=60.0,
                        help="anti-entropy period (seconds); each tick "
                             "exchanges registry digests with every peer "
                             "and pulls missing entries (0 = off)")
    parser.add_argument(
        "--policy", default="mct",
        choices=["mct", "random", "roundrobin", "fastestpeak"],
    )
    parser.add_argument("--candidates", type=int, default=3,
                        help="ranked candidate list length")
    parser.add_argument("--liveness-timeout", type=float, default=900.0)
    parser.add_argument("--default-latency", type=float, default=1e-4,
                        help="assumed path latency (seconds)")
    parser.add_argument("--default-bandwidth", type=float, default=100e6,
                        help="assumed path bandwidth (bytes/second)")
    parser.add_argument("--learn-network", action="store_true",
                        help="learn per-path bandwidth from transfer reports")
    parser.add_argument("--cache-entries", type=int, default=0,
                        help="hot result-cache entries answering repeat "
                             "solves in one RTT (0 = off)")
    parser.add_argument("--cache-ttl", type=float, default=0.0,
                        help="seconds before a hot cache entry expires "
                             "(0 = LRU bound only)")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="attach a metrics registry and dump its "
                             "snapshot to PATH at shutdown")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    import numpy as np

    network = StaticNetworkInfo(
        default=LinkEstimate(
            latency=args.default_latency, bandwidth=args.default_bandwidth
        )
    )
    if args.learn_network:
        network = LearnedNetworkInfo(network)
    metrics = MetricsRegistry() if args.metrics_json else None
    peers = [parse_named_endpoint(p, default_name=AGENT_NODE)
             for p in args.peer]
    peer_names = tuple(name for name, _, _ in peers)
    if args.name in peer_names:
        print(f"--peer {args.name!r} names this agent itself; "
              "peers must be *other* fleet members")
        return 2
    agent = Agent(
        network=network,
        cfg=AgentConfig(
            policy=args.policy,
            candidate_list_length=args.candidates,
            liveness_timeout=args.liveness_timeout,
            cache_entries=args.cache_entries,
            cache_ttl=args.cache_ttl,
            shard=args.shard,
            sync_interval=args.sync_interval,
        ),
        rng=np.random.default_rng(),
        metrics=metrics,
        peers=peer_names,
    )
    with TcpTransport(bind_ip=args.bind, metrics=metrics) as transport:
        for name, host, port in peers:
            transport.register_remote(name, host, port)
        node = transport.add_node(args.name, agent, port=args.port)
        fleet = (f", fleet={args.name}+{len(peers)} peer(s)"
                 f"{', sharded' if args.shard else ''}" if peers else "")
        run_forever(
            f"netsolve agent listening on {args.bind}:{node.port} "
            f"(policy={args.policy}, learn_network={args.learn_network}"
            f"{fleet})"
        )
    if metrics is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_json())
        print(f"metrics snapshot written to {args.metrics_json}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
