"""``python -m repro.tools.demo`` — a smoke-test client for a live deployment.

Connects to a running agent, lists its catalogue, then solves a random
dense system and prints the timings.

Example::

    python -m repro.tools.demo --agent 127.0.0.1:7700 --size 400
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from ..config import ClientConfig
from ..core.client import NetSolveClient
from ..protocol.tcp import TcpSession, TcpTransport
from .common import parse_endpoint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo", description="NetSolve demo client"
    )
    parser.add_argument("--agent", required=True, help="agent host:port")
    parser.add_argument("--bind", default="127.0.0.1")
    parser.add_argument("--size", type=int, default=300,
                        help="dgesv problem size")
    parser.add_argument("--count", type=int, default=1,
                        help="number of requests to farm")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--qos", default="",
                        choices=("", "interactive", "batch", "background"),
                        help="request class stamped on every submit "
                             "(default: batch)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    agent_host, agent_port = parse_endpoint(args.agent)
    with TcpTransport(bind_ip=args.bind) as transport:
        transport.register_remote("agent", agent_host, agent_port)
        client = NetSolveClient(
            client_id="demo",
            agent_address="agent",
            cfg=ClientConfig(
                agent_timeout=min(30.0, args.timeout),
                server_timeout=args.timeout,
                timeout_floor=min(30.0, args.timeout),
            ),
        )
        node = transport.add_node("client/demo", client, port=0)
        session = TcpSession(node, timeout=args.timeout)

        names = session.drive_result(session.list_problems(""))
        print(f"agent at {agent_host}:{agent_port} advertises "
              f"{len(names)} problems")
        if "linsys/dgesv" not in names:
            print("no linsys/dgesv on offer; is a server registered?")
            return 2

        rng = np.random.default_rng(args.seed)
        n = args.size
        failures = 0
        for i in range(args.count):
            a = rng.standard_normal((n, n)) + n * np.eye(n)
            b = rng.standard_normal(n)
            t0 = time.perf_counter()
            handle = session.submit("linsys/dgesv", [a, b], qos=args.qos)
            try:
                (x,) = handle.promise.wait(args.timeout)
            except Exception as exc:  # noqa: BLE001 - CLI surface
                print(f"request {i}: FAILED ({exc})")
                failures += 1
                continue
            wall = time.perf_counter() - t0
            resid = float(np.linalg.norm(a @ x - b) / np.linalg.norm(b))
            record = handle.record
            print(
                f"request {i}: n={n} server={record.server_id} "
                f"wall={wall * 1e3:.0f}ms residual={resid:.2e} "
                f"retries={record.retries}"
            )
        return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
