"""``python -m repro.tools.server`` — run a computational server daemon.

Example::

    python -m repro.tools.server --agent 127.0.0.1:7700 --mflops 200 \\
        --problems linsys/ blas/ --pdl extra_problems.pdl

The server advertises the builtin catalogue (optionally filtered by
prefix) plus any extra problem description files; extra PDL problems
need handlers registered programmatically, so ``--pdl`` is parse-checked
here and rejected unless paired with ``--allow-unbound`` (useful for
validating descriptions before deployment).
"""

from __future__ import annotations

import argparse

from ..config import ServerConfig, WorkloadPolicy
from ..core.server import ComputationalServer
from ..problems.builtin import builtin_registry
from ..problems.pdl import parse_pdl_file
from ..protocol.tcp import TcpTransport
from ..trace.instruments import MetricsRegistry
from .common import parse_named_endpoint, run_forever

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-server", description="NetSolve computational server daemon"
    )
    parser.add_argument("--agent", required=True, action="append",
                        metavar="[NAME=]HOST:PORT",
                        help="agent endpoint (repeatable; extra agents are "
                             "registration failovers, tried in order). NAME "
                             "must match the agent daemon's --name; bare "
                             "HOST:PORT means the default name 'agent'")
    parser.add_argument("--register-timeout", type=float, default=30.0,
                        help="seconds to wait for RegisterAck before "
                             "rotating to the next --agent (only armed "
                             "when more than one is given)")
    parser.add_argument("--bind", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--server-id", default=None,
                        help="defaults to hostname:port")
    parser.add_argument("--mflops", type=float, required=True,
                        help="advertised peak speed")
    parser.add_argument(
        "--problems", nargs="*", default=None, metavar="PREFIX",
        help="restrict the catalogue to these name prefixes",
    )
    parser.add_argument("--pdl", nargs="*", default=[],
                        help="extra problem description files to validate")
    parser.add_argument("--workload-step", type=float, default=10.0)
    parser.add_argument("--workload-threshold", type=float, default=10.0)
    parser.add_argument("--max-concurrent", type=int, default=1)
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="alias for --max-concurrent (the server's "
                             "slot count); takes precedence when given")
    parser.add_argument("--workers", type=int, default=0,
                        help="compute-pool threads (0 = match the slot "
                             "count)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="run kernels on pool threads (default) or "
                             "opt GIL-bound handlers into child processes")
    parser.add_argument("--batch-max", type=int, default=1,
                        help="coalesce up to this many queued same-problem "
                             "shape-compatible requests into one stacked "
                             "kernel call while saturated (1 = off)")
    parser.add_argument("--max-queue", type=int, default=0,
                        help="admission cap on the FIFO queue: past this "
                             "many waiting requests the server replies "
                             "Busy instead of queueing (0 = unbounded)")
    parser.add_argument("--reregister", type=float, default=300.0,
                        help="re-registration interval (seconds, 0=off)")
    parser.add_argument("--cache-entries", type=int, default=0,
                        help="content-addressed result-cache entries; a "
                             "repeat request answers from the cache without "
                             "touching the kernel (0 = off)")
    parser.add_argument("--cache-ttl", type=float, default=0.0,
                        help="seconds before a cached result expires "
                             "(0 = LRU bound only)")
    parser.add_argument("--cache-publish-bytes", type=int, default=0,
                        help="publish fresh results up to this many encoded "
                             "bytes to the agent's hot cache (0 = never)")
    parser.add_argument("--handle-ttl", type=float, default=600.0,
                        help="seconds an unpinned resident object "
                             "(keep_result outputs, DAG intermediates) "
                             "lives after its last reference is released "
                             "(0 = byte budget only; stored operands "
                             "never expire)")
    parser.add_argument("--dag-max-nodes", type=int, default=64,
                        help="admission cap on SubmitDag graphs (nodes "
                             "per DAG); larger graphs are rejected whole")
    parser.add_argument("--store", metavar="PATH", default="",
                        help="SQLite file for the persistent job store; "
                             "finished results survive restarts and are "
                             "recoverable by request id")
    parser.add_argument("--qos-deadlines", metavar="I,B,BG", default=None,
                        help="per-class deadline offsets in seconds "
                             "(interactive,batch,background) for "
                             "earliest-deadline-first admission "
                             "(default 5,60,600)")
    parser.add_argument("--qos-shed", metavar="I,B,BG", default=None,
                        help="per-class queue shares in (0,1] "
                             "(interactive,batch,background): a class "
                             "past its share of --max-queue sheds Busy "
                             "(default 1,1,0.5)")
    parser.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="attach a metrics registry and dump its "
                             "snapshot to PATH at shutdown")
    return parser


def parse_class_triple(text: str, flag: str) -> tuple[float, float, float]:
    """Parse an "interactive,batch,background" comma triple of floats."""
    parts = text.split(",")
    if len(parts) != 3:
        raise SystemExit(f"{flag} needs exactly 3 comma-separated values")
    try:
        return tuple(float(p) for p in parts)
    except ValueError:
        raise SystemExit(f"{flag}: non-numeric value in {text!r}")


def select_problems(prefixes: list[str] | None):
    registry = builtin_registry()
    if prefixes:
        names = [
            n for n in registry.names()
            if any(n.startswith(p) for p in prefixes)
        ]
        registry = registry.subset(names)
    return registry


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    agents = [parse_named_endpoint(a) for a in args.agent]
    agent_names = [name for name, _, _ in agents]
    if len(set(agent_names)) != len(agent_names):
        print(f"duplicate agent names in --agent: {agent_names}; "
              "name fleet members with NAME=HOST:PORT")
        return 2
    registry = select_problems(args.problems)
    for path in args.pdl:
        specs = parse_pdl_file(path)
        print(f"validated {path}: {len(specs)} problem description(s) "
              "(handlers must be registered programmatically)")
    if len(registry) == 0:
        print("no problems selected; refusing to register an empty server")
        return 2

    slots = (
        args.max_inflight if args.max_inflight is not None
        else args.max_concurrent
    )
    qos_kwargs = {}
    if args.qos_deadlines is not None:
        qos_kwargs["qos_deadlines"] = parse_class_triple(
            args.qos_deadlines, "--qos-deadlines"
        )
    if args.qos_shed is not None:
        qos_kwargs["qos_shed"] = parse_class_triple(
            args.qos_shed, "--qos-shed"
        )
    metrics = MetricsRegistry() if args.metrics_json else None
    with TcpTransport(bind_ip=args.bind, metrics=metrics) as transport:
        for name, host, port in agents:
            transport.register_remote(name, host, port)
        server_id = args.server_id or f"{transport.host_name}"
        server = ComputationalServer(
            server_id=server_id,
            agent_address=agent_names,
            registry=registry,
            mflops=args.mflops,
            host=transport.host_name,
            cfg=ServerConfig(
                workload=WorkloadPolicy(
                    time_step=args.workload_step,
                    threshold=args.workload_threshold,
                ),
                max_concurrent=slots,
                max_queue=args.max_queue,
                reregister_interval=args.reregister,
                workers=args.workers,
                executor=args.executor,
                batch_max=args.batch_max,
                cache_entries=args.cache_entries,
                cache_ttl=args.cache_ttl,
                cache_publish_bytes=args.cache_publish_bytes,
                store_path=args.store,
                register_timeout=args.register_timeout,
                handle_ttl=args.handle_ttl,
                dag_max_nodes=args.dag_max_nodes,
                **qos_kwargs,
            ),
            metrics=metrics,
        )
        node = transport.add_node(
            f"server/{server_id}", server, port=args.port,
            compute_workers=args.workers or slots,
        )
        try:
            agent_list = ", ".join(
                f"{name}@{host}:{port}" for name, host, port in agents
            )
            run_forever(
                f"netsolve server {server_id!r} on {args.bind}:{node.port} "
                f"({len(registry)} problems, {args.mflops:g} Mflop/s, "
                f"{slots} slot(s), agent(s) {agent_list})"
            )
        finally:
            server.shutdown_executors()
    if metrics is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            fh.write(metrics.to_json())
        print(f"metrics snapshot written to {args.metrics_json}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
