"""Shared plumbing for the CLI daemons."""

from __future__ import annotations

import signal
import threading

from ..errors import ConfigError

__all__ = ["parse_endpoint", "parse_named_endpoint", "run_forever"]


def parse_endpoint(text: str, *, default_port: int | None = None) -> tuple[str, int]:
    """Parse ``host:port`` (or bare ``host`` with a default port)."""
    host, sep, port_text = text.partition(":")
    if not host:
        raise ConfigError(f"bad endpoint {text!r}")
    if not sep:
        if default_port is None:
            raise ConfigError(f"endpoint {text!r} needs a port")
        return host, default_port
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(f"bad port in {text!r}") from None
    if not 0 < port < 65536:
        raise ConfigError(f"port out of range in {text!r}")
    return host, port


def parse_named_endpoint(
    text: str, *, default_name: str = "agent"
) -> tuple[str, str, int]:
    """Parse ``name=host:port`` into ``(name, host, port)``.

    Bare ``host:port`` gets ``default_name`` — the single-agent spelling
    every pre-fleet deployment used.  The name must match the ``--name``
    the daemon at that endpoint was started with: TCP delivery resolves
    the destination *address* against the remote process's local nodes.
    """
    name, sep, endpoint = text.partition("=")
    if not sep:
        name, endpoint = default_name, text
    if not name:
        raise ConfigError(f"bad endpoint {text!r}: empty name")
    host, port = parse_endpoint(endpoint)
    return name, host, port


def run_forever(banner: str) -> None:
    """Print a banner and block until SIGINT/SIGTERM."""
    print(banner, flush=True)
    stop = threading.Event()

    def handler(_sig, _frame):
        stop.set()

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)
    stop.wait()
    print("shutting down", flush=True)
